"""Feasibility studies: the bottom-to-top arrows of Figure 2.

"Although this appears as a top-to-bottom flow, there are actually many
bottom-to-top interactions.  For instance, there are many feasibility
studies on different circuit implementations during the development of
the RTL.  These studies analyze timing, layout area, power, and
electrical concerns."

:func:`compare_implementations` runs exactly that quick-turn study:
wireload-mode extraction (no layout exists yet), the timing verifier's
minimum cycle, a dynamic+leakage power estimate, a macrocell area
projection, and the check battery's violation count -- one row per
candidate implementation, ready for the implementation review.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.checks.base import CheckContext, CheckSettings
from repro.checks.registry import run_battery
from repro.extraction.annotate import annotate
from repro.extraction.wireload import WireloadModel
from repro.layout.macrocell import generate_macrocell
from repro.netlist.cell import Cell
from repro.netlist.flatten import flatten
from repro.power.activity import ActivityModel
from repro.power.dynamic import netlist_dynamic_power
from repro.power.netlist_power import netlist_leakage_power
from repro.process.corners import Corner
from repro.process.technology import Technology
from repro.recognition.recognizer import recognize
from repro.timing.clocking import TwoPhaseClock
from repro.timing.driver import analyze_design


@dataclass
class FeasibilityRow:
    """One candidate implementation's study results."""

    name: str
    transistors: int
    area_estimate_um2: float
    min_cycle_s: float
    dynamic_power_w: float
    leakage_power_w: float
    dynamic_nodes: int
    storage_nodes: int
    violations: int
    inspect_items: int

    def max_frequency_mhz(self) -> float:
        return 1e-6 / self.min_cycle_s if self.min_cycle_s > 0 else float("inf")


def study_implementation(
    name: str,
    cell: Cell,
    technology: Technology,
    clock: TwoPhaseClock,
    clock_hints: Iterable[str] = (),
    activity: ActivityModel | None = None,
) -> FeasibilityRow:
    """Run the quick-turn study on one candidate."""
    flat = flatten(cell)
    parasitics = WireloadModel().extract(flat, technology.wires)

    run = analyze_design(flat, technology, clock, clock_hints=clock_hints,
                         parasitics=parasitics)
    design = run.design

    typical = annotate(flat, parasitics, technology, Corner.TYPICAL)
    power = netlist_dynamic_power(typical, design, clock.frequency_hz(),
                                  activity)
    leakage = netlist_leakage_power(flat, technology, Corner.FAST)

    ctx = CheckContext(design=design, typical=typical, fast=run.fast,
                       clock=clock, settings=CheckSettings())
    battery = run_battery(ctx)
    stats = battery.queues.stats()

    mc = generate_macrocell(name, flat.transistors,
                            l_min_um=technology.l_min_um)
    area = mc.layout.area()

    return FeasibilityRow(
        name=name,
        transistors=flat.device_count(),
        area_estimate_um2=area,
        min_cycle_s=run.report.min_cycle_time_s,
        dynamic_power_w=power["total"],
        leakage_power_w=leakage,
        dynamic_nodes=len(design.dynamic_nodes),
        storage_nodes=len(design.storage),
        violations=stats.violations,
        inspect_items=stats.inspect,
    )


def compare_implementations(
    candidates: dict[str, Cell],
    technology: Technology,
    clock: TwoPhaseClock,
    clock_hints: Iterable[str] = (),
) -> list[FeasibilityRow]:
    """Study every candidate; rows come back in insertion order."""
    if not candidates:
        raise ValueError("nothing to compare")
    return [
        study_implementation(name, cell, technology, clock,
                             clock_hints=clock_hints)
        for name, cell in candidates.items()
    ]


def render_study(rows: list[FeasibilityRow]) -> str:
    """The implementation-review table."""
    header = (f"{'candidate':<18}{'xtors':>7}{'area um^2':>11}"
              f"{'min cyc ns':>12}{'dyn mW':>9}{'leak uW':>9}"
              f"{'viol':>6}{'inspect':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<18}{row.transistors:>7}"
            f"{row.area_estimate_um2:>11.0f}"
            f"{row.min_cycle_s * 1e9:>12.2f}"
            f"{row.dynamic_power_w * 1e3:>9.2f}"
            f"{row.leakage_power_w * 1e6:>9.2f}"
            f"{row.violations:>6}{row.inspect_items:>9}"
        )
    return "\n".join(lines)
