"""Flow stages and their results (the boxes of Figure 2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FlowStage(enum.Enum):
    """The ALPHA design-flow stages, in Figure-2 order."""

    BEHAVIORAL_RTL = "behavioral_rtl"
    SCHEMATIC = "schematic"
    RECOGNITION = "recognition"
    LAYOUT = "layout"
    EXTRACTION = "extraction"
    LOGIC_VERIFICATION = "logic_verification"
    CIRCUIT_VERIFICATION = "circuit_verification"
    TIMING_VERIFICATION = "timing_verification"


class StageStatus(enum.Enum):
    PASS = "pass"
    ATTENTION = "attention"  # filtered items awaiting designer review
    FAIL = "fail"
    SKIPPED = "skipped"
    #: The stage itself crashed (tool fault, not a design fault).  The
    #: campaign records the traceback and keeps running whatever later
    #: stages do not depend on this one's artifacts; ``ok()`` is False.
    ERROR = "error"


@dataclass
class StageResult:
    """Outcome of one flow stage."""

    stage: FlowStage
    status: StageStatus
    summary: str
    metrics: dict[str, float] = field(default_factory=dict)
    details: list[str] = field(default_factory=list)

    def ok(self) -> bool:
        return self.status in (StageStatus.PASS, StageStatus.ATTENTION,
                               StageStatus.SKIPPED)

    def to_dict(self) -> dict:
        """JSON-ready form (report export, checkpoint metadata)."""
        return {
            "stage": self.stage.value,
            "status": self.status.value,
            "summary": self.summary,
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "details": [str(d) for d in self.details],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageResult":
        """Exact inverse of :meth:`to_dict` (any status, ERROR tracebacks
        included -- they ride in ``details``)."""
        return cls(
            stage=FlowStage(data["stage"]),
            status=StageStatus(data["status"]),
            summary=str(data["summary"]),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            details=[str(d) for d in data.get("details", [])],
        )
