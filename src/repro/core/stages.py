"""Flow stages and their results (the boxes of Figure 2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FlowStage(enum.Enum):
    """The ALPHA design-flow stages, in Figure-2 order."""

    BEHAVIORAL_RTL = "behavioral_rtl"
    SCHEMATIC = "schematic"
    RECOGNITION = "recognition"
    LAYOUT = "layout"
    EXTRACTION = "extraction"
    LOGIC_VERIFICATION = "logic_verification"
    CIRCUIT_VERIFICATION = "circuit_verification"
    TIMING_VERIFICATION = "timing_verification"


class StageStatus(enum.Enum):
    PASS = "pass"
    ATTENTION = "attention"  # filtered items awaiting designer review
    FAIL = "fail"
    SKIPPED = "skipped"
    #: The stage itself crashed (tool fault, not a design fault).  The
    #: campaign records the traceback and keeps running whatever later
    #: stages do not depend on this one's artifacts; ``ok()`` is False.
    ERROR = "error"


@dataclass
class StageResult:
    """Outcome of one flow stage."""

    stage: FlowStage
    status: StageStatus
    summary: str
    metrics: dict[str, float] = field(default_factory=dict)
    details: list[str] = field(default_factory=list)

    def ok(self) -> bool:
        return self.status in (StageStatus.PASS, StageStatus.ATTENTION,
                               StageStatus.SKIPPED)
