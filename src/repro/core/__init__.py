"""The Correct-By-Verification (CBV) flow -- the paper's Figure 2.

"Digital Semiconductor's design methodology follows a Correct by
verification (CBV) instead of the more popular Correct by construction
(CBC) methods. ... Since there is a reduced amount of automatic
synthesis, there has been much more emphasis on the verification of all
implementation representations."

:class:`~repro.core.campaign.CbvCampaign` drives the whole flow over one
design bundle: recognition -> layout/extraction -> logic verification
(equivalence and/or simulation) -> the electrical check battery ->
static timing -> a designer triage queue.  Each stage produces a
:class:`~repro.core.stages.StageResult`; the aggregate is a
:class:`~repro.core.campaign.CbvReport`.
"""

from repro.core.stages import FlowStage, StageResult, StageStatus
from repro.core.trace import CampaignTrace, TraceEvent
from repro.core.campaign import CbvCampaign, CbvReport, DesignBundle
from repro.core.triage import DesignerQueue, QueueItem
from repro.core.report import (
    render_report,
    render_trace,
    report_to_dict,
    report_to_json,
)
from repro.core.feasibility import (
    FeasibilityRow,
    compare_implementations,
    render_study,
    study_implementation,
)

__all__ = [
    "FlowStage",
    "StageResult",
    "StageStatus",
    "CbvCampaign",
    "CbvReport",
    "DesignBundle",
    "DesignerQueue",
    "QueueItem",
    "CampaignTrace",
    "TraceEvent",
    "render_report",
    "render_trace",
    "report_to_dict",
    "report_to_json",
    "FeasibilityRow",
    "compare_implementations",
    "render_study",
    "study_implementation",
]
