"""Text and JSON rendering of a CBV report and its campaign trace."""

from __future__ import annotations

import json

from repro.core.campaign import CbvReport
from repro.core.stages import StageStatus
from repro.core.trace import CampaignTrace

_STATUS_MARK = {
    StageStatus.PASS: "ok",
    StageStatus.ATTENTION: "ATTN",
    StageStatus.FAIL: "FAIL",
    StageStatus.SKIPPED: "--",
    StageStatus.ERROR: "ERR!",
}


def render_report(report: CbvReport, max_queue_items: int = 20) -> str:
    """Human-readable campaign summary (the designer's morning read)."""
    lines = [f"=== CBV campaign: {report.bundle_name} ==="]
    for stage in report.stages:
        mark = _STATUS_MARK[stage.status]
        lines.append(f"[{mark:>4}] {stage.stage.value}: {stage.summary}")
        for detail in stage.details[:5]:
            lines.append(f"        - {detail}")
    errored = report.errored_stages()
    if errored:
        lines.append(f"--- {len(errored)} stage(s) ERRORED (tool faults, "
                     f"not design verdicts) ---")
    open_items = report.queue.open_items()
    lines.append(f"--- designer queue: {len(open_items)} open item(s), "
                 f"{'tapeout-clean' if report.queue.tapeout_clean() else 'NOT clean'} ---")
    for item in open_items[:max_queue_items]:
        dup = f" (x{item.count})" if item.count > 1 else ""
        lines.append(f"  [{item.severity.value:>9}] {item.source} / "
                     f"{item.subject}: {item.message}{dup}")
    if len(open_items) > max_queue_items:
        lines.append(f"  ... and {len(open_items) - max_queue_items} more")
    return "\n".join(lines)


def render_trace(trace: CampaignTrace, max_events: int | None = None) -> str:
    """Human-readable event log (one line per trace event)."""
    lines = [f"=== campaign trace: {len(trace.events)} event(s), "
             f"{trace.total_seconds() * 1e3:.1f} ms ==="]
    events = trace.events if max_events is None else trace.events[:max_events]
    for e in events:
        status = f" [{e.status}]" if e.status else ""
        wall = f" ({e.wall_s * 1e3:.2f} ms)" if e.wall_s is not None else ""
        lines.append(f"  t+{e.t_s * 1e3:9.2f}ms {e.event:<14} "
                     f"{e.name}{status}{wall}")
    if max_events is not None and len(trace.events) > max_events:
        lines.append(f"  ... and {len(trace.events) - max_events} more")
    return "\n".join(lines)


def report_to_dict(report: CbvReport) -> dict:
    """Machine-readable campaign summary (CI dashboards, trend lines)."""
    return {
        "design": report.bundle_name,
        "ok": report.ok(),
        "tapeout_clean": report.queue.tapeout_clean(),
        "stages": [
            {
                "stage": s.stage.value,
                "status": s.status.value,
                "summary": s.summary,
                "metrics": dict(s.metrics),
            }
            for s in report.stages
        ],
        "queue": [
            {
                "source": i.source,
                "subject": i.subject,
                "severity": i.severity.value,
                "message": i.message,
                "count": i.count,
                "waived": i.waived,
                "waive_reason": i.waive_reason,
            }
            for i in report.queue.items
        ],
        "trace": report.trace.to_dicts(),
    }


def report_to_json(report: CbvReport, indent: int = 2) -> str:
    """JSON text of :func:`report_to_dict`."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)
