"""Text and JSON rendering of a CBV report and its campaign trace.

Two JSON shapes exist:

* the **full** form (default) -- everything the run recorded, including
  wall-clock timings and cache/store effectiveness counters; what a CI
  dashboard trends.
* the **canonical** form (``canonical=True``) -- the run's *facts* only:
  wall-clock fields, cache/store/chaos counters, worker ids / worker
  counts, and ``checkpoint.*`` / ``store.*`` trace events are stripped.
  Two runs over the same design produce byte-identical canonical JSON
  whether they ran cold, resumed from a checkpoint store, ran the
  battery in parallel, were sharded across a :mod:`repro.fleet` worker
  pool, or survived an injected fault schedule (:mod:`repro.chaos`);
  this is the form the resume, fleet, and chaos acceptance tests (and
  the CI smoke jobs) compare.

``report_from_dict`` is the exact inverse of ``report_to_dict`` for
everything the dict carries: stages (all statuses, including ERROR
tracebacks in ``details``), the designer queue with waivers, and the
trace event log.  The heavyweight in-memory artifacts (``flat`` /
``design`` / ``timing``) are not serialized here -- the checkpoint store
(:mod:`repro.store`) owns those.
"""

from __future__ import annotations

import json

from repro.checks.base import Severity
from repro.core.campaign import CbvReport
from repro.core.stages import StageResult, StageStatus
from repro.core.trace import CampaignTrace
from repro.core.triage import QueueItem

_STATUS_MARK = {
    StageStatus.PASS: "ok",
    StageStatus.ATTENTION: "ATTN",
    StageStatus.FAIL: "FAIL",
    StageStatus.SKIPPED: "--",
    StageStatus.ERROR: "ERR!",
}

#: Metric / counter keys that record how fast (or how cached) a run was,
#: not what it concluded; the canonical form drops them.
_NONCANONICAL_KEYS = frozenset({
    "wall_s", "seconds", "battery_seconds",
    # classification-memo effectiveness (process-history dependent)
    "classify_hits", "classify_misses", "gate_hits", "gate_misses",
    # how many processes ran the battery (run mechanics, not a verdict;
    # serial, parallel, and fleet-sharded runs must compare identical)
    "workers",
    # setup-path effectiveness: sweep/enumeration counts depend on which
    # consumer warmed the shared CCC path caches first, and the template
    # hit count differs between a fresh build and a store load
    "path_sweeps", "target_sweeps", "pair_enumerations", "path_cache_hits",
    # fleet supervision events (which worker hung or which shard was
    # quarantined is run mechanics; the degraded *verdict* itself rides
    # in the stage statuses, which the canonical form keeps)
    "packed_template_hits", "workers_hung", "poison_shards",
    "leases_rearmed",
})
#: ``chaos_`` covers injected-fault totals: a survivable fault schedule
#: must leave the canonical report identical to a fault-free run, so
#: injection bookkeeping cannot appear in it.
_NONCANONICAL_PREFIXES = ("store_", "cache_", "chaos_")
#: Trace-event namespaces that record durability/degradation mechanics,
#: not conclusions: ``checkpoint.*`` (hit/write/corrupt/rerun) and
#: ``store.*`` (e.g. ``store.degraded``) both drop from canonical form.
_NONCANONICAL_EVENT_PREFIXES = ("checkpoint.", "store.")


def is_canonical_key(key: str) -> bool:
    """True when a metric/counter key is a run *fact* (kept by the
    canonical form) rather than run mechanics (wall clock, cache and
    store effectiveness, worker counts)."""
    return not (key in _NONCANONICAL_KEYS
                or key.endswith("_seconds")
                or key.startswith(_NONCANONICAL_PREFIXES))


def canonical_counters(counters: dict) -> dict:
    """The canonical subset of a counters dict.

    Public because every report family that honours the byte-identical
    contract -- campaign reports here, scenario rollups in
    :mod:`repro.scenarios.report` -- must strip the same keys.
    """
    return {k: v for k, v in counters.items() if is_canonical_key(k)}


# Backwards-compatible private aliases.
_is_canonical_key = is_canonical_key
_canonical_counters = canonical_counters


def render_report(report: CbvReport, max_queue_items: int = 20) -> str:
    """Human-readable campaign summary (the designer's morning read)."""
    lines = [f"=== CBV campaign: {report.bundle_name} ==="]
    for stage in report.stages:
        mark = _STATUS_MARK[stage.status]
        lines.append(f"[{mark:>4}] {stage.stage.value}: {stage.summary}")
        for detail in stage.details[:5]:
            lines.append(f"        - {detail}")
    errored = report.errored_stages()
    if errored:
        lines.append(f"--- {len(errored)} stage(s) ERRORED (tool faults, "
                     f"not design verdicts) ---")
    open_items = report.queue.open_items()
    lines.append(f"--- designer queue: {len(open_items)} open item(s), "
                 f"{'tapeout-clean' if report.queue.tapeout_clean() else 'NOT clean'} ---")
    for item in open_items[:max_queue_items]:
        dup = f" (x{item.count})" if item.count > 1 else ""
        lines.append(f"  [{item.severity.value:>9}] {item.source} / "
                     f"{item.subject}: {item.message}{dup}")
    if len(open_items) > max_queue_items:
        lines.append(f"  ... and {len(open_items) - max_queue_items} more")
    return "\n".join(lines)


#: Setup-path counters worth a second trace line, in display order.
#: ``(key, short label)`` -- zeros are elided so quiet stages stay one
#: line; ``table_build_seconds`` keeps its unit.
_SETUP_TRACE_KEYS = (
    ("table_build_seconds", "build"),
    ("store_table_loaded", "store-load"),
    ("store_table_hits", "store-hits"),
    ("path_sweeps", "sweeps"),
    ("target_sweeps", "tsweeps"),
    ("pair_enumerations", "pair-enums"),
    ("path_cache_hits", "path-hits"),
    ("packed_template_hits", "tpl-hits"),
)


def _setup_line(counters: dict) -> str | None:
    parts = []
    for key, label in _SETUP_TRACE_KEYS:
        value = counters.get(key)
        if not value:
            continue
        if key.endswith("_seconds"):
            parts.append(f"{label}={value:.2f}s")
        else:
            parts.append(f"{label}={value:g}")
    return " ".join(parts) if parts else None


def render_trace(trace: CampaignTrace, max_events: int | None = None) -> str:
    """Human-readable event log (one line per trace event).

    Stages that exercised the setup path (packed-table builds, path
    sweeps, store loads) get a second, indented ``setup:`` line so a
    designer can see at a glance where build time went and what the
    caches saved.
    """
    lines = [f"=== campaign trace: {len(trace.events)} event(s), "
             f"{trace.total_seconds() * 1e3:.1f} ms ==="]
    events = trace.events if max_events is None else trace.events[:max_events]
    for e in events:
        status = f" [{e.status}]" if e.status else ""
        wall = f" ({e.wall_s * 1e3:.2f} ms)" if e.wall_s is not None else ""
        lines.append(f"  t+{e.t_s * 1e3:9.2f}ms {e.event:<14} "
                     f"{e.name}{status}{wall}")
        setup = _setup_line(e.counters) if e.counters else None
        if setup is not None:
            lines.append(f"{'':>15} setup: {setup}")
    if max_events is not None and len(trace.events) > max_events:
        lines.append(f"  ... and {len(trace.events) - max_events} more")
    return "\n".join(lines)


def trace_to_dicts(trace: CampaignTrace, canonical: bool) -> list[dict]:
    """Serialize a trace, optionally in the canonical form.

    Canonical: ``checkpoint.*`` and ``store.*`` events drop out
    entirely (resume/degradation mechanics, not conclusions), and each
    surviving event loses its sequencing/timing/worker stamps and its
    non-canonical counters.  Shared with the scenario report family for
    the same reason as :func:`canonical_counters`.
    """
    if not canonical:
        return trace.to_dicts()
    out = []
    for e in trace.events:
        if e.event.startswith(_NONCANONICAL_EVENT_PREFIXES):
            continue
        d = e.to_dict()
        for key in ("seq", "t_s", "wall_s", "worker"):
            d.pop(key, None)
        if "counters" in d:
            counters = canonical_counters(d["counters"])
            if counters:
                d["counters"] = counters
            else:
                del d["counters"]
        out.append(d)
    return out


_trace_to_dicts = trace_to_dicts


def report_to_dict(report: CbvReport, canonical: bool = False) -> dict:
    """Machine-readable campaign summary (CI dashboards, trend lines).

    ``canonical=True`` yields the run-order-independent form: wall-clock
    and cache/store-effectiveness values and ``checkpoint.*`` trace
    events are stripped, so a resumed run and a cold run of the same
    design serialize identically.
    """
    return {
        "design": report.bundle_name,
        "ok": report.ok(),
        "tapeout_clean": report.queue.tapeout_clean(),
        "stages": [
            (dict(s.to_dict(), metrics=canonical_counters(s.metrics))
             if canonical else s.to_dict())
            for s in report.stages
        ],
        "queue": [
            {
                "source": i.source,
                "subject": i.subject,
                "severity": i.severity.value,
                "message": i.message,
                "count": i.count,
                "waived": i.waived,
                "waive_reason": i.waive_reason,
            }
            for i in report.queue.items
        ],
        "trace": trace_to_dicts(report.trace, canonical),
    }


def report_from_dict(data: dict) -> CbvReport:
    """Inverse of :func:`report_to_dict` (full form).

    Restores every serialized field -- stages of any status (ERROR
    tracebacks ride in ``details``), queue items with waiver state and
    duplicate counts, and the trace event log.  ``flat`` / ``design`` /
    ``timing`` are not part of the dict and come back ``None``; the
    derived ``ok`` / ``tapeout_clean`` entries are recomputed from the
    restored state rather than trusted.
    """
    report = CbvReport(bundle_name=str(data["design"]))
    for s in data.get("stages", []):
        report.stages.append(StageResult.from_dict(s))
    for i in data.get("queue", []):
        report.queue.items.append(QueueItem(
            source=str(i["source"]),
            subject=str(i["subject"]),
            severity=Severity(i["severity"]),
            message=str(i["message"]),
            waived=bool(i.get("waived", False)),
            waive_reason=str(i.get("waive_reason", "")),
            count=int(i.get("count", 1)),
        ))
    report.trace = CampaignTrace.from_dicts(data.get("trace", []))
    return report


def report_to_json(report: CbvReport, indent: int = 2,
                   canonical: bool = False) -> str:
    """JSON text of :func:`report_to_dict`."""
    return json.dumps(report_to_dict(report, canonical=canonical),
                      indent=indent, sort_keys=True)
