"""Text and JSON rendering of a CBV report."""

from __future__ import annotations

import json

from repro.core.campaign import CbvReport
from repro.core.stages import StageStatus

_STATUS_MARK = {
    StageStatus.PASS: "ok",
    StageStatus.ATTENTION: "ATTN",
    StageStatus.FAIL: "FAIL",
    StageStatus.SKIPPED: "--",
}


def render_report(report: CbvReport, max_queue_items: int = 20) -> str:
    """Human-readable campaign summary (the designer's morning read)."""
    lines = [f"=== CBV campaign: {report.bundle_name} ==="]
    for stage in report.stages:
        mark = _STATUS_MARK[stage.status]
        lines.append(f"[{mark:>4}] {stage.stage.value}: {stage.summary}")
        for detail in stage.details[:5]:
            lines.append(f"        - {detail}")
    open_items = report.queue.open_items()
    lines.append(f"--- designer queue: {len(open_items)} open item(s), "
                 f"{'tapeout-clean' if report.queue.tapeout_clean() else 'NOT clean'} ---")
    for item in open_items[:max_queue_items]:
        lines.append(f"  [{item.severity.value:>9}] {item.source} / "
                     f"{item.subject}: {item.message}")
    if len(open_items) > max_queue_items:
        lines.append(f"  ... and {len(open_items) - max_queue_items} more")
    return "\n".join(lines)


def report_to_dict(report: CbvReport) -> dict:
    """Machine-readable campaign summary (CI dashboards, trend lines)."""
    return {
        "design": report.bundle_name,
        "ok": report.ok(),
        "tapeout_clean": report.queue.tapeout_clean(),
        "stages": [
            {
                "stage": s.stage.value,
                "status": s.status.value,
                "summary": s.summary,
                "metrics": dict(s.metrics),
            }
            for s in report.stages
        ],
        "queue": [
            {
                "source": i.source,
                "subject": i.subject,
                "severity": i.severity.value,
                "message": i.message,
                "waived": i.waived,
                "waive_reason": i.waive_reason,
            }
            for i in report.queue.items
        ],
    }


def report_to_json(report: CbvReport, indent: int = 2) -> str:
    """JSON text of :func:`report_to_dict`."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)
