"""The CBV verification campaign: the Figure-2 flow as one call.

A :class:`DesignBundle` packages everything the flow needs about one
design; :meth:`CbvCampaign.run` executes the stages in order and
collects a :class:`CbvReport`.  Verification stages never block each
other -- the paper's flow reports everything and lets the designer
triage, rather than dying at the first red box.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.checks.base import CheckContext, CheckSettings
from repro.checks.filters import filter_findings
from repro.checks.registry import run_battery
from repro.core.stages import FlowStage, StageResult, StageStatus
from repro.core.triage import DesignerQueue
from repro.equivalence.combinational import check_gate_vs_function
from repro.extraction.annotate import annotate
from repro.extraction.caps import Parasitics
from repro.extraction.extract import extract_macrocell
from repro.extraction.wireload import WireloadModel
from repro.layout.antenna_geom import antenna_geometry
from repro.layout.macrocell import generate_macrocell
from repro.netlist.cell import Cell
from repro.netlist.erc import run_erc
from repro.netlist.flatten import FlatNetlist, flatten
from repro.perf import collect_counters
from repro.process.corners import Corner
from repro.process.technology import Technology
from repro.recognition.recognizer import RecognizedDesign, recognize
from repro.timing.analyzer import TimingReport
from repro.timing.arccache import ArcPriceCache
from repro.timing.clocking import TwoPhaseClock
from repro.timing.constraints import generate_constraints
from repro.timing.delay import ArcDelayCalculator
from repro.timing.graph import build_timing_graph
from repro.timing.analyzer import TimingAnalyzer
from repro.timing.pessimism import PessimismSettings


@dataclass
class DesignBundle:
    """Everything the flow needs to verify one design.

    Attributes
    ----------
    name / cell / technology / clock:
        The design and its operating context.
    clock_hints:
        Declared clock nets (footless domino etc.).
    rtl_intent:
        Output net -> boolean predicate over named inputs -- the
        RTL-equivalence obligations.  ``rtl_inputs`` names the input
        ordering per output.
    use_layout:
        True: generate a macrocell and extract from geometry; False:
        wireload model (the feasibility-study mode).
    false_through:
        Architecturally false path exclusions (designer intent).
    """

    name: str
    cell: Cell
    technology: Technology
    clock: TwoPhaseClock
    clock_hints: tuple[str, ...] = ()
    rtl_intent: dict[str, Callable[..., bool]] = field(default_factory=dict)
    rtl_inputs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    use_layout: bool = True
    #: Pre-extracted parasitics to use instead of the default wireload
    #: model when ``use_layout`` is False (e.g. a tuned WireloadModel).
    parasitics: Parasitics | None = None
    false_through: tuple[str, ...] = ()
    pessimism: PessimismSettings = field(default_factory=PessimismSettings)
    check_settings: CheckSettings = field(default_factory=CheckSettings)


@dataclass
class CbvReport:
    """Aggregate of one campaign run."""

    bundle_name: str
    stages: list[StageResult] = field(default_factory=list)
    queue: DesignerQueue = field(default_factory=DesignerQueue)
    flat: FlatNetlist | None = None
    design: RecognizedDesign | None = None
    timing: TimingReport | None = None

    def stage(self, stage: FlowStage) -> StageResult:
        for result in self.stages:
            if result.stage is stage:
                return result
        raise KeyError(f"stage {stage} did not run")

    def ok(self) -> bool:
        return all(s.ok() for s in self.stages) and self.queue.tapeout_clean()


class CbvCampaign:
    """Runs the Figure-2 flow over one bundle."""

    def __init__(self, bundle: DesignBundle):
        self.bundle = bundle

    def run(self) -> CbvReport:
        bundle = self.bundle
        report = CbvReport(bundle_name=bundle.name)

        # -- schematic entry (with ERC) -----------------------------------------
        flat = flatten(bundle.cell)
        report.flat = flat
        erc_violations = run_erc(flat)
        report.stages.append(StageResult(
            stage=FlowStage.SCHEMATIC,
            status=StageStatus.FAIL if erc_violations else StageStatus.PASS,
            summary=f"{flat.device_count()} transistors, "
                    f"{len(flat.nets)} nets, "
                    f"{len(erc_violations)} ERC violation(s)",
            metrics={"transistors": float(flat.device_count()),
                     "nets": float(len(flat.nets)),
                     "erc_violations": float(len(erc_violations))},
            details=[f"{v.rule}: {v.subject}: {v.message}"
                     for v in erc_violations[:10]],
        ))

        # -- recognition -------------------------------------------------------
        design = recognize(flat, clock_hints=bundle.clock_hints)
        report.design = design
        hist = design.family_histogram()
        report.stages.append(StageResult(
            stage=FlowStage.RECOGNITION, status=StageStatus.PASS,
            summary=", ".join(f"{fam.value}: {count}"
                              for fam, count in sorted(
                                  hist.items(), key=lambda kv: kv[0].value)),
            metrics=collect_counters(
                {
                    "cccs": float(len(design.cccs)),
                    "clocks": float(len(design.clocks)),
                    "storage": float(len(design.storage)),
                    "dynamic_nodes": float(len(design.dynamic_nodes)),
                },
                design.perf,
            ),
        ))

        # -- layout & extraction ------------------------------------------------
        antenna = None
        if bundle.use_layout:
            mc = generate_macrocell(bundle.name, flat.transistors,
                                    l_min_um=bundle.technology.l_min_um)
            parasitics = extract_macrocell(mc, bundle.technology.wires)
            antenna = antenna_geometry(mc.layout, flat,
                                       l_min_um=bundle.technology.l_min_um)
            report.stages.append(StageResult(
                stage=FlowStage.LAYOUT, status=StageStatus.PASS,
                summary=f"macrocell {mc.width_um:.1f} um wide, "
                        f"{mc.breaks} diffusion breaks",
                metrics={"width_um": mc.width_um, "breaks": float(mc.breaks)},
            ))
        else:
            parasitics = bundle.parasitics if bundle.parasitics is not None \
                else WireloadModel().extract(flat, bundle.technology.wires)
            report.stages.append(StageResult(
                stage=FlowStage.LAYOUT, status=StageStatus.SKIPPED,
                summary="no layout; wireload parasitics in use",
            ))
        coupled = sum(1 for p in parasitics.nets.values() if p.couplings)
        report.stages.append(StageResult(
            stage=FlowStage.EXTRACTION, status=StageStatus.PASS,
            summary=f"{len(parasitics.nets)} nets extracted, "
                    f"{coupled} with coupling",
            metrics={"nets": float(len(parasitics.nets)),
                     "coupled_nets": float(coupled)},
        ))

        # -- logic verification ----------------------------------------------------
        report.stages.append(self._logic_stage(design))

        # -- circuit verification (the check battery) ---------------------------------
        typical = annotate(flat, parasitics, bundle.technology, Corner.TYPICAL)
        fast = annotate(flat, parasitics, bundle.technology, Corner.FAST)
        slow = annotate(flat, parasitics, bundle.technology, Corner.SLOW)
        ctx = CheckContext(design=design, typical=typical, fast=fast,
                           slow=slow, clock=bundle.clock, antenna=antenna,
                           settings=bundle.check_settings)
        battery = run_battery(ctx)
        stats = battery.queues.stats()
        report.queue.add_findings(battery.findings)
        status = (StageStatus.FAIL if stats.violations
                  else StageStatus.ATTENTION if stats.inspect
                  else StageStatus.PASS)
        report.stages.append(StageResult(
            stage=FlowStage.CIRCUIT_VERIFICATION, status=status,
            summary=f"{stats.total} findings: {stats.passed} auto-cleared, "
                    f"{stats.inspect} to inspect, {stats.violations} violations",
            metrics={"findings": float(stats.total),
                     "inspect": float(stats.inspect),
                     "violations": float(stats.violations),
                     "auto_cleared_fraction": stats.auto_cleared_fraction(),
                     "battery_seconds": battery.total_seconds()},
        ))

        # -- timing verification ---------------------------------------------------------
        calculator = ArcDelayCalculator(fast, slow, bundle.pessimism)
        arc_cache = ArcPriceCache()
        graph = build_timing_graph(design, calculator, arc_cache=arc_cache)
        constraints = generate_constraints(design, bundle.pessimism)
        analyzer = TimingAnalyzer(design, graph, bundle.clock, constraints)
        analyzer.declare_false_through(*bundle.false_through)
        timing = analyzer.verify()
        report.timing = timing
        report.queue.add_timing(timing.setup_violations, timing.races)
        timing_status = (StageStatus.FAIL
                         if timing.setup_violations or timing.races
                         else StageStatus.PASS)
        report.stages.append(StageResult(
            stage=FlowStage.TIMING_VERIFICATION, status=timing_status,
            summary=f"min cycle {timing.min_cycle_time_s * 1e9:.2f} ns "
                    f"({timing.max_frequency_hz() / 1e6:.0f} MHz), "
                    f"{len(timing.setup_violations)} setup violations, "
                    f"{len(timing.races)} races",
            metrics=collect_counters(
                {"min_cycle_s": timing.min_cycle_time_s,
                 "setup_violations": float(len(timing.setup_violations)),
                 "races": float(len(timing.races))},
                analyzer,
                arc_cache,
            ),
        ))
        return report

    def _logic_stage(self, design: RecognizedDesign) -> StageResult:
        bundle = self.bundle
        if not bundle.rtl_intent:
            return StageResult(
                stage=FlowStage.LOGIC_VERIFICATION, status=StageStatus.SKIPPED,
                summary="no RTL intent declared",
            )
        mismatches: list[str] = []
        checked = 0
        for output, intent in bundle.rtl_intent.items():
            inputs = bundle.rtl_inputs.get(output)
            if inputs is None:
                mismatches.append(f"{output}: no input ordering declared")
                continue
            try:
                result = check_gate_vs_function(design, output, intent,
                                                list(inputs))
            except ValueError as exc:
                mismatches.append(f"{output}: {exc}")
                continue
            checked += 1
            if not result.equivalent:
                mismatches.append(
                    f"{output}: differs from intent at {result.counterexample}")
        status = StageStatus.FAIL if mismatches else StageStatus.PASS
        return StageResult(
            stage=FlowStage.LOGIC_VERIFICATION, status=status,
            summary=f"{checked} outputs proven equivalent"
                    + (f"; {len(mismatches)} problems" if mismatches else ""),
            metrics={"outputs_checked": float(checked),
                     "mismatches": float(len(mismatches))},
            details=mismatches,
        )
