"""The CBV verification campaign: the Figure-2 flow as one call.

A :class:`DesignBundle` packages everything the flow needs about one
design; :meth:`CbvCampaign.run` executes the stages in order and
collects a :class:`CbvReport`.  Verification stages never block each
other -- the paper's flow reports everything and lets the designer
triage, rather than dying at the first red box.

That promise is enforced, not aspirational: every stage runs under fault
isolation.  A stage that raises records ``StageStatus.ERROR`` with its
traceback and the campaign keeps going -- downstream stages run on
whatever artifacts exist and only true dependents are skipped (with a
``SKIPPED`` result naming the missing artifact).  The check battery has
its own per-check isolation (see :mod:`repro.checks.registry`), so a
crashing or hung check degrades to one VIOLATION finding.  Everything
the run did is logged to a structured :class:`~repro.core.trace.CampaignTrace`
on the report.

Durability is the third leg (``run(store=..., resume=True)``): each
completed stage is checkpointed to a crash-safe
:class:`~repro.store.ArtifactStore` under a key fingerprinting exactly
that stage's inputs, and a resumed run replays finished stages --
verified by checksum, corrupt blobs quarantined and re-run -- producing
a report canonically byte-identical to a cold run.  See
:mod:`repro.store`.

The same store / trace / canonical-report contract is shared by the
statistical campaigns in :mod:`repro.scenarios`
(:class:`~repro.scenarios.campaign.ScenarioCampaign`): fuzz and
Monte-Carlo runs checkpoint per sample shard, resume without re-running
checkpointed seeds, and serialize through the same canonical JSON rules
(:mod:`repro.core.report`), so their reports are byte-comparable across
cold, resumed, and fleet runs exactly like :class:`CbvReport`.
"""

from __future__ import annotations

import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.checks.base import Check, CheckSettings
from repro.checks.driver import make_context
from repro.checks.registry import ALL_CHECKS, BatteryResult, run_battery
from repro.core.stages import FlowStage, StageResult, StageStatus
from repro.core.trace import CampaignTrace, TraceEvent
from repro.core.triage import DesignerQueue
from repro.equivalence.combinational import check_gate_vs_function
from repro.extraction.caps import Parasitics
from repro.extraction.extract import extract_macrocell
from repro.extraction.wireload import WireloadModel
from repro.layout.antenna_geom import antenna_geometry
from repro.layout.macrocell import generate_macrocell
from repro.netlist.cell import Cell
from repro.netlist.erc import run_erc
from repro.netlist.flatten import FlatNetlist, flatten
from repro.perf import collect_counters
from repro.perf.stopwatch import Stopwatch
from repro.process.technology import Technology
from repro.recognition.conduction import enumeration_counters
from repro.recognition.recognizer import RecognizedDesign, recognize
from repro.switchsim import Logic, OscillationError, SwitchSimulator
from repro.timing.analyzer import TimingReport
from repro.timing.arccache import ArcPriceCache
from repro.timing.clocking import TwoPhaseClock
from repro.timing.constraints import generate_constraints
from repro.timing.delay import ArcDelayCalculator
from repro.timing.graph import build_timing_graph
from repro.timing.analyzer import TimingAnalyzer
from repro.timing.pessimism import PessimismSettings

_MISSING = object()


def _enum_delta(before: dict[str, int]) -> dict[str, float]:
    """Path-enumeration counter movement since ``before`` (a snapshot
    of :func:`repro.recognition.conduction.enumeration_counters`)."""
    return {k: float(v - before.get(k, 0))
            for k, v in enumeration_counters().items()}


@dataclass
class DesignBundle:
    """Everything the flow needs to verify one design.

    Attributes
    ----------
    name / cell / technology / clock:
        The design and its operating context.
    clock_hints:
        Declared clock nets (footless domino etc.).
    rtl_intent:
        Output net -> boolean predicate over named inputs -- the
        RTL-equivalence obligations.  ``rtl_inputs`` names the input
        ordering per output.
    functional_vectors:
        Switch-level stimulus for the logic stage's simulation leg:
        a sequence of steps, each mapping net name -> ``0`` / ``1`` /
        :class:`~repro.switchsim.Logic` / ``"release"`` (stop driving).
        Each step is applied (nets in sorted order) and settled before
        the next.  ``functional_probes`` names nets that must settle
        to a known value after the last step -- an ``X`` probe fails
        the stage, as does an oscillation during any step.
    sim_engine:
        Which switch-level engine runs the vectors: ``"vector"`` (the
        default; routes packed tables through the session cache) or
        ``"reference"`` (authoritative scalar semantics).
    use_layout:
        True: generate a macrocell and extract from geometry; False:
        wireload model (the feasibility-study mode).
    false_through:
        Architecturally false path exclusions (designer intent).
    """

    name: str
    cell: Cell
    technology: Technology
    clock: TwoPhaseClock
    clock_hints: tuple[str, ...] = ()
    rtl_intent: dict[str, Callable[..., bool]] = field(default_factory=dict)
    rtl_inputs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    functional_vectors: tuple = ()
    functional_probes: tuple[str, ...] = ()
    sim_engine: str = "vector"
    use_layout: bool = True
    #: Pre-extracted parasitics to use instead of the default wireload
    #: model when ``use_layout`` is False (e.g. a tuned WireloadModel).
    parasitics: Parasitics | None = None
    false_through: tuple[str, ...] = ()
    pessimism: PessimismSettings = field(default_factory=PessimismSettings)
    check_settings: CheckSettings = field(default_factory=CheckSettings)


@dataclass
class CbvReport:
    """Aggregate of one campaign run."""

    bundle_name: str
    stages: list[StageResult] = field(default_factory=list)
    queue: DesignerQueue = field(default_factory=DesignerQueue)
    flat: FlatNetlist | None = None
    design: RecognizedDesign | None = None
    timing: TimingReport | None = None
    #: Structured event log of the run (JSON-lines serializable).
    trace: CampaignTrace = field(default_factory=CampaignTrace)
    #: The inter-stage artifact map (``flat`` / ``design`` /
    #: ``parasitics`` / ``antenna`` / ``ctx`` / ``battery`` ...) exactly
    #: as the run left it.  Partial runs (``run(until=...)``) expose
    #: their intermediate products here so a distributed executor
    #: (:mod:`repro.fleet`) can continue from them; never serialized by
    #: :func:`repro.core.report.report_to_dict`.
    artifacts: dict = field(default_factory=dict, repr=False)

    def stage(self, stage: FlowStage, default=_MISSING) -> StageResult:
        """The result of ``stage``; ``default`` (when given) instead of a
        KeyError for stages a degraded run never reached."""
        for result in self.stages:
            if result.stage is stage:
                return result
        if default is not _MISSING:
            return default
        ran = ", ".join(s.stage.value for s in self.stages) or "none"
        raise KeyError(f"stage {stage.value!r} did not run "
                       f"(stages that ran: {ran})")

    def errored_stages(self) -> list[StageResult]:
        return [s for s in self.stages if s.status is StageStatus.ERROR]

    def ok(self) -> bool:
        return all(s.ok() for s in self.stages) and self.queue.tapeout_clean()


class CbvCampaign:
    """Runs the Figure-2 flow over one bundle."""

    def __init__(self, bundle: DesignBundle):
        self.bundle = bundle

    def run(self, *, cache=None, parallel: int | None = None,
            checks: tuple[type[Check], ...] = ALL_CHECKS,
            timeout_s: float | None = None,
            trace: CampaignTrace | None = None,
            store=None, resume: bool = False,
            until: FlowStage | None = None,
            battery_runner: Callable[..., BatteryResult] | None = None,
            ) -> CbvReport:
        """Execute the flow; never raises for a stage or check fault.

        ``cache`` is a :class:`repro.perf.DesignCache`: recognition,
        extraction, and corner annotation route through it (and through
        :func:`repro.checks.driver.make_context`), so a session verifying
        several views of one netlist derives each artifact once.
        ``parallel`` / ``timeout_s`` / ``checks`` are handed to
        :func:`repro.checks.registry.run_battery`.

        ``store`` is a :class:`repro.store.ArtifactStore`: every stage
        that completes with a design verdict (PASS / ATTENTION / FAIL)
        is checkpointed atomically under its input fingerprint.  With
        ``resume=True``, stages whose checkpoint verifies are replayed
        (result, artifacts, and trace events restored) instead of
        re-executed; ERROR and SKIPPED outcomes, batteries that recorded
        check crashes, and corrupt or missing blobs always re-run.
        Checkpoint faults degrade -- a corrupt blob is quarantined and
        logged as a ``checkpoint.corrupt`` trace event, a failed write
        as ``checkpoint.write_error``, and a store stuck in ENOSPC
        degraded mode as a single ``store.degraded`` event after which
        the campaign runs un-checkpointed -- and never abort the
        campaign (see :class:`repro.store.checkpoint.CheckpointWriter`).

        ``until`` stops the flow after the named stage (inclusive) -- a
        partial run whose intermediate products stay available on
        ``report.artifacts``; the fleet uses this to split one design's
        flow across processes.  ``battery_runner`` replaces
        :func:`run_battery` for the circuit stage: it is called as
        ``battery_runner(ctx, trace)`` and must return a
        :class:`BatteryResult` (the fleet's merged-shard loader).
        """
        bundle = self.bundle
        if trace is None:
            trace = CampaignTrace()
        report = CbvReport(bundle_name=bundle.name, trace=trace)
        art: dict[str, object] = report.artifacts
        watch = Stopwatch()
        keys: dict[FlowStage, str] = {}
        # Imported here, not at module top: repro.store fingerprints
        # FlowStage-keyed inputs, so a module-level import would be
        # circular (store -> core.stages -> core -> campaign -> store).
        from repro.store.artifact import CorruptArtifact, StoreMiss
        from repro.store.checkpoint import CheckpointWriter
        writer = CheckpointWriter(store, trace)
        if store is not None:
            from repro.store.checkpoint import stage_keys
            keys = stage_keys(bundle, checks=checks, timeout_s=timeout_s)
        if (store is not None and cache is not None
                and getattr(cache, "store", None) is None):
            # Let the session cache persist/load packed switch tables
            # under their content fingerprint: a resumed campaign or a
            # sibling fleet worker then skips the table build entirely.
            cache.store = store
        trace.emit("campaign_start", name=bundle.name)

        def load_checkpoint(flow: FlowStage, key: str):
            """(result, artifacts, events) from the store, or None.

            Any verification failure -- including a payload that decodes
            but has the wrong shape -- quarantines the blob, emits
            ``checkpoint.corrupt``, and falls back to execution.
            """
            try:
                payload, _meta = store.get(key)
            except StoreMiss:
                return None
            except CorruptArtifact as exc:
                trace.emit("checkpoint.corrupt", name=flow.value,
                           detail=str(exc))
                return None
            result = payload.get("result") if isinstance(payload, dict) else None
            try:
                if (not isinstance(result, StageResult)
                        or result.stage is not flow
                        or not isinstance(payload.get("artifacts"), dict)):
                    raise ValueError("payload shape is not a stage checkpoint")
                # Validate the event slice up front so replay cannot fail
                # halfway through its side effects.
                for d in payload["events"]:
                    TraceEvent.from_dict(d)
            except Exception as exc:  # noqa: BLE001 -- degrade to re-run
                store.invalidate(key)
                trace.emit("checkpoint.corrupt", name=flow.value,
                           detail=f"{key}: {type(exc).__name__}: {exc}")
                return None
            return result, payload["artifacts"], payload["events"]

        def run_stage(flow: FlowStage, fn: Callable[[], StageResult],
                      requires: tuple[str, ...] = (),
                      capture: Callable[[], dict | None] | None = None,
                      replay: Callable[[dict], None] | None = None) -> None:
            missing = [key for key in requires if key not in art]
            if missing:
                result = StageResult(
                    stage=flow, status=StageStatus.SKIPPED,
                    summary="skipped: missing upstream artifact(s): "
                            + ", ".join(missing),
                )
                report.stages.append(result)
                trace.emit("stage_skipped", name=flow.value,
                           status=result.status.value, detail=result.summary)
                return

            key = keys.get(flow)
            if store is not None and resume and key is not None:
                loaded = load_checkpoint(flow, key)
                if loaded is not None:
                    result, artifacts, events = loaded
                    rerun = result.status in (StageStatus.ERROR,
                                              StageStatus.SKIPPED)
                    if not rerun:
                        try:
                            # Artifact restoration comes first: a payload
                            # missing a key fails here, before any trace
                            # or report mutation, and degrades to re-run.
                            if replay is not None:
                                replay(artifacts)
                        except Exception as exc:  # noqa: BLE001 -- degrade
                            store.invalidate(key)
                            trace.emit(
                                "checkpoint.corrupt", name=flow.value,
                                detail=f"{key}: replay failed: "
                                       f"{type(exc).__name__}: {exc}")
                        else:
                            trace.replay(events)
                            report.stages.append(result)
                            trace.emit("checkpoint.hit", name=flow.value,
                                       status=result.status.value)
                            return
                    else:
                        trace.emit("checkpoint.rerun", name=flow.value,
                                   status=result.status.value)

            first_event = len(trace.events)
            trace.emit("stage_start", name=flow.value)
            stage_watch = Stopwatch()
            try:
                result = fn()
            except Exception as exc:  # noqa: BLE001 -- isolation is the point
                tb = traceback.format_exc()
                result = StageResult(
                    stage=flow, status=StageStatus.ERROR,
                    summary=f"stage crashed: {type(exc).__name__}: {exc}",
                    details=tb.rstrip().splitlines(),
                )
            report.stages.append(result)
            trace.emit(
                "stage_end", name=flow.value, status=result.status.value,
                wall_s=stage_watch.elapsed(), counters=result.metrics,
                detail=("\n".join(result.details)
                        if result.status is StageStatus.ERROR else ""),
            )
            if (store is not None and key is not None
                    and result.status not in (StageStatus.ERROR,
                                              StageStatus.SKIPPED)):
                artifacts = capture() if capture is not None else {}
                if artifacts is not None:
                    payload = {
                        "result": result,
                        "artifacts": artifacts,
                        "events": [e.to_dict()
                                   for e in trace.events[first_event:]],
                    }
                    writer.write(key, payload, meta={
                        "design": bundle.name, "stage": flow.value,
                        "status": result.status.value,
                    }, label=flow.value)

        # -- schematic entry (with ERC) -----------------------------------------
        def schematic() -> StageResult:
            flat = flatten(bundle.cell)
            art["flat"] = flat
            report.flat = flat
            erc_violations = run_erc(flat)
            return StageResult(
                stage=FlowStage.SCHEMATIC,
                status=StageStatus.FAIL if erc_violations else StageStatus.PASS,
                summary=f"{flat.device_count()} transistors, "
                        f"{len(flat.nets)} nets, "
                        f"{len(erc_violations)} ERC violation(s)",
                metrics={"transistors": float(flat.device_count()),
                         "nets": float(len(flat.nets)),
                         "erc_violations": float(len(erc_violations))},
                details=[f"{v.rule}: {v.subject}: {v.message}"
                         for v in erc_violations[:10]],
            )

        # -- recognition -------------------------------------------------------
        def recognition() -> StageResult:
            flat = art["flat"]
            enum_before = enumeration_counters()
            if cache is not None:
                design = cache.recognized(flat, clock_hints=bundle.clock_hints)
            else:
                design = recognize(flat, clock_hints=bundle.clock_hints)
            art["design"] = design
            report.design = design
            hist = design.family_histogram()
            return StageResult(
                stage=FlowStage.RECOGNITION, status=StageStatus.PASS,
                summary=", ".join(f"{fam.value}: {count}"
                                  for fam, count in sorted(
                                      hist.items(), key=lambda kv: kv[0].value)),
                metrics=collect_counters(
                    {
                        "cccs": float(len(design.cccs)),
                        "clocks": float(len(design.clocks)),
                        "storage": float(len(design.storage)),
                        "dynamic_nodes": float(len(design.dynamic_nodes)),
                    },
                    design.perf,
                    _enum_delta(enum_before),
                ),
            )

        # -- layout ------------------------------------------------------------
        def layout() -> StageResult:
            if not bundle.use_layout:
                return StageResult(
                    stage=FlowStage.LAYOUT, status=StageStatus.SKIPPED,
                    summary="no layout; wireload parasitics in use",
                )
            flat = art["flat"]
            mc = generate_macrocell(bundle.name, flat.transistors,
                                    l_min_um=bundle.technology.l_min_um)
            art["layout_parasitics"] = extract_macrocell(
                mc, bundle.technology.wires)
            art["antenna"] = antenna_geometry(
                mc.layout, flat, l_min_um=bundle.technology.l_min_um)
            return StageResult(
                stage=FlowStage.LAYOUT, status=StageStatus.PASS,
                summary=f"macrocell {mc.width_um:.1f} um wide, "
                        f"{mc.breaks} diffusion breaks",
                metrics={"width_um": mc.width_um, "breaks": float(mc.breaks)},
            )

        # -- extraction (wireload fallback keeps the flow alive if layout
        #    errored: the paper's feasibility mode is exactly this) ------------
        def extraction() -> StageResult:
            flat = art["flat"]
            fallback = ""
            parasitics = art.get("layout_parasitics")
            if parasitics is None:
                if bundle.parasitics is not None:
                    parasitics = bundle.parasitics
                elif cache is not None:
                    parasitics = cache.parasitics(flat, bundle.technology)
                else:
                    parasitics = WireloadModel().extract(
                        flat, bundle.technology.wires)
                if bundle.use_layout:
                    fallback = " (wireload fallback: layout stage failed)"
            art["parasitics"] = parasitics
            coupled = sum(1 for p in parasitics.nets.values() if p.couplings)
            return StageResult(
                stage=FlowStage.EXTRACTION, status=StageStatus.PASS,
                summary=f"{len(parasitics.nets)} nets extracted, "
                        f"{coupled} with coupling" + fallback,
                metrics={"nets": float(len(parasitics.nets)),
                         "coupled_nets": float(coupled)},
            )

        # -- logic verification -------------------------------------------------
        def logic() -> StageResult:
            return self._logic_stage(art["design"], art["flat"], cache)

        # -- circuit verification (the check battery) ---------------------------
        def circuit() -> StageResult:
            ctx = make_context(
                art["flat"], bundle.technology, clock=bundle.clock,
                clock_hints=bundle.clock_hints, parasitics=art["parasitics"],
                antenna=art.get("antenna"), settings=bundle.check_settings,
                design=art["design"], cache=cache,
            )
            art["ctx"] = ctx
            if battery_runner is not None:
                battery = battery_runner(ctx, trace)
            else:
                battery = run_battery(ctx, checks=checks, parallel=parallel,
                                      timeout_s=timeout_s, trace=trace)
            art["battery"] = battery
            stats = battery.queues.stats()
            report.queue.add_findings(battery.findings)
            status = (StageStatus.FAIL if stats.violations
                      else StageStatus.ATTENTION if stats.inspect
                      else StageStatus.PASS)
            return StageResult(
                stage=FlowStage.CIRCUIT_VERIFICATION, status=status,
                summary=f"{stats.total} findings: {stats.passed} auto-cleared, "
                        f"{stats.inspect} to inspect, "
                        f"{stats.violations} violations"
                        + (f", {len(battery.crashes)} check crash(es)"
                           if battery.crashes else ""),
                metrics={"findings": float(stats.total),
                         "inspect": float(stats.inspect),
                         "violations": float(stats.violations),
                         "check_crashes": float(len(battery.crashes)),
                         "auto_cleared_fraction": stats.auto_cleared_fraction(),
                         "battery_seconds": battery.total_seconds()},
                details=[f"{name}: {detail.splitlines()[-1]}"
                         for name, detail in battery.crashes.items()],
            )

        # -- timing verification ------------------------------------------------
        def timing_stage() -> StageResult:
            ctx = art["ctx"]
            design = art["design"]
            calculator = ArcDelayCalculator(ctx.fast, ctx.slow,
                                            bundle.pessimism)
            arc_cache = ArcPriceCache()
            graph = build_timing_graph(design, calculator,
                                       arc_cache=arc_cache)
            constraints = generate_constraints(design, bundle.pessimism)
            analyzer = TimingAnalyzer(design, graph, bundle.clock, constraints)
            analyzer.declare_false_through(*bundle.false_through)
            timing = analyzer.verify()
            report.timing = timing
            report.queue.add_timing(timing.setup_violations, timing.races)
            timing_status = (StageStatus.FAIL
                             if timing.setup_violations or timing.races
                             else StageStatus.PASS)
            return StageResult(
                stage=FlowStage.TIMING_VERIFICATION, status=timing_status,
                summary=f"min cycle {timing.min_cycle_time_s * 1e9:.2f} ns "
                        f"({timing.max_frequency_hz() / 1e6:.0f} MHz), "
                        f"{len(timing.setup_violations)} setup violations, "
                        f"{len(timing.races)} races",
                metrics=collect_counters(
                    {"min_cycle_s": timing.min_cycle_time_s,
                     "setup_violations": float(len(timing.setup_violations)),
                     "races": float(len(timing.races))},
                    analyzer,
                    arc_cache,
                ),
            )

        # -- checkpoint plumbing: what each stage persists (capture) and
        #    how a stored stage re-enters the live run (replay).  Replay
        #    handlers do their fallible work first and mutate the report/
        #    queue last, so a bad payload degrades cleanly to re-execution.
        def capture_schematic() -> dict:
            return {"flat": art["flat"]}

        def replay_schematic(a: dict) -> None:
            flat = a["flat"]
            art["flat"] = flat
            report.flat = flat

        def capture_recognition() -> dict:
            return {"design": art["design"]}

        def replay_recognition(a: dict) -> None:
            design = a["design"]
            art["design"] = design
            report.design = design

        def capture_layout() -> dict:
            return {"layout_parasitics": art["layout_parasitics"],
                    "antenna": art["antenna"]}

        def replay_layout(a: dict) -> None:
            parasitics, antenna = a["layout_parasitics"], a["antenna"]
            art["layout_parasitics"] = parasitics
            art["antenna"] = antenna

        def capture_extraction() -> dict:
            return {"parasitics": art["parasitics"]}

        def replay_extraction(a: dict) -> None:
            art["parasitics"] = a["parasitics"]

        def capture_circuit() -> dict | None:
            battery = art["battery"]
            # A battery that recorded check crashes is a tool fault, not
            # a design verdict: never checkpoint it, so the resume re-runs
            # the checks in (hopefully) a healthier environment.
            if battery.crashes:
                return None
            return {"battery": battery.to_dict()}

        def replay_circuit(a: dict) -> None:
            battery = BatteryResult.from_dict(a["battery"])
            # Rebuild the live context: downstream timing needs it even
            # when the battery itself is replayed from the store.
            ctx = make_context(
                art["flat"], bundle.technology, clock=bundle.clock,
                clock_hints=bundle.clock_hints, parasitics=art["parasitics"],
                antenna=art.get("antenna"), settings=bundle.check_settings,
                design=art["design"], cache=cache,
            )
            art["ctx"] = ctx
            art["battery"] = battery
            report.queue.add_findings(battery.findings)

        def capture_timing() -> dict:
            return {"timing": report.timing}

        def replay_timing(a: dict) -> None:
            timing = a["timing"]
            if not isinstance(timing, TimingReport):
                raise TypeError("checkpoint payload is not a TimingReport")
            report.timing = timing
            report.queue.add_timing(timing.setup_violations, timing.races)

        plan: list[tuple[FlowStage, Callable[[], StageResult], dict]] = [
            (FlowStage.SCHEMATIC, schematic,
             dict(capture=capture_schematic, replay=replay_schematic)),
            (FlowStage.RECOGNITION, recognition,
             dict(requires=("flat",), capture=capture_recognition,
                  replay=replay_recognition)),
            (FlowStage.LAYOUT, layout,
             dict(requires=("flat",), capture=capture_layout,
                  replay=replay_layout)),
            (FlowStage.EXTRACTION, extraction,
             dict(requires=("flat",), capture=capture_extraction,
                  replay=replay_extraction)),
            (FlowStage.LOGIC_VERIFICATION, logic,
             dict(requires=("design", "flat"))),
            (FlowStage.CIRCUIT_VERIFICATION, circuit,
             dict(requires=("flat", "design", "parasitics"),
                  capture=capture_circuit, replay=replay_circuit)),
            (FlowStage.TIMING_VERIFICATION, timing_stage,
             dict(requires=("design", "ctx"),
                  capture=capture_timing, replay=replay_timing)),
        ]
        if until is not None and until not in {flow for flow, _, _ in plan}:
            raise ValueError(f"until={until!r} is not a runnable flow stage")
        for flow, fn, kwargs in plan:
            run_stage(flow, fn, **kwargs)
            if flow is until:
                break

        trace.emit(
            "campaign_end", name=bundle.name,
            status="ok" if report.ok() else "needs-triage",
            wall_s=watch.elapsed(),
            counters=collect_counters(
                {"stages": float(len(report.stages)),
                 "errors": float(len(report.errored_stages())),
                 "open_items": float(len(report.queue.open_items()))},
                cache,
                store,
            ),
        )
        return report

    def _logic_stage(self, design: RecognizedDesign, flat: FlatNetlist,
                     cache=None) -> StageResult:
        bundle = self.bundle
        if not bundle.rtl_intent and not bundle.functional_vectors:
            return StageResult(
                stage=FlowStage.LOGIC_VERIFICATION, status=StageStatus.SKIPPED,
                summary="no RTL intent or functional vectors declared",
            )
        mismatches: list[str] = []
        checked = 0
        for output, intent in bundle.rtl_intent.items():
            inputs = bundle.rtl_inputs.get(output)
            if inputs is None:
                mismatches.append(f"{output}: no input ordering declared")
                continue
            try:
                result = check_gate_vs_function(design, output, intent,
                                                list(inputs))
            except ValueError as exc:
                mismatches.append(f"{output}: {exc}")
                continue
            checked += 1
            if not result.equivalent:
                mismatches.append(
                    f"{output}: differs from intent at {result.counterexample}")
        metrics = {"outputs_checked": float(checked)}
        parts = []
        if bundle.rtl_intent:
            parts.append(f"{checked} outputs proven equivalent")
        if bundle.functional_vectors:
            problems, sim_metrics = self._functional_leg(flat, cache)
            mismatches.extend(problems)
            metrics.update(sim_metrics)
            parts.append(f"{len(bundle.functional_vectors)} vectors simulated "
                         f"({int(sim_metrics['sim_events'])} events, "
                         f"{bundle.sim_engine} engine)")
        metrics["mismatches"] = float(len(mismatches))
        status = StageStatus.FAIL if mismatches else StageStatus.PASS
        return StageResult(
            stage=FlowStage.LOGIC_VERIFICATION, status=status,
            summary=", ".join(parts)
                    + (f"; {len(mismatches)} problems" if mismatches else ""),
            metrics=metrics,
            details=mismatches,
        )

    def _functional_leg(self, flat: FlatNetlist,
                        cache) -> tuple[list[str], dict[str, float]]:
        """Run the bundle's functional vectors through switch simulation.

        Returns ``(problems, metrics)``.  The metrics surface the
        engine's perf counters (``solve_count`` / ``skip_count`` /
        ``ccc_evaluations`` ...) alongside ``sim_steps`` and
        ``sim_events``, so campaign reports show how much solve work the
        dirty-group machinery avoided.
        """
        bundle = self.bundle
        kwargs: dict = {}
        if cache is not None:
            kwargs["cache"] = cache
        enum_before = enumeration_counters()
        sim = SwitchSimulator(flat, engine=bundle.sim_engine,
                              record_history=False, **kwargs)
        setup: dict[str, float] = _enum_delta(enum_before)
        tables = getattr(sim, "_tables", None)
        if tables is not None:
            setup["table_build_seconds"] = float(tables.build_wall_s)
            setup["store_table_loaded"] = (
                1.0 if tables.loaded_from_store else 0.0)
            setup.update({k: float(v)
                          for k, v in tables.counters().items()})
        problems: list[str] = []
        events = 0
        for step, stimuli in enumerate(bundle.functional_vectors):
            for net in sorted(stimuli):
                value = stimuli[net]
                if value == "release":
                    sim.release(net)
                else:
                    sim.drive(net, value)
            try:
                events += sim.settle()
            except OscillationError as exc:
                problems.append(f"functional step {step}: {exc}")
                break
        else:
            for probe in bundle.functional_probes:
                if sim.value(probe) is Logic.X:
                    problems.append(
                        f"functional probe {probe}: X after "
                        f"{len(bundle.functional_vectors)} vector(s)")
        metrics = collect_counters(
            {"sim_steps": float(len(bundle.functional_vectors)),
             "sim_events": float(events)},
            sim.counters,
            setup,
        )
        return problems, metrics
