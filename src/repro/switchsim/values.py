"""Logic values and net state for switch-level simulation."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Logic(enum.Enum):
    """A 3-value logic level.

    ``X`` covers both "unknown" and "conflicting"; high-impedance is not
    a separate value because an undriven net simply *retains* its last
    :class:`Logic` (charge storage).
    """

    ZERO = 0
    ONE = 1
    X = 2

    def __invert__(self) -> "Logic":
        if self is Logic.ZERO:
            return Logic.ONE
        if self is Logic.ONE:
            return Logic.ZERO
        return Logic.X

    def __bool__(self) -> bool:
        raise TypeError(
            "Logic values do not collapse to bool implicitly; compare with "
            "Logic.ONE/Logic.ZERO or use .is_definite()"
        )

    def is_definite(self) -> bool:
        return self is not Logic.X

    @staticmethod
    def from_bool(value: bool) -> "Logic":
        return Logic.ONE if value else Logic.ZERO

    @staticmethod
    def from_int(value: int) -> "Logic":
        if value == 0:
            return Logic.ZERO
        if value == 1:
            return Logic.ONE
        raise ValueError(f"cannot convert {value!r} to Logic (use Logic.X directly)")

    def __str__(self) -> str:
        return {Logic.ZERO: "0", Logic.ONE: "1", Logic.X: "X"}[self]


@dataclass
class NetState:
    """Dynamic state of one net during simulation.

    Attributes
    ----------
    value:
        Current logic level.
    driven:
        True when the level is held by a conducting path to a source
        (rail or testbench-driven port); False when it is retained
        charge, which the dynamic-leakage and charge-sharing checks of
        section 4.2 care about.
    """

    value: Logic = Logic.X
    driven: bool = False
