"""Packed array form of the switch-level simulation tables.

The reference engine keeps its pre-enumerated conduction paths in
per-CCC Python dicts; :class:`PackedSwitchTables` lowers exactly the
same data into flat numpy arrays so the vector engine can solve whole
batches of channel nets with array ops:

* **rows** -- one row per (CCC, channel net), ordered by CCC index then
  sorted net name.  This is the global solve space; a row id identifies
  both the net and the owning component.
* **paths CSR** -- ``path_ptr[row] : path_ptr[row+1]`` slices the per-row
  conduction paths (source net, rail flag, series conductance), laid out
  in the reference engine's accumulation order (source entries in
  ``[vdd, gnd, sorted ports]`` order, enumeration order within an
  entry), so masked segment sums reproduce its float results bit for
  bit.
* **conditions CSR** -- ``cond_ptr[path] : cond_ptr[path+1]`` slices the
  (gate net, required level) pairs that must hold for the path to
  conduct.
* **waves** -- a static levelization of each CCC's intra-evaluation
  dependencies.  The reference solves a CCC's nets in sorted order with
  mid-pass state visibility, which fixes *two* read disciplines: a net
  sees the **new** value of any dependency at an earlier sorted
  position, and the **old** (pre-pass) value of any dependency at a
  later position.  ``row_wave`` satisfies both: ``wave(reader) >
  wave(dep)`` for earlier-position deps (new value visible) and
  ``wave(dep) >= wave(reader)`` for later-position deps (update not yet
  applied when the reader solves).  Both constraint kinds point from
  earlier to later sorted positions, so one sorted pass computes the
  fixpoint.  Solving wave 0, then wave 1, ... with updates applied
  between waves then observes exactly the same intermediate states as
  the sequential sweep.
* **affected / aff_later CSR** -- the dirty-propagation tables: which
  rows must re-solve when a trigger net changes, and (for mid-pass
  expansion) only the rows at a *later* sorted position than the
  changed net, which is all the sequential pass would still reach.

Tables depend only on the flat netlist topology/geometry and
``l_min_um``; they are immutable once built and safe to share across
simulators.  :meth:`fingerprint_of` digests everything the build read,
so caches (see :meth:`repro.perf.DesignCache.switch_tables`) can detect
in-place netlist mutation (e.g. a sizing loop resizing devices) and
rebuild instead of serving stale conductances.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.netlist.flatten import FlatNetlist
from repro.netlist.nets import is_rail_name
from repro.recognition.ccc import ChannelConnectedComponent, extract_cccs
from repro.recognition.conduction import (
    _graph as switch_graph,
    conduction_paths,
    sweep_paths_to_target,
)

#: Version of the :class:`PackedSwitchTables` persistence payload; bump
#: when the pickled layout changes so stale store blobs are ignored
#: instead of misread.
TABLES_STORE_SCHEMA = 1

#: Benchmark escape hatch: ``benchmarks/setup_report.py`` flips this off
#: (together with ``conduction.SWEEP_ENABLED``) to time the historical
#: per-instance enumeration.  Leave on everywhere else; the stamped
#: arrays are byte-identical either way.
TEMPLATES_ENABLED = True


def csr_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenated CSR segments ``[s, s+c)``.

    The standard vectorized gather: for segment k, emits
    ``starts[k], starts[k]+1, ..., starts[k]+counts[k]-1`` in order.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts  # exclusive prefix sum
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


class _CCCTemplate:
    """One CCC's packed-table segment in name-free local id space.

    Chip-scale designs stamp the same cells hundreds of times; every
    stamped instance yields a CCC whose switch graph, geometry, net
    sort order, and port pattern are identical up to a renaming of
    nets.  The build keys CCCs on exactly the inputs its inner loop
    reads (:func:`_template_key`); equal keys guarantee every ordering
    decision -- sorted-net positions, source list, path enumeration
    preorder, wave levels, dirty sets -- coincides, so one enumerated
    template can be stamped per instance by substituting names.  The
    stamped arrays are byte-identical to what enumerating the instance
    directly would produce (asserted by tests and the setup benchmark).

    Local id space: channel nets take ids ``0..n-1`` in sorted order
    (so local id == solve position); external gate nets take ids from
    ``n`` up, in first-occurrence order over the transistor list.  Rail
    path sources are the sentinels -1 (vdd) / -2 (gnd).
    """

    __slots__ = (
        "n", "row_path_counts", "path_src_lid", "path_src_rail", "path_g",
        "path_cond_counts", "cond_gate_lid", "cond_level", "cond_internal",
        "row_wave", "affected", "aff_later_counts", "aff_later_flat",
    )

    def __init__(self) -> None:
        self.n = 0
        #: numpy columns mirroring the packed arrays, in local id space;
        #: dtypes match the final tables so stamping is concatenation.
        self.row_path_counts = np.empty(0, np.int64)
        self.path_src_lid = np.empty(0, np.int64)
        self.path_src_rail = np.empty(0, bool)
        self.path_g = np.empty(0, np.float64)
        self.path_cond_counts = np.empty(0, np.int64)
        self.cond_gate_lid = np.empty(0, np.int64)
        self.cond_level = np.empty(0, np.int8)
        self.cond_internal = np.empty(0, bool)
        self.row_wave = np.empty(0, np.int64)
        #: (trigger lid, sorted position array) pairs, insertion order.
        self.affected: list[tuple[int, np.ndarray]] = []
        #: mid-pass expansion CSR: per-row counts + flat sorted
        #: later-positions.
        self.aff_later_counts = np.empty(0, np.int64)
        self.aff_later_flat = np.empty(0, np.int64)


def _template_key(ccc: ChannelConnectedComponent, sorted_nets: list[str],
                  flat: FlatNetlist):
    """(key, local-id name list) for one CCC, or ``(None, names)``.

    The key covers everything the packed build reads: device order,
    polarity, exact geometry, the local-id shape of every terminal
    (rails appearing literally), and per-position port flags.  Returns
    ``None`` as the key for the rail-named-channel-net corner case
    (unregistered rail aliases), where name-based path termination
    inside the enumerator would not survive renaming.
    """
    idx: dict[str, int] = {}
    names: list[str] = []
    for nm in sorted_nets:
        idx[nm] = len(names)
        names.append(nm)
    devs = []
    for t in ccc.transistors:
        gate = t.gate
        if is_rail_name(gate):
            g_repr: object = gate
        else:
            g = idx.get(gate)
            if g is None:
                g = idx[gate] = len(names)
                names.append(gate)
            g_repr = g
        d, s = t.channel_terminals()
        d_repr = idx.get(d, d)  # non-channel terminals are rails: literal
        s_repr = idx.get(s, s)
        devs.append((t.polarity, t.w_um, t.l_um, t.l_add_um,
                     g_repr, d_repr, s_repr))
    ports = tuple(bool(flat.nets[nm].is_port) if nm in flat.nets else False
                  for nm in sorted_nets)
    if any(is_rail_name(nm) for nm in sorted_nets):
        return None, names
    return (len(sorted_nets), ports, tuple(devs)), names


class PackedSwitchTables:
    """Immutable packed solve tables for one flat netlist.

    Build with :meth:`build`; share freely between
    :class:`~repro.switchsim.vector.VectorSwitchSimulator` instances of
    the *same* (unmutated) netlist.
    """

    def __init__(self) -> None:
        # -- identity --------------------------------------------------
        self.flat: FlatNetlist | None = None
        self.l_min_um: float = 0.35
        self.fingerprint: str = ""
        # -- nets ------------------------------------------------------
        self.net_names: list[str] = []
        self.net_ids: dict[str, int] = {}
        self.n_nets: int = 0
        # -- components ------------------------------------------------
        self.cccs: list[ChannelConnectedComponent] = []
        self.gate_readers: dict[str, list[int]] = {}
        self.port_cccs: dict[str, list[int]] = {}
        self.net_cccs: dict[str, list[int]] = {}
        # -- rows ------------------------------------------------------
        self.n_rows: int = 0
        self.row_net: np.ndarray = np.empty(0, np.int64)
        self.row_name: list[str] = []
        self.row_ccc: np.ndarray = np.empty(0, np.int64)
        self.row_wave: np.ndarray = np.empty(0, np.int64)
        self.ccc_row_start: np.ndarray = np.empty(0, np.int64)
        self.ccc_row_end: np.ndarray = np.empty(0, np.int64)
        self.ccc_rows_arr: list[np.ndarray] = []
        # -- paths CSR -------------------------------------------------
        self.path_ptr: np.ndarray = np.zeros(1, np.int64)
        self.path_src: np.ndarray = np.empty(0, np.int64)
        self.path_src_rail: np.ndarray = np.empty(0, bool)
        self.path_g: np.ndarray = np.empty(0, np.float64)
        # -- conditions CSR --------------------------------------------
        self.cond_ptr: np.ndarray = np.zeros(1, np.int64)
        self.cond_gate: np.ndarray = np.empty(0, np.int64)
        self.cond_level: np.ndarray = np.empty(0, np.int8)
        #: True when the condition's gate is a channel net of the row's
        #: own CCC.  Internal gates read the in-evaluation overlay (wave
        #: semantics); external gates must read the pre-pass base state
        #: so speculative writes from *other* CCCs cannot leak in.
        self.cond_internal: np.ndarray = np.empty(0, bool)
        #: Owning path of each condition (the CSR row, materialized).
        self.cond_path: np.ndarray = np.empty(0, np.int32)
        #: Per gate-net incremental update lists: net id -> per required
        #: level, ``(path ids, multiplicity)`` or ``None``.  When the
        #: net's value changes, every listed path's blocking/unknown
        #: condition counters shift by a *scalar* delta times the
        #: multiplicity -- the engine never re-reads gate values per
        #: condition (see ``VectorSwitchSimulator._shift_cond``).
        #: ``net_cond_all`` covers every condition on the net (committed
        #: value changes); ``net_cond_int`` only the conditions inside
        #: the net's owning CCC (speculative mid-pass changes, which
        #: must stay invisible to other CCCs).
        self.net_cond_all: dict[int, tuple] = {}
        self.net_cond_int: dict[int, tuple] = {}
        # -- dirty propagation -----------------------------------------
        #: per CCC: trigger net name -> rows to (re-)solve, all positions.
        self.affected_rows: list[dict[str, np.ndarray]] = []
        #: per row (as a changed trigger): same-CCC rows at a later
        #: sorted position -- the mid-pass expansion set.
        self.aff_later_ptr: np.ndarray = np.zeros(1, np.int64)
        self.aff_later_rows: np.ndarray = np.empty(0, np.int64)
        # -- provenance ------------------------------------------------
        #: Wall-clock seconds :meth:`build` spent (0.0 when the tables
        #: were loaded from an :class:`~repro.store.ArtifactStore`).
        self.build_wall_s: float = 0.0
        #: True when this instance came from a store blob, not a build.
        self.loaded_from_store: bool = False
        #: CCC instances served from the template cache during build.
        self.template_hits: int = 0

    # -- construction --------------------------------------------------

    @staticmethod
    def fingerprint_of(flat: FlatNetlist, l_min_um: float) -> str:
        """Digest of everything the packed build reads from the netlist.

        Covers device topology *and* geometry (conductances come from
        W/L) plus net port-ness (ports become solve sources), so any
        in-place mutation that could change simulation behaviour
        changes the fingerprint.

        Memoized per ``(netlist identity, mutation epoch)``: in-place
        mutators must call :meth:`FlatNetlist.note_mutation` (the
        sizing loop's ``rebuild_connectivity`` does) to advance the
        epoch; a hit with the current epoch skips re-hashing every
        transistor, which otherwise dominates ``matches()`` on the
        cache-hit path.
        """
        epoch = getattr(flat, "mutation_epoch", 0)
        lkey = float(l_min_um)
        memo = getattr(flat, "_switch_fp_memo", None)
        if memo is not None:
            hit = memo.get(lkey)
            if hit is not None and hit[0] == epoch:
                return hit[1]
        h = hashlib.blake2b(digest_size=16)
        h.update(repr((flat.name, float(l_min_um),
                       len(flat.transistors))).encode())
        for t in flat.transistors:
            h.update(repr((t.name, t.polarity, t.gate, t.drain, t.source,
                           t.w_um, t.l_um, t.l_add_um)).encode())
        for name in sorted(flat.nets):
            h.update(repr((name, flat.nets[name].is_port)).encode())
        fp = h.hexdigest()
        if memo is None:
            memo = {}
            flat._switch_fp_memo = memo
        memo[lkey] = (epoch, fp)
        return fp

    @classmethod
    def build(cls, flat: FlatNetlist, l_min_um: float = 0.35,
              cccs: list[ChannelConnectedComponent] | None = None,
              ) -> "PackedSwitchTables":
        """Enumerate and pack the solve tables for ``flat``.

        ``cccs`` lets a caller share an existing extraction (and its
        warm path caches) -- see :meth:`repro.perf.DesignCache.cccs`;
        ``None`` extracts fresh.  Either way the result is identical.
        """
        t_start = time.perf_counter()
        self = cls()
        self.flat = flat
        self.l_min_um = l_min_um
        self.fingerprint = cls.fingerprint_of(flat, l_min_um)
        self.cccs = extract_cccs(flat) if cccs is None else cccs

        # Net id space: every netlist net plus the canonical rails.
        names = sorted(flat.nets)
        known = set(names)
        for rail in ("vdd", "gnd"):
            if rail not in known:
                names.append(rail)
        self.net_names = names
        self.net_ids = {n: i for i, n in enumerate(names)}
        self.n_nets = len(names)
        nid = self.net_ids

        conductance = {
            t.name: (1.0 if t.polarity == "nmos" else 0.4)
                    * t.w_um / t.effective_length(l_min_um)
            for t in flat.transistors
        }

        def path_conductance(path) -> float:
            # Bit-identical to the reference engine's series formula.
            inv_total = 0.0
            for dev in path.devices:
                g = conductance[dev]
                if g <= 0:
                    return 0.0
                inv_total += 1.0 / g
            return 1.0 / inv_total if inv_total else float("inf")

        if TEMPLATES_ENABLED:
            self._stamp_templates(flat, nid, conductance)
        else:
            self._enumerate_direct(flat, nid, path_conductance)

        # Incremental condition machinery: materialize each condition's
        # owning path, then group conditions by (gate net, section)
        # where section encodes internal/external x required level.
        # A net value change shifts the grouped paths' bad/unknown
        # counters by one scalar delta each -- O(fan-out) with no
        # per-condition value reads.
        n_paths = self.path_src.size
        ccounts = self.cond_ptr[1:] - self.cond_ptr[:-1]
        self.cond_path = np.repeat(np.arange(n_paths, dtype=np.int32),
                                   ccounts)
        if self.cond_gate.size:
            sec = (np.where(self.cond_internal, 0, 2)
                   + self.cond_level.astype(np.int64))
            # int32 keys: net ids and the 4 sections fit comfortably,
            # and the radix sort moves half the bytes.
            key = (self.cond_gate * 4 + sec).astype(np.int32)
            order = np.argsort(key, kind="stable")
            ks = key[order]
            ps = self.cond_path[order]
            cuts = np.flatnonzero(ks[1:] != ks[:-1]) + 1
            bounds = np.concatenate(([0], cuts, [ks.size]))
            grouped: dict[int, list] = {}
            for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
                nid_, sec_ = divmod(int(ks[a]), 4)
                paths, mult = np.unique(ps[a:b], return_counts=True)
                entry = grouped.setdefault(nid_, [None] * 4)
                entry[sec_] = (paths, mult.astype(np.int32))

            def merge(x, y):
                # Internal/external path sets are disjoint (a path
                # belongs to exactly one CCC), so plain concatenation
                # keeps fancy-indexed += well-defined.
                if x is None:
                    return y
                if y is None:
                    return x
                return (np.concatenate((x[0], y[0])),
                        np.concatenate((x[1], y[1])))

            for nid_, (il0, il1, el0, el1) in grouped.items():
                self.net_cond_all[nid_] = (merge(il0, el0),
                                           merge(il1, el1))
                if il0 is not None or il1 is not None:
                    self.net_cond_int[nid_] = (il0, il1)

        starts: list[int] = []
        ends: list[int] = []
        cursor = 0
        for ccc in self.cccs:
            n = len(ccc.channel_nets)
            starts.append(cursor)
            ends.append(cursor + n)
            self.ccc_rows_arr.append(
                np.arange(cursor, cursor + n, dtype=np.int64))
            cursor += n
        self.ccc_row_start = np.array(starts, np.int64)
        self.ccc_row_end = np.array(ends, np.int64)
        self.build_wall_s = time.perf_counter() - t_start
        return self

    def _enumerate_direct(self, flat: FlatNetlist, nid: dict[str, int],
                          path_conductance) -> None:
        """The historical per-instance build loop, kept verbatim.

        Benchmark baseline (``TEMPLATES_ENABLED = False``) and the
        authority the template path is asserted byte-identical against.
        """
        row_net: list[int] = []
        row_ccc: list[int] = []
        row_wave: list[int] = []
        path_ptr: list[int] = [0]
        path_src: list[int] = []
        path_src_rail: list[bool] = []
        path_g: list[float] = []
        cond_ptr: list[int] = [0]
        cond_gate: list[int] = []
        cond_level: list[int] = []
        cond_internal: list[bool] = []
        aff_later: list[list[int]] = []

        for ccc in self.cccs:
            base = len(row_net)
            sorted_nets = sorted(ccc.channel_nets)
            pos = {net: i for i, net in enumerate(sorted_nets)}
            sources = ["vdd", "gnd"] + sorted(
                n for n in ccc.channel_nets
                if flat.nets[n].is_port
            )
            deps_of: dict[str, set[str]] = {}
            for net in sorted_nets:
                deps: set[str] = {net}
                for src in sources:
                    if src == net:
                        continue
                    paths = conduction_paths(ccc, net, src)
                    if not paths:
                        continue
                    if src not in ("vdd", "gnd"):
                        deps.add(src)
                    src_id = nid[src]
                    is_rail = src in ("vdd", "gnd")
                    for p in paths:
                        path_src.append(src_id)
                        path_src_rail.append(is_rail)
                        path_g.append(path_conductance(p))
                        for gate, level in p.conditions:
                            cond_gate.append(nid[gate])
                            cond_level.append(1 if level else 0)
                            cond_internal.append(gate in ccc.channel_nets)
                            deps.add(gate)
                        cond_ptr.append(len(cond_gate))
                path_ptr.append(len(path_src))
                deps_of[net] = deps
                row_net.append(nid[net])
                row_ccc.append(ccc.index)

            # Static wave levels.  Two constraints (see module docs):
            #   wave(net) > wave(d)   for deps d at an earlier position
            #     (net must see d's freshly-applied value), and
            #   wave(net) >= wave(r)  for readers r at an earlier
            #     position that depend on net (r must still see net's
            #     pre-pass value when it solves).
            # Every constraint edge runs from an earlier to a later
            # sorted position, so one ascending pass reaches the
            # fixpoint.
            readers_of: dict[str, list[str]] = {}
            for net in sorted_nets:
                for d in deps_of[net]:
                    if d in pos and pos[d] > pos[net]:
                        readers_of.setdefault(d, []).append(net)
            wave: dict[str, int] = {}
            for net in sorted_nets:
                w = 0
                for d in deps_of[net]:
                    if d in pos and pos[d] < pos[net]:
                        w = max(w, wave[d] + 1)
                for r in readers_of.get(net, ()):
                    w = max(w, wave[r])
                wave[net] = w
                row_wave.append(w)

            # Dirty propagation: trigger -> rows, and per-row expansion
            # restricted to later positions (what the sequential pass
            # would still reach after the trigger changed).
            affected: dict[str, set[str]] = {}
            for net in sorted_nets:
                for trigger in deps_of[net]:
                    affected.setdefault(trigger, set()).add(net)
            self.affected_rows.append({
                trigger: np.array(sorted(base + pos[m] for m in nets_),
                                  dtype=np.int64)
                for trigger, nets_ in affected.items()
            })
            for net in sorted_nets:
                later = affected.get(net, ())
                aff_later.append(sorted(
                    base + pos[m] for m in later if pos[m] > pos[net]))

            for gate in ccc.gate_nets():
                self.gate_readers.setdefault(gate, []).append(ccc.index)
            for net in ccc.channel_nets:
                self.net_cccs.setdefault(net, []).append(ccc.index)
                if flat.nets[net].is_port:
                    self.port_cccs.setdefault(net, []).append(ccc.index)

        self.n_rows = len(row_net)
        self.row_net = np.array(row_net, np.int64)
        self.row_name = [self.net_names[i] for i in row_net]
        self.row_ccc = np.array(row_ccc, np.int64)
        self.row_wave = np.array(row_wave, np.int64)
        self.path_ptr = np.array(path_ptr, np.int64)
        self.path_src = np.array(path_src, np.int64)
        self.path_src_rail = np.array(path_src_rail, bool)
        self.path_g = np.array(path_g, np.float64)
        self.cond_ptr = np.array(cond_ptr, np.int64)
        self.cond_gate = np.array(cond_gate, np.int64)
        self.cond_level = np.array(cond_level, np.int8)
        self.cond_internal = np.array(cond_internal, bool)
        ptr = [0]
        flat_rows: list[int] = []
        for targets in aff_later:
            flat_rows.extend(targets)
            ptr.append(len(flat_rows))
        self.aff_later_ptr = np.array(ptr, np.int64)
        self.aff_later_rows = np.array(flat_rows, np.int64)

    @staticmethod
    def _compute_template(ccc: ChannelConnectedComponent,
                          sorted_nets: list[str], flat: FlatNetlist,
                          local_names: list[str],
                          conductance: dict[str, float]) -> _CCCTemplate:
        """Enumerate one CCC's packed segment in local id space.

        Runs one target-rooted sweep per source (vdd, gnd, each port)
        -- ~3 graph traversals per CCC instead of one per channel net
        -- then extracts every (net, source) pair's paths from the
        sweeps' parent-pointer forests with array ops.  Chains walk
        from arrival to root, which *is* source-to-target device order
        (module docs of :mod:`repro.recognition.conduction`), and a
        lexsort on forward rank sequences restores the per-pair
        enumeration order, so the packed segment is byte-identical to
        what :meth:`_enumerate_direct` appends for this CCC -- including
        ``path_g`` floats, accumulated in the same per-device sequence.
        """
        idx = {nm: i for i, nm in enumerate(local_names)}
        n = len(sorted_nets)
        max_paths = 10000
        tpl = _CCCTemplate()
        tpl.n = n
        sources = ["vdd", "gnd"] + sorted(
            nm for nm in ccc.channel_nets if flat.nets[nm].is_port)
        sweeps = {src: sweep_paths_to_target(ccc, src, max_paths)
                  for src in sources}
        g = switch_graph(ccc)
        gid_of = g["net_ids"]
        n_dev = len(ccc.transistors)
        # Per-device condition/conductance tables in local id space.
        dev_cond_lid = np.full(n_dev, 0, np.int64)
        dev_cond_level = np.zeros(n_dev, np.int8)
        dev_has_cond = np.zeros(n_dev, bool)
        dev_g = np.zeros(n_dev, np.float64)
        for di, t in enumerate(ccc.transistors):
            dev_g[di] = conductance[t.name]
            if not is_rail_name(t.gate):
                dev_cond_lid[di] = idx[t.gate]
                dev_cond_level[di] = 1 if t.polarity == "nmos" else 0
                dev_has_cond[di] = True

        row_path_counts: list[int] = []
        src_chunks: list[np.ndarray] = []
        rail_chunks: list[np.ndarray] = []
        g_chunks: list[np.ndarray] = []
        pc_chunks: list[np.ndarray] = []
        cg_chunks: list[np.ndarray] = []
        cl_chunks: list[np.ndarray] = []
        ci_chunks: list[np.ndarray] = []
        deps_of: list[set[int]] = []
        par_all = dev_all = rnk_all = dpt_all = None
        for p, net in enumerate(sorted_nets):
            deps = {p}
            count = 0
            net_gid = gid_of.get(net)
            for src in sources:
                if src == net:
                    continue
                ts = sweeps[src]
                if net_gid is None:
                    continue
                if net_gid in ts["overflow"]:
                    # Same raise, in the same (net, src) iteration
                    # order, as the per-pair enumeration.
                    raise RuntimeError(
                        f"conduction path enumeration between {net!r} and "
                        f"{src!r} exceeded {max_paths} paths"
                    )
                bucket = ts["buckets"].get(net_gid)
                if bucket is None or not bucket.size:
                    continue
                par_all, dev_all = ts["par"], ts["dev"]
                rnk_all, dpt_all = ts["rank"], ts["depth"]
                nb = bucket.size
                d = dpt_all[bucket].astype(np.int64)
                m = int(d.max())
                # Unroll each arrival's parent chain into (nb, m)
                # device/rank matrices; position k is the k-th device
                # in forward (source-to-target) order.
                K = np.zeros((nb, m), np.int32)
                D = np.zeros((nb, m), np.int32)
                cur = bucket.astype(np.int64)
                for k in range(m):
                    act = d > k
                    idxs = cur[act]
                    K[act, k] = rnk_all[idxs]
                    D[act, k] = dev_all[idxs]
                    cur[act] = par_all[idxs]
                # Restore per-pair enumeration order: lex order on the
                # forward rank sequence (primary key passed last).  No
                # key strictly prefixes another, so the zero padding of
                # short chains never decides a comparison.
                order = np.lexsort(tuple(K[:, j]
                                         for j in range(m - 1, -1, -1)))
                D = D[order]
                d = d[order]
                posmask = np.arange(m)[None, :] < d[:, None]
                # Series conductance with the reference accumulation
                # order: inv += 1/g device by device, ascending k.
                inv = np.zeros(nb, np.float64)
                bad = np.zeros(nb, bool)
                for k in range(m):
                    act = posmask[:, k]
                    gk = dev_g[D[act, k]]
                    bad[act] |= gk <= 0
                    contrib = np.zeros(gk.size, np.float64)
                    np.divide(1.0, gk, out=contrib, where=gk > 0)
                    inv[act] += contrib
                pg = np.empty(nb, np.float64)
                np.divide(1.0, inv, out=pg, where=inv != 0)
                pg[inv == 0] = np.inf
                pg[bad] = 0.0
                # Conditions: every non-rail-gated device on the path,
                # in forward order (row-major masked selection).
                Ds = np.where(posmask, D, 0)
                sel = posmask & dev_has_cond[Ds]
                cdevs = Ds[sel]
                cg = dev_cond_lid[cdevs]
                if src == "vdd":
                    src_lid, is_rail = -1, True
                elif src == "gnd":
                    src_lid, is_rail = -2, True
                else:
                    src_lid, is_rail = idx[src], False
                    deps.add(src_lid)
                src_chunks.append(np.full(nb, src_lid, np.int64))
                rail_chunks.append(np.full(nb, is_rail, bool))
                g_chunks.append(pg)
                pc_chunks.append(sel.sum(axis=1).astype(np.int64))
                cg_chunks.append(cg)
                cl_chunks.append(dev_cond_level[cdevs])
                ci_chunks.append(cg < n)
                deps.update(np.unique(cg).tolist())
                count += nb
            row_path_counts.append(count)
            deps_of.append(deps)

        def cat(chunks: list[np.ndarray], dtype) -> np.ndarray:
            return (np.concatenate(chunks) if chunks
                    else np.empty(0, dtype))

        tpl.row_path_counts = np.array(row_path_counts, np.int64)
        tpl.path_src_lid = cat(src_chunks, np.int64)
        tpl.path_src_rail = cat(rail_chunks, bool)
        tpl.path_g = cat(g_chunks, np.float64)
        tpl.path_cond_counts = cat(pc_chunks, np.int64)
        tpl.cond_gate_lid = cat(cg_chunks, np.int64)
        tpl.cond_level = cat(cl_chunks, np.int8)
        tpl.cond_internal = cat(ci_chunks, bool)

        # Static wave levels.  Two constraints (see module docs):
        #   wave(net) > wave(d)   for deps d at an earlier position
        #     (net must see d's freshly-applied value), and
        #   wave(net) >= wave(r)  for readers r at an earlier
        #     position that depend on net (r must still see net's
        #     pre-pass value when it solves).
        # Every constraint edge runs from an earlier to a later sorted
        # position, so one ascending pass reaches the fixpoint.  Local
        # ids below n are exactly the sorted positions.
        readers_of: dict[int, list[int]] = {}
        for p in range(n):
            for dd in deps_of[p]:
                if dd < n and dd > p:
                    readers_of.setdefault(dd, []).append(p)
        wave = [0] * n
        for p in range(n):
            w = 0
            for dd in deps_of[p]:
                if dd < n and dd < p:
                    w = max(w, wave[dd] + 1)
            for r in readers_of.get(p, ()):
                w = max(w, wave[r])
            wave[p] = w
        tpl.row_wave = np.array(wave, np.int64)

        # Dirty propagation: trigger -> positions, and per-position
        # expansion restricted to later positions (what the sequential
        # pass would still reach after the trigger changed).
        affected: dict[int, set[int]] = {}
        for p in range(n):
            for trig in deps_of[p]:
                affected.setdefault(trig, set()).add(p)
        tpl.affected = [(trig, np.array(sorted(ps), np.int64))
                        for trig, ps in affected.items()]
        al_counts: list[int] = []
        al_flat: list[int] = []
        for p in range(n):
            later = sorted(q for q in affected.get(p, ()) if q > p)
            al_counts.append(len(later))
            al_flat.extend(later)
        tpl.aff_later_counts = np.array(al_counts, np.int64)
        tpl.aff_later_flat = np.array(al_flat, np.int64)
        return tpl

    def _stamp_templates(self, flat: FlatNetlist, nid: dict[str, int],
                         conductance: dict[str, float]) -> None:
        """Template-cached build: compute once per CCC shape, stamp per
        instance.

        Stamping substitutes global net ids for a template's local ids
        and offsets row positions by the instance's base row; every
        other decision is baked into the template, so the concatenated
        arrays equal direct enumeration byte for byte.
        """
        templates: dict = {}
        row_net_chunks: list[np.ndarray] = []
        row_ccc_chunks: list[np.ndarray] = []
        wave_chunks: list[np.ndarray] = []
        rp_chunks: list[np.ndarray] = []
        src_chunks: list[np.ndarray] = []
        rail_chunks: list[np.ndarray] = []
        g_chunks: list[np.ndarray] = []
        pc_chunks: list[np.ndarray] = []
        cg_chunks: list[np.ndarray] = []
        cl_chunks: list[np.ndarray] = []
        ci_chunks: list[np.ndarray] = []
        al_count_chunks: list[np.ndarray] = []
        al_flat_chunks: list[np.ndarray] = []
        vdd_id = nid["vdd"]
        gnd_id = nid["gnd"]
        base = 0
        for ccc in self.cccs:
            sorted_nets = sorted(ccc.channel_nets)
            key, local_names = _template_key(ccc, sorted_nets, flat)
            tpl = templates.get(key) if key is not None else None
            if tpl is None:
                tpl = self._compute_template(ccc, sorted_nets, flat,
                                             local_names, conductance)
                if key is not None:
                    templates[key] = tpl
            else:
                self.template_hits += 1
            n = tpl.n
            gmap = np.array([nid[nm] for nm in local_names], np.int64)
            row_net_chunks.append(gmap[:n])
            row_ccc_chunks.append(np.full(n, ccc.index, np.int64))
            wave_chunks.append(tpl.row_wave)
            rp_chunks.append(tpl.row_path_counts)
            lids = tpl.path_src_lid
            src_chunks.append(
                np.where(lids == -1, vdd_id,
                         np.where(lids == -2, gnd_id,
                                  gmap[np.maximum(lids, 0)])))
            rail_chunks.append(tpl.path_src_rail)
            g_chunks.append(tpl.path_g)
            pc_chunks.append(tpl.path_cond_counts)
            cg_chunks.append(gmap[tpl.cond_gate_lid])
            cl_chunks.append(tpl.cond_level)
            ci_chunks.append(tpl.cond_internal)
            self.affected_rows.append({
                local_names[lid]: base + arr for lid, arr in tpl.affected})
            al_count_chunks.append(tpl.aff_later_counts)
            al_flat_chunks.append(base + tpl.aff_later_flat)
            for gate in ccc.gate_nets():
                self.gate_readers.setdefault(gate, []).append(ccc.index)
            for net in ccc.channel_nets:
                self.net_cccs.setdefault(net, []).append(ccc.index)
                if flat.nets[net].is_port:
                    self.port_cccs.setdefault(net, []).append(ccc.index)
            base += n

        def cat(chunks: list[np.ndarray], dtype) -> np.ndarray:
            return (np.concatenate(chunks) if chunks
                    else np.empty(0, dtype))

        def ptr_of(counts: np.ndarray) -> np.ndarray:
            return np.concatenate((np.zeros(1, np.int64),
                                   np.cumsum(counts, dtype=np.int64)))

        self.row_net = cat(row_net_chunks, np.int64)
        self.n_rows = int(self.row_net.size)
        self.row_name = [self.net_names[i] for i in self.row_net.tolist()]
        self.row_ccc = cat(row_ccc_chunks, np.int64)
        self.row_wave = cat(wave_chunks, np.int64)
        self.path_ptr = ptr_of(cat(rp_chunks, np.int64))
        self.path_src = cat(src_chunks, np.int64)
        self.path_src_rail = cat(rail_chunks, bool)
        self.path_g = cat(g_chunks, np.float64)
        self.cond_ptr = ptr_of(cat(pc_chunks, np.int64))
        self.cond_gate = cat(cg_chunks, np.int64)
        self.cond_level = cat(cl_chunks, np.int8)
        self.cond_internal = cat(ci_chunks, bool)
        self.aff_later_ptr = ptr_of(cat(al_count_chunks, np.int64))
        self.aff_later_rows = cat(al_flat_chunks, np.int64)

    # -- introspection -------------------------------------------------

    def matches(self, flat: FlatNetlist, l_min_um: float) -> bool:
        """True when these tables are still valid for ``flat``."""
        return (self.l_min_um == l_min_um
                and self.fingerprint == self.fingerprint_of(flat, l_min_um))

    def counters(self) -> dict[str, int]:
        return {
            "packed_rows": self.n_rows,
            "packed_paths": int(self.path_src.size),
            "packed_conditions": int(self.cond_gate.size),
            "packed_max_wave": int(self.row_wave.max())
            if self.n_rows else 0,
            "packed_template_hits": self.template_hits,
        }

    # -- persistence ----------------------------------------------------

    @staticmethod
    def store_key_for(fingerprint: str) -> str:
        """ArtifactStore key for tables with the given content fingerprint.

        A namespaced SHA-256 so packed-table blobs can never collide
        with stage-checkpoint keys, versioned by
        :data:`TABLES_STORE_SCHEMA`.
        """
        return hashlib.sha256(
            f"packed-switch-tables:v{TABLES_STORE_SCHEMA}:{fingerprint}"
            .encode()).hexdigest()

    def store_key(self) -> str:
        return self.store_key_for(self.fingerprint)

    def to_payload(self) -> dict:
        """Store payload: everything but the netlist reference.

        The CCC list rides along (the vector engine reads channel/gate
        net names from it) but its memo caches are stripped by
        ``ChannelConnectedComponent.__getstate__`` at pickle time.
        """
        state = dict(self.__dict__)
        state["flat"] = None
        return {"schema": TABLES_STORE_SCHEMA,
                "l_min_um": self.l_min_um,
                "fingerprint": self.fingerprint,
                "state": state}

    @classmethod
    def from_payload(cls, payload: dict,
                     flat: FlatNetlist) -> "PackedSwitchTables":
        """Rehydrate stored tables against ``flat``.

        Raises ``ValueError`` on schema mismatch or malformed payloads;
        callers decide whether to quarantine.  The caller is
        responsible for checking :meth:`matches` against the netlist it
        intends to simulate.
        """
        if not isinstance(payload, dict) or "state" not in payload:
            raise ValueError("malformed packed-switch-tables payload")
        if payload.get("schema") != TABLES_STORE_SCHEMA:
            raise ValueError(
                f"packed-switch-tables schema {payload.get('schema')!r} != "
                f"{TABLES_STORE_SCHEMA}")
        self = cls()
        self.__dict__.update(payload["state"])
        self.flat = flat
        self.loaded_from_store = True
        self.build_wall_s = 0.0
        return self


def save_switch_tables(store, tables: PackedSwitchTables) -> bool:
    """Persist built tables under their fingerprint key.

    Returns True when a new blob was written (False when the key
    already exists or a concurrent writer beat us -- both fine: blobs
    are content-addressed, any copy is as good as ours).
    """
    key = tables.store_key()
    if store.has(key):
        return False
    meta = {"kind": "packed-switch-tables",
            "schema": TABLES_STORE_SCHEMA,
            "fingerprint": tables.fingerprint,
            "l_min_um": tables.l_min_um,
            "rows": tables.n_rows}
    return store.put(key, tables.to_payload(), meta=meta) is not None


def load_switch_tables(store, flat: FlatNetlist,
                       l_min_um: float = 0.35) -> PackedSwitchTables | None:
    """Load tables for ``flat`` from the store, or ``None``.

    ``None`` covers every non-usable case -- key absent, blob corrupt
    (already quarantined by the store), payload malformed (quarantined
    here), or fingerprint/l_min mismatch -- so callers fall back to a
    fresh build unconditionally.
    """
    from repro.store.artifact import CorruptArtifact, StoreMiss

    fp = PackedSwitchTables.fingerprint_of(flat, l_min_um)
    key = PackedSwitchTables.store_key_for(fp)
    try:
        payload, _meta = store.get(key)
    except (StoreMiss, CorruptArtifact):
        return None
    try:
        tables = PackedSwitchTables.from_payload(payload, flat)
    except (ValueError, KeyError, TypeError):
        store.invalidate(key, reason="malformed packed-switch-tables payload")
        return None
    if tables.fingerprint != fp or float(tables.l_min_um) != float(l_min_um):
        return None
    return tables
