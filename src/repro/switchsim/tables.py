"""Packed array form of the switch-level simulation tables.

The reference engine keeps its pre-enumerated conduction paths in
per-CCC Python dicts; :class:`PackedSwitchTables` lowers exactly the
same data into flat numpy arrays so the vector engine can solve whole
batches of channel nets with array ops:

* **rows** -- one row per (CCC, channel net), ordered by CCC index then
  sorted net name.  This is the global solve space; a row id identifies
  both the net and the owning component.
* **paths CSR** -- ``path_ptr[row] : path_ptr[row+1]`` slices the per-row
  conduction paths (source net, rail flag, series conductance), laid out
  in the reference engine's accumulation order (source entries in
  ``[vdd, gnd, sorted ports]`` order, enumeration order within an
  entry), so masked segment sums reproduce its float results bit for
  bit.
* **conditions CSR** -- ``cond_ptr[path] : cond_ptr[path+1]`` slices the
  (gate net, required level) pairs that must hold for the path to
  conduct.
* **waves** -- a static levelization of each CCC's intra-evaluation
  dependencies.  The reference solves a CCC's nets in sorted order with
  mid-pass state visibility, which fixes *two* read disciplines: a net
  sees the **new** value of any dependency at an earlier sorted
  position, and the **old** (pre-pass) value of any dependency at a
  later position.  ``row_wave`` satisfies both: ``wave(reader) >
  wave(dep)`` for earlier-position deps (new value visible) and
  ``wave(dep) >= wave(reader)`` for later-position deps (update not yet
  applied when the reader solves).  Both constraint kinds point from
  earlier to later sorted positions, so one sorted pass computes the
  fixpoint.  Solving wave 0, then wave 1, ... with updates applied
  between waves then observes exactly the same intermediate states as
  the sequential sweep.
* **affected / aff_later CSR** -- the dirty-propagation tables: which
  rows must re-solve when a trigger net changes, and (for mid-pass
  expansion) only the rows at a *later* sorted position than the
  changed net, which is all the sequential pass would still reach.

Tables depend only on the flat netlist topology/geometry and
``l_min_um``; they are immutable once built and safe to share across
simulators.  :meth:`fingerprint_of` digests everything the build read,
so caches (see :meth:`repro.perf.DesignCache.switch_tables`) can detect
in-place netlist mutation (e.g. a sizing loop resizing devices) and
rebuild instead of serving stale conductances.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.netlist.flatten import FlatNetlist
from repro.recognition.ccc import ChannelConnectedComponent, extract_cccs
from repro.recognition.conduction import conduction_paths


def csr_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenated CSR segments ``[s, s+c)``.

    The standard vectorized gather: for segment k, emits
    ``starts[k], starts[k]+1, ..., starts[k]+counts[k]-1`` in order.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts  # exclusive prefix sum
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


class PackedSwitchTables:
    """Immutable packed solve tables for one flat netlist.

    Build with :meth:`build`; share freely between
    :class:`~repro.switchsim.vector.VectorSwitchSimulator` instances of
    the *same* (unmutated) netlist.
    """

    def __init__(self) -> None:
        # -- identity --------------------------------------------------
        self.flat: FlatNetlist | None = None
        self.l_min_um: float = 0.35
        self.fingerprint: str = ""
        # -- nets ------------------------------------------------------
        self.net_names: list[str] = []
        self.net_ids: dict[str, int] = {}
        self.n_nets: int = 0
        # -- components ------------------------------------------------
        self.cccs: list[ChannelConnectedComponent] = []
        self.gate_readers: dict[str, list[int]] = {}
        self.port_cccs: dict[str, list[int]] = {}
        self.net_cccs: dict[str, list[int]] = {}
        # -- rows ------------------------------------------------------
        self.n_rows: int = 0
        self.row_net: np.ndarray = np.empty(0, np.int64)
        self.row_name: list[str] = []
        self.row_ccc: np.ndarray = np.empty(0, np.int64)
        self.row_wave: np.ndarray = np.empty(0, np.int64)
        self.ccc_row_start: np.ndarray = np.empty(0, np.int64)
        self.ccc_row_end: np.ndarray = np.empty(0, np.int64)
        self.ccc_rows_arr: list[np.ndarray] = []
        # -- paths CSR -------------------------------------------------
        self.path_ptr: np.ndarray = np.zeros(1, np.int64)
        self.path_src: np.ndarray = np.empty(0, np.int64)
        self.path_src_rail: np.ndarray = np.empty(0, bool)
        self.path_g: np.ndarray = np.empty(0, np.float64)
        # -- conditions CSR --------------------------------------------
        self.cond_ptr: np.ndarray = np.zeros(1, np.int64)
        self.cond_gate: np.ndarray = np.empty(0, np.int64)
        self.cond_level: np.ndarray = np.empty(0, np.int8)
        #: True when the condition's gate is a channel net of the row's
        #: own CCC.  Internal gates read the in-evaluation overlay (wave
        #: semantics); external gates must read the pre-pass base state
        #: so speculative writes from *other* CCCs cannot leak in.
        self.cond_internal: np.ndarray = np.empty(0, bool)
        #: Owning path of each condition (the CSR row, materialized).
        self.cond_path: np.ndarray = np.empty(0, np.int32)
        #: Per gate-net incremental update lists: net id -> per required
        #: level, ``(path ids, multiplicity)`` or ``None``.  When the
        #: net's value changes, every listed path's blocking/unknown
        #: condition counters shift by a *scalar* delta times the
        #: multiplicity -- the engine never re-reads gate values per
        #: condition (see ``VectorSwitchSimulator._shift_cond``).
        #: ``net_cond_all`` covers every condition on the net (committed
        #: value changes); ``net_cond_int`` only the conditions inside
        #: the net's owning CCC (speculative mid-pass changes, which
        #: must stay invisible to other CCCs).
        self.net_cond_all: dict[int, tuple] = {}
        self.net_cond_int: dict[int, tuple] = {}
        # -- dirty propagation -----------------------------------------
        #: per CCC: trigger net name -> rows to (re-)solve, all positions.
        self.affected_rows: list[dict[str, np.ndarray]] = []
        #: per row (as a changed trigger): same-CCC rows at a later
        #: sorted position -- the mid-pass expansion set.
        self.aff_later_ptr: np.ndarray = np.zeros(1, np.int64)
        self.aff_later_rows: np.ndarray = np.empty(0, np.int64)

    # -- construction --------------------------------------------------

    @staticmethod
    def fingerprint_of(flat: FlatNetlist, l_min_um: float) -> str:
        """Digest of everything the packed build reads from the netlist.

        Covers device topology *and* geometry (conductances come from
        W/L) plus net port-ness (ports become solve sources), so any
        in-place mutation that could change simulation behaviour
        changes the fingerprint.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(repr((flat.name, float(l_min_um),
                       len(flat.transistors))).encode())
        for t in flat.transistors:
            h.update(repr((t.name, t.polarity, t.gate, t.drain, t.source,
                           t.w_um, t.l_um, t.l_add_um)).encode())
        for name in sorted(flat.nets):
            h.update(repr((name, flat.nets[name].is_port)).encode())
        return h.hexdigest()

    @classmethod
    def build(cls, flat: FlatNetlist,
              l_min_um: float = 0.35) -> "PackedSwitchTables":
        self = cls()
        self.flat = flat
        self.l_min_um = l_min_um
        self.fingerprint = cls.fingerprint_of(flat, l_min_um)
        self.cccs = extract_cccs(flat)

        # Net id space: every netlist net plus the canonical rails.
        names = sorted(flat.nets)
        known = set(names)
        for rail in ("vdd", "gnd"):
            if rail not in known:
                names.append(rail)
        self.net_names = names
        self.net_ids = {n: i for i, n in enumerate(names)}
        self.n_nets = len(names)
        nid = self.net_ids

        conductance = {
            t.name: (1.0 if t.polarity == "nmos" else 0.4)
                    * t.w_um / t.effective_length(l_min_um)
            for t in flat.transistors
        }

        def path_conductance(path) -> float:
            # Bit-identical to the reference engine's series formula.
            inv_total = 0.0
            for dev in path.devices:
                g = conductance[dev]
                if g <= 0:
                    return 0.0
                inv_total += 1.0 / g
            return 1.0 / inv_total if inv_total else float("inf")

        row_net: list[int] = []
        row_ccc: list[int] = []
        row_wave: list[int] = []
        path_ptr: list[int] = [0]
        path_src: list[int] = []
        path_src_rail: list[bool] = []
        path_g: list[float] = []
        cond_ptr: list[int] = [0]
        cond_gate: list[int] = []
        cond_level: list[int] = []
        cond_internal: list[bool] = []
        aff_later: list[list[int]] = []

        for ccc in self.cccs:
            base = len(row_net)
            sorted_nets = sorted(ccc.channel_nets)
            pos = {net: i for i, net in enumerate(sorted_nets)}
            sources = ["vdd", "gnd"] + sorted(
                n for n in ccc.channel_nets
                if flat.nets[n].is_port
            )
            deps_of: dict[str, set[str]] = {}
            for net in sorted_nets:
                deps: set[str] = {net}
                for src in sources:
                    if src == net:
                        continue
                    paths = conduction_paths(ccc, net, src)
                    if not paths:
                        continue
                    if src not in ("vdd", "gnd"):
                        deps.add(src)
                    src_id = nid[src]
                    is_rail = src in ("vdd", "gnd")
                    for p in paths:
                        path_src.append(src_id)
                        path_src_rail.append(is_rail)
                        path_g.append(path_conductance(p))
                        for gate, level in p.conditions:
                            cond_gate.append(nid[gate])
                            cond_level.append(1 if level else 0)
                            cond_internal.append(gate in ccc.channel_nets)
                            deps.add(gate)
                        cond_ptr.append(len(cond_gate))
                path_ptr.append(len(path_src))
                deps_of[net] = deps
                row_net.append(nid[net])
                row_ccc.append(ccc.index)

            # Static wave levels.  Two constraints (see module docs):
            #   wave(net) > wave(d)   for deps d at an earlier position
            #     (net must see d's freshly-applied value), and
            #   wave(net) >= wave(r)  for readers r at an earlier
            #     position that depend on net (r must still see net's
            #     pre-pass value when it solves).
            # Every constraint edge runs from an earlier to a later
            # sorted position, so one ascending pass reaches the
            # fixpoint.
            readers_of: dict[str, list[str]] = {}
            for net in sorted_nets:
                for d in deps_of[net]:
                    if d in pos and pos[d] > pos[net]:
                        readers_of.setdefault(d, []).append(net)
            wave: dict[str, int] = {}
            for net in sorted_nets:
                w = 0
                for d in deps_of[net]:
                    if d in pos and pos[d] < pos[net]:
                        w = max(w, wave[d] + 1)
                for r in readers_of.get(net, ()):
                    w = max(w, wave[r])
                wave[net] = w
                row_wave.append(w)

            # Dirty propagation: trigger -> rows, and per-row expansion
            # restricted to later positions (what the sequential pass
            # would still reach after the trigger changed).
            affected: dict[str, set[str]] = {}
            for net in sorted_nets:
                for trigger in deps_of[net]:
                    affected.setdefault(trigger, set()).add(net)
            self.affected_rows.append({
                trigger: np.array(sorted(base + pos[m] for m in nets_),
                                  dtype=np.int64)
                for trigger, nets_ in affected.items()
            })
            for net in sorted_nets:
                later = affected.get(net, ())
                aff_later.append(sorted(
                    base + pos[m] for m in later if pos[m] > pos[net]))

            for gate in ccc.gate_nets():
                self.gate_readers.setdefault(gate, []).append(ccc.index)
            for net in ccc.channel_nets:
                self.net_cccs.setdefault(net, []).append(ccc.index)
                if flat.nets[net].is_port:
                    self.port_cccs.setdefault(net, []).append(ccc.index)

        self.n_rows = len(row_net)
        self.row_net = np.array(row_net, np.int64)
        self.row_name = [self.net_names[i] for i in row_net]
        self.row_ccc = np.array(row_ccc, np.int64)
        self.row_wave = np.array(row_wave, np.int64)
        self.path_ptr = np.array(path_ptr, np.int64)
        self.path_src = np.array(path_src, np.int64)
        self.path_src_rail = np.array(path_src_rail, bool)
        self.path_g = np.array(path_g, np.float64)
        self.cond_ptr = np.array(cond_ptr, np.int64)
        self.cond_gate = np.array(cond_gate, np.int64)
        self.cond_level = np.array(cond_level, np.int8)
        self.cond_internal = np.array(cond_internal, bool)

        # Incremental condition machinery: materialize each condition's
        # owning path, then group conditions by (gate net, section)
        # where section encodes internal/external x required level.
        # A net value change shifts the grouped paths' bad/unknown
        # counters by one scalar delta each -- O(fan-out) with no
        # per-condition value reads.
        n_paths = self.path_src.size
        ccounts = self.cond_ptr[1:] - self.cond_ptr[:-1]
        self.cond_path = np.repeat(np.arange(n_paths, dtype=np.int32),
                                   ccounts)
        if self.cond_gate.size:
            sec = (np.where(self.cond_internal, 0, 2)
                   + self.cond_level.astype(np.int64))
            key = self.cond_gate * 4 + sec
            order = np.argsort(key, kind="stable")
            ks = key[order]
            ps = self.cond_path[order]
            cuts = np.flatnonzero(ks[1:] != ks[:-1]) + 1
            bounds = np.concatenate(([0], cuts, [ks.size]))
            grouped: dict[int, list] = {}
            for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
                nid_, sec_ = divmod(int(ks[a]), 4)
                paths, mult = np.unique(ps[a:b], return_counts=True)
                entry = grouped.setdefault(nid_, [None] * 4)
                entry[sec_] = (paths, mult.astype(np.int32))

            def merge(x, y):
                # Internal/external path sets are disjoint (a path
                # belongs to exactly one CCC), so plain concatenation
                # keeps fancy-indexed += well-defined.
                if x is None:
                    return y
                if y is None:
                    return x
                return (np.concatenate((x[0], y[0])),
                        np.concatenate((x[1], y[1])))

            for nid_, (il0, il1, el0, el1) in grouped.items():
                self.net_cond_all[nid_] = (merge(il0, el0),
                                           merge(il1, el1))
                if il0 is not None or il1 is not None:
                    self.net_cond_int[nid_] = (il0, il1)

        ptr = [0]
        flat_rows: list[int] = []
        for targets in aff_later:
            flat_rows.extend(targets)
            ptr.append(len(flat_rows))
        self.aff_later_ptr = np.array(ptr, np.int64)
        self.aff_later_rows = np.array(flat_rows, np.int64)

        starts: list[int] = []
        ends: list[int] = []
        cursor = 0
        for ccc in self.cccs:
            n = len(ccc.channel_nets)
            starts.append(cursor)
            ends.append(cursor + n)
            self.ccc_rows_arr.append(
                np.arange(cursor, cursor + n, dtype=np.int64))
            cursor += n
        self.ccc_row_start = np.array(starts, np.int64)
        self.ccc_row_end = np.array(ends, np.int64)
        return self

    # -- introspection -------------------------------------------------

    def matches(self, flat: FlatNetlist, l_min_um: float) -> bool:
        """True when these tables are still valid for ``flat``."""
        return (self.l_min_um == l_min_um
                and self.fingerprint == self.fingerprint_of(flat, l_min_um))

    def counters(self) -> dict[str, int]:
        return {
            "packed_rows": self.n_rows,
            "packed_paths": int(self.path_src.size),
            "packed_conditions": int(self.cond_gate.size),
            "packed_max_wave": int(self.row_wave.max())
            if self.n_rows else 0,
        }
