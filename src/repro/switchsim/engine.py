"""The switch-level simulation engine.

Evaluation model
----------------
The design is partitioned into channel-connected components once, at
construction.  For every CCC and every channel net, the conduction paths
to each *source* (vdd, gnd, and any testbench-drivable port inside the
CCC) are pre-enumerated with :mod:`repro.recognition.conduction`, and
each path's series conductance is computed once -- devices never resize,
so the value is constant for the life of the simulator.

At each settle step, a CCC is (re)evaluated from its gate-input values:

* a path is **definitely on** when every gate condition holds with a
  definite value, **possibly on** when no condition definitely fails but
  some involve X;
* each channel net collects sources through its on-paths; definite
  conflicting sources resolve by conductance ratio (keepers lose to
  evaluate stacks, SRAM cells lose to write drivers) or to X when the
  fight is close;
* a net with no on-path to any source keeps its previous value with
  ``driven=False`` -- charge storage.

The outer loop is event-driven: a net value change re-queues every CCC
that reads the net through a gate.  The worklist is an index-heap with
lazy membership flags, so each pop costs O(log n) while preserving the
exact smallest-index-first order of the original set-based worklist.

Evaluation is *incremental*: each CCC tracks which of its fan-in nets
actually changed since it last evaluated, and re-solves only the channel
nets whose pre-computed dependency sets intersect those changes.  Nets
whose fan-in is untouched would solve to their previous state, so
skipping them leaves the final state and the history order bit-identical
to exhaustive re-solving (``incremental=False`` forces the exhaustive
mode for cross-checking).  A bounded iteration count guards against
ring-oscillator-style non-settling structures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.netlist.flatten import FlatNetlist
from repro.recognition.ccc import ChannelConnectedComponent, extract_cccs
from repro.recognition.conduction import ConductionPath, conduction_paths
from repro.switchsim.values import Logic, NetState

_EMPTY: frozenset[str] = frozenset()


class OscillationError(RuntimeError):
    """Raised when the design fails to settle (combinational loop)."""


@dataclass
class _SourcePaths:
    """Pre-enumerated paths from one channel net to one source.

    ``conductances[i]`` is the constant series conductance of
    ``paths[i]``, computed once at construction.
    """

    source: str  # "vdd", "gnd", or a port name
    paths: list[ConductionPath]
    conductances: list[float]


class SwitchSimulator:
    """Event-driven switch-level simulator over a flat netlist.

    Parameters
    ----------
    flat:
        The design to simulate.
    dominance_ratio:
        How much stronger one side of a fight must be to win cleanly;
        below this the node goes X.  2.5 matches the usual "keeper is a
        few times weaker" full-custom sizing discipline.
    l_min_um:
        Channel length assumed for devices with unresolved L (0.0),
        used only for relative conductance.
    record_history:
        When True (the default), every net value change is appended to
        :attr:`history` as ``(time, net, value)`` -- the record VCD
        export and the shadow simulator consume.  Long throughput runs
        (billions of events) should pass False: the history list grows
        without bound, one tuple per value change, and recording it
        costs both that memory and an append on the hottest path.
        Final state, determinism, and settle() return values are
        unaffected either way.
    incremental:
        When True (the default), a CCC evaluation re-solves only the
        channel nets whose fan-in changed since the CCC last evaluated.
        False forces exhaustive re-solving of every channel net -- the
        seed engine's behaviour, kept as a cross-check and kill switch.
        Both modes produce identical states and history.
    engine:
        ``"reference"`` (the default) is this pure-Python event-driven
        engine -- the authoritative semantics.  ``"vector"`` returns a
        :class:`~repro.switchsim.vector.VectorSwitchSimulator` instead:
        the numpy batched engine, bit-identical in states, history, and
        oscillation behaviour, and much faster on large designs.
    """

    def __new__(cls, *args, engine: str = "reference", **kwargs):
        if engine not in ("reference", "vector"):
            raise ValueError(f"unknown switch-sim engine {engine!r}; "
                             f"expected 'reference' or 'vector'")
        if engine == "vector" and cls is SwitchSimulator:
            from repro.switchsim.vector import VectorSwitchSimulator
            return object.__new__(VectorSwitchSimulator)
        return object.__new__(cls)

    def __init__(self, flat: FlatNetlist, dominance_ratio: float = 2.5,
                 l_min_um: float = 0.35, record_history: bool = True,
                 incremental: bool = True, engine: str = "reference",
                 cache=None):
        self.flat = flat
        self.dominance_ratio = dominance_ratio
        self.l_min_um = l_min_um
        self.record_history = record_history
        self.incremental = incremental
        # ``cache`` is a repro.perf.DesignCache: reuse its shared CCC
        # extraction (and the warm path caches living on those CCCs) so
        # table build, recognition, and this engine enumerate once.
        self.cccs = extract_cccs(flat) if cache is None else cache.cccs(flat)
        self.state: dict[str, NetState] = {
            name: NetState() for name in flat.nets
        }
        self.state["vdd"] = NetState(Logic.ONE, driven=True)
        self.state["gnd"] = NetState(Logic.ZERO, driven=True)
        self._externally_driven: dict[str, Logic] = {}
        # Relative path conductance: W/L weighted by carrier mobility
        # (holes are ~0.4x), so N-vs-P ratio fights resolve like silicon.
        self._conductance: dict[str, float] = {
            t.name: (1.0 if t.polarity == "nmos" else 0.4)
                    * t.w_um / t.effective_length(l_min_um)
            for t in flat.transistors
        }
        # ccc index -> channel net -> list of _SourcePaths
        self._paths: list[dict[str, list[_SourcePaths]]] = []
        self._gate_readers: dict[str, list[int]] = {}
        self._port_cccs: dict[str, list[int]] = {}
        # ccc index -> its channel nets in solve order (sorted once).
        self._sorted_nets: list[list[str]] = []
        # ccc index -> trigger net -> channel nets whose solution reads it.
        self._affected: list[dict[str, frozenset[str]]] = []
        # ccc index -> which ccc indices own each net as a channel net.
        self._net_cccs: dict[str, list[int]] = {}
        # ccc index -> fan-in nets changed since its last evaluation.
        # None = never evaluated -> full solve.
        self._dirty: list[set[str] | None] = []
        self._build_tables()
        self.time = 0
        self.history: list[tuple[int, str, Logic]] = []
        #: Cheap perf counters: ccc_evaluations, net_solves (actual),
        #: naive_net_solves (what exhaustive evaluation would have done),
        #: settle_calls.  ``solve_count`` mirrors ``net_solves`` and
        #: ``skip_count`` counts nets the dirty-set filter skipped, so
        #: BENCH deltas can attribute work avoided vs work done:
        #: ``solve_count + skip_count == naive_net_solves`` always.
        self.counters: dict[str, int] = {
            "ccc_evaluations": 0,
            "net_solves": 0,
            "naive_net_solves": 0,
            "settle_calls": 0,
            "solve_count": 0,
            "skip_count": 0,
        }

    # -- construction -------------------------------------------------------

    def _build_tables(self) -> None:
        from repro.recognition import conduction as _conduction

        for ccc in self.cccs:
            table: dict[str, list[_SourcePaths]] = {}
            affected: dict[str, set[str]] = {}
            sources = ["vdd", "gnd"] + sorted(
                n for n in ccc.channel_nets
                if self.flat.nets[n].is_port
            )
            if (_conduction.PATH_CACHE_ENABLED
                    and _conduction.SWEEP_ENABLED):
                # One target-rooted sweep per source fills the pair
                # cache for every channel net at once; the per-net
                # queries below then materialize from it instead of
                # running one traversal per (net, source) pair.
                for src in sources:
                    _conduction.sweep_paths_to_target(ccc, src)
            for net in ccc.channel_nets:
                entries = []
                deps: set[str] = {net}
                for src in sources:
                    if src == net:
                        continue
                    paths = conduction_paths(ccc, net, src)
                    if paths:
                        entries.append(_SourcePaths(
                            source=src,
                            paths=paths,
                            conductances=[self._path_conductance(p)
                                          for p in paths],
                        ))
                        if src not in ("vdd", "gnd"):
                            deps.add(src)
                        for p in paths:
                            deps.update(p.gates())
                table[net] = entries
                for trigger in deps:
                    affected.setdefault(trigger, set()).add(net)
            self._paths.append(table)
            self._sorted_nets.append(sorted(ccc.channel_nets))
            self._affected.append({t: frozenset(nets)
                                   for t, nets in affected.items()})
            self._dirty.append(None)
            for gate in ccc.gate_nets():
                self._gate_readers.setdefault(gate, []).append(ccc.index)
            for net in ccc.channel_nets:
                self._net_cccs.setdefault(net, []).append(ccc.index)
                if self.flat.nets[net].is_port:
                    self._port_cccs.setdefault(net, []).append(ccc.index)

    def _touch(self, net: str) -> None:
        """Record a testbench-side disturbance of ``net`` for the next
        settle: every CCC that reads it through a gate or owns it as a
        channel net must re-solve the dependent nets."""
        for idx in self._gate_readers.get(net, ()):
            dirty = self._dirty[idx]
            if dirty is not None:
                dirty.add(net)
        for idx in self._net_cccs.get(net, ()):
            dirty = self._dirty[idx]
            if dirty is not None:
                dirty.add(net)

    # -- testbench interface --------------------------------------------------

    def drive(self, net: str, value: Logic | int | bool) -> None:
        """Drive a port (or any net) from the testbench."""
        logic = self._coerce(value)
        if self._externally_driven.get(net) is logic:
            st = self.state.get(net)
            if st is not None and st.value is logic and st.driven:
                return  # re-driving the identical value: a no-op
        self._externally_driven[net] = logic
        self._set(net, logic, driven=True)
        self._touch(net)

    def release(self, net: str) -> None:
        """Stop driving a net; it retains its value as charge."""
        was_driven = self._externally_driven.pop(net, None) is not None
        st = self.state[net]
        if not was_driven and not st.driven:
            return  # already released: a no-op
        self.state[net] = NetState(st.value, driven=False)
        self._touch(net)

    def value(self, net: str) -> Logic:
        return self.state[net].value

    def is_driven(self, net: str) -> bool:
        return self.state[net].driven

    def values(self, nets: list[str]) -> list[Logic]:
        return [self.value(n) for n in nets]

    def settle(self, max_events: int = 100000) -> int:
        """Propagate until quiescent; returns evaluation count.

        Raises :class:`OscillationError` if the budget is exhausted.
        """
        n = len(self.cccs)
        gate_readers = self._gate_readers
        port_cccs = self._port_cccs
        dirty = self._dirty
        if self.incremental:
            # Only CCCs with a pending disturbance (or never evaluated)
            # can change state; the rest would solve to their previous
            # values, so skipping them is behaviour-preserving.
            heap = [i for i in range(n) if dirty[i] is None or dirty[i]]
        else:
            heap = list(range(n))
        # An ascending list is already a valid heap.
        in_pending = [False] * n
        for i in heap:
            in_pending[i] = True
        evaluations = 0
        while heap:
            idx = heapq.heappop(heap)
            if not in_pending[idx]:
                continue
            in_pending[idx] = False
            evaluations += 1
            if evaluations > max_events:
                raise OscillationError(
                    f"design did not settle within {max_events} CCC "
                    f"evaluations; combinational loop suspected"
                )
            changed = self._evaluate(idx)
            for net in changed:
                for r in gate_readers.get(net, ()):
                    d = dirty[r]
                    if d is not None:
                        d.add(net)
                    if not in_pending[r]:
                        in_pending[r] = True
                        heapq.heappush(heap, r)
                for r in port_cccs.get(net, ()):
                    d = dirty[r]
                    if d is not None:
                        d.add(net)
                    if not in_pending[r]:
                        in_pending[r] = True
                        heapq.heappush(heap, r)
        self.time += 1
        self.counters["ccc_evaluations"] += evaluations
        self.counters["settle_calls"] += 1
        return evaluations

    def step(self, **drives: Logic | int | bool) -> None:
        """Drive several nets and settle -- one testbench "step"."""
        for net, value in drives.items():
            self.drive(net, value)
        self.settle()

    # -- evaluation ------------------------------------------------------------

    def _evaluate(self, idx: int) -> list[str]:
        counters = self.counters
        dirty = self._dirty[idx]
        self._dirty[idx] = set()
        affected = self._affected[idx]
        if dirty is None or not self.incremental:
            to_solve = None  # exhaustive: solve every channel net
        else:
            to_solve = set()
            for trigger in dirty:
                to_solve |= affected.get(trigger, _EMPTY)
        changed: list[str] = []
        for net in self._sorted_nets[idx]:
            if net in self._externally_driven:
                continue  # testbench owns it
            counters["naive_net_solves"] += 1
            if to_solve is not None and net not in to_solve:
                counters["skip_count"] += 1
                continue
            counters["net_solves"] += 1
            counters["solve_count"] += 1
            new_state = self._solve_net(idx, net)
            old = self.state[net]
            if new_state.value != old.value or new_state.driven != old.driven:
                self.state[net] = new_state
                if new_state.value != old.value:
                    if self.record_history:
                        self.history.append((self.time, net, new_state.value))
                    changed.append(net)
                    if to_solve is not None:
                        # A mid-pass change may open paths for nets later
                        # in this pass, exactly as exhaustive solving
                        # would see; earlier nets are caught by requeue.
                        to_solve |= affected.get(net, _EMPTY)
        return changed

    def _solve_net(self, idx: int, net: str) -> NetState:
        # Definite (surely conducting) and maximal (possibly conducting
        # included) conductance toward each level.  A maybe-path feeds
        # the *maximal* bucket only: it cannot assert a value, but a
        # definite path must out-muscle it to win cleanly.
        g_def = {Logic.ZERO: 0.0, Logic.ONE: 0.0}
        g_may = {Logic.ZERO: 0.0, Logic.ONE: 0.0}
        possible: set[Logic] = set()
        definite_x = False

        for entry in self._paths[idx].get(net, []):
            src_state = self.state[entry.source]
            if entry.source not in ("vdd", "gnd") \
                    and entry.source not in self._externally_driven:
                # A port the testbench is not driving is an *output*:
                # its value is computed, and must not back-drive its own
                # CCC as a stale source.
                continue
            src_value = src_state.value
            for path, g in zip(entry.paths, entry.conductances):
                status = self._path_status(path)
                if status == "off":
                    continue
                if src_value is Logic.X:
                    possible.update((Logic.ZERO, Logic.ONE))
                    g_may[Logic.ZERO] += g
                    g_may[Logic.ONE] += g
                    if status == "on":
                        definite_x = True
                elif status == "on":
                    g_def[src_value] += g
                    possible.add(src_value)
                else:
                    g_may[src_value] += g
                    possible.add(src_value)

        total0 = g_def[Logic.ZERO] + g_may[Logic.ZERO]
        total1 = g_def[Logic.ONE] + g_may[Logic.ONE]
        if g_def[Logic.ZERO] > 0.0 or g_def[Logic.ONE] > 0.0:
            if g_def[Logic.ZERO] >= self.dominance_ratio * total1 \
                    and not definite_x:
                return NetState(Logic.ZERO, driven=True)
            if g_def[Logic.ONE] >= self.dominance_ratio * total0 \
                    and not definite_x:
                return NetState(Logic.ONE, driven=True)
            return NetState(Logic.X, driven=True)
        if definite_x:
            return NetState(Logic.X, driven=True)
        if possible:
            previous = self.state[net].value
            if possible == {previous}:
                # The only possible disturbance agrees with the retained
                # value; keep it (still charge, not driven).
                return NetState(previous, driven=False)
            return NetState(Logic.X, driven=False)
        # Fully isolated: retain charge.
        prev = self.state[net]
        return NetState(prev.value, driven=False)

    def _path_status(self, path: ConductionPath) -> str:
        """'on' / 'off' / 'maybe' under current gate values."""
        maybe = False
        state = self.state
        for gate, level in path.conditions:
            gv = state[gate].value
            if gv is Logic.X:
                maybe = True
                continue
            if (gv is Logic.ONE) != level:
                return "off"
        return "maybe" if maybe else "on"

    def _path_conductance(self, path: ConductionPath) -> float:
        inv_total = 0.0
        for dev in path.devices:
            g = self._conductance[dev]
            if g <= 0:
                return 0.0
            inv_total += 1.0 / g
        return 1.0 / inv_total if inv_total else float("inf")

    # -- helpers ------------------------------------------------------------------

    def _coerce(self, value: Logic | int | bool) -> Logic:
        if isinstance(value, Logic):
            return value
        if isinstance(value, bool):
            return Logic.from_bool(value)
        return Logic.from_int(value)

    def _set(self, net: str, value: Logic, driven: bool) -> None:
        old = self.state.get(net)
        self.state[net] = NetState(value, driven)
        if (old is None or old.value != value) and self.record_history:
            self.history.append((self.time, net, value))
