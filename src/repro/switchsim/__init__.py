"""Switch-level simulation of transistor netlists.

Paper section 4.1 lists "standalone schematic simulation" as one of the
four levels of logic verification.  This package provides it: an
event-driven, conservative 3-value (0 / 1 / X) switch-level simulator
that operates directly on the recognized channel-connected components --
no cell library, no pre-characterized primitives.

Key behaviours the full-custom circuit styles require:

* **charge retention** -- a channel net with no conducting path to any
  source keeps its last value, so dynamic nodes and pass-gate latches
  simulate correctly;
* **ratio resolution** -- when pull-up and pull-down fight (keepers,
  SRAM writes, ratioed logic), the winner is decided by path conductance
  with a configurable dominance ratio, else X;
* **pessimistic X handling** -- a path whose gate conditions involve X
  is "possibly conducting"; a node that might be disturbed resolves to X
  rather than silently keeping a clean value.

Two engines implement the same semantics: the pure-Python reference
(:class:`SwitchSimulator`, authoritative) and the numpy-batched
:class:`VectorSwitchSimulator` (``SwitchSimulator(flat,
engine="vector")``), bit-identical and much faster on large designs.
"""

from repro.switchsim.values import Logic, NetState
from repro.switchsim.engine import OscillationError, SwitchSimulator
from repro.switchsim.tables import PackedSwitchTables
from repro.switchsim.vector import VectorSwitchSimulator
from repro.switchsim.vcd import export_vcd

__all__ = [
    "Logic",
    "NetState",
    "SwitchSimulator",
    "VectorSwitchSimulator",
    "PackedSwitchTables",
    "OscillationError",
    "export_vcd",
]
