"""VCD export of switch-level simulation history.

The simulator records every net change; this module renders that
history as a Value Change Dump file any 1990s-compatible waveform
viewer (or a modern GTKWave) can open -- the debugging medium of the
paper's era and ours.
"""

from __future__ import annotations

from repro.switchsim.engine import SwitchSimulator
from repro.switchsim.values import Logic

_VCD_VALUE = {Logic.ZERO: "0", Logic.ONE: "1", Logic.X: "x"}


def _identifier(index: int) -> str:
    """Short printable VCD identifier codes (!, ", #, ... then pairs)."""
    alphabet = [chr(c) for c in range(33, 127)]
    if index < len(alphabet):
        return alphabet[index]
    hi, lo = divmod(index, len(alphabet))
    return alphabet[hi - 1] + alphabet[lo]


def export_vcd(
    sim: SwitchSimulator,
    nets: list[str] | None = None,
    module_name: str = "dut",
    timescale: str = "1ns",
) -> str:
    """Render the simulator's change history as VCD text.

    ``nets`` selects which signals appear (default: every net that ever
    changed).  The simulator's coarse step counter is the timebase: one
    ``settle()`` is one tick.
    """
    changed_nets = [name for _t, name, _v in sim.history]
    if nets is None:
        seen: list[str] = []
        for name in changed_nets:
            if name not in seen:
                seen.append(name)
        nets = seen
    else:
        unknown = set(nets) - set(sim.state)
        if unknown:
            raise KeyError(f"unknown nets requested for VCD: {sorted(unknown)}")

    ids = {net: _identifier(i) for i, net in enumerate(nets)}
    lines = [
        "$date repro.switchsim $end",
        f"$timescale {timescale} $end",
        f"$scope module {module_name} $end",
    ]
    for net in nets:
        safe = net.replace(" ", "_")
        lines.append(f"$var wire 1 {ids[net]} {safe} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Initial values: X for everything, then replay history.
    lines.append("$dumpvars")
    for net in nets:
        lines.append(f"x{ids[net]}")
    lines.append("$end")

    current_time: int | None = None
    for t, net, value in sim.history:
        if net not in ids:
            continue
        if t != current_time:
            lines.append(f"#{t}")
            current_time = t
        lines.append(f"{_VCD_VALUE[value]}{ids[net]}")
    # Closing timestamp so viewers show the final state.
    lines.append(f"#{sim.time}")
    return "\n".join(lines) + "\n"
