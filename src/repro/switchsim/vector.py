"""Numpy-batched switch-level simulation engine.

:class:`VectorSwitchSimulator` is a drop-in replacement for the
reference :class:`~repro.switchsim.engine.SwitchSimulator` -- same
constructor, same testbench interface, same :class:`Logic` results,
same history stream, same oscillation detection -- that replaces the
per-net Python dispatch with batched numpy array ops over
:class:`~repro.switchsim.tables.PackedSwitchTables`.  It is built to be
**bit-identical** to the reference engine, not merely equivalent; the
reference stays authoritative and the equivalence is property-tested
(``tests/switchsim/test_vector_equivalence.py``).

Two levels of batching recover the reference's strictly sequential
semantics:

**Speculative frontier scheduling (across CCCs).**  The reference pops
one CCC at a time from a smallest-index-first worklist.  Here, every
pending CCC is evaluated *speculatively* in one batched pass against a
copy of the current state, then results are applied one CCC at a time
in exactly the reference's pop order.  Before applying a CCC's result
we check its dirty-version counter: any disturbance recorded since the
speculation (a gate or port input changed by an earlier apply) bumps
the counter and the stale result is discarded, falling back to a fresh
speculation pass.  A surviving result provably read nothing any earlier
apply wrote: cross-CCC influence flows only through gate/port nets,
every such write bumps the reader's version, and external nets are read
from the pre-pass base state (see ``cond_internal`` in the tables), so
applying a surviving result is exactly what the reference would have
computed at that point.  When the frontier is wide (independent CCCs,
the common case after a clock edge) one numpy pass replaces hundreds of
Python evaluations and nothing is discarded.

**Wave-leveled solving (within and across CCC evaluations).**  Inside
one evaluation the reference solves channel nets in sorted order with
mid-pass visibility.  The packed tables levelize that order into static
*waves* such that solving whole waves at once -- all CCCs together --
observes exactly the sequential intermediate states; mid-pass
expansions (a changed net opening paths for later nets) always target
strictly greater waves, so the wave sweep picks them up like the
sequential pass would.

The per-net resolution (conductance buckets, dominance-ratio fights,
charge retention) is evaluated with masked ``np.bincount`` segment
sums, which accumulate in array order -- the same float addition order
as the reference's scalar loop, hence bit-identical conductance totals.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.netlist.flatten import FlatNetlist
from repro.switchsim.engine import OscillationError, SwitchSimulator
from repro.switchsim.tables import PackedSwitchTables, csr_gather
from repro.switchsim.values import Logic, NetState

_LOGIC = (Logic.ZERO, Logic.ONE, Logic.X)

# Whether a gate value blocks a condition, by [required level][value];
# X (value 2) is never definitely blocking, it makes the path "maybe".
_IS_BAD = ((0, 1, 0), (1, 0, 0))


class _Speculation:
    """Result of one batched speculative pass over a frontier snapshot.

    ``rows``/``val``/``drv``/``vchg`` hold the state-changing rows of
    *all* snapshot CCCs, sorted by global row id (which is (CCC, net)
    order, so per-CCC slices are contiguous and already in the
    reference's history order).  ``solved[ccc]`` counts rows actually
    solved for that CCC; ``versions`` are the dirty-version counters at
    speculation time, checked before each apply.
    """

    __slots__ = ("versions", "rows", "val", "drv", "vchg", "solved")

    def __init__(self, versions, rows, val, drv, vchg, solved):
        self.versions = versions
        self.rows = rows
        self.val = val
        self.drv = drv
        self.vchg = vchg
        self.solved = solved


class VectorSwitchSimulator(SwitchSimulator):
    """Batched numpy engine behind the :class:`SwitchSimulator` API.

    Construct directly, or via ``SwitchSimulator(flat, engine="vector")``.
    Accepts an optional pre-built ``tables`` (see
    :meth:`repro.perf.DesignCache.switch_tables`) to skip the packed
    build; the tables' fingerprint is checked against the netlist.
    """

    def __init__(self, flat: FlatNetlist, dominance_ratio: float = 2.5,
                 l_min_um: float = 0.35, record_history: bool = True,
                 incremental: bool = True, engine: str = "vector",
                 tables: PackedSwitchTables | None = None,
                 cache=None):
        if tables is None:
            # A DesignCache routes through its shared CCC extraction
            # and (when it has a store) the persisted-table fast path.
            if cache is not None:
                tables = cache.switch_tables(flat, l_min_um=l_min_um)
            else:
                tables = PackedSwitchTables.build(flat, l_min_um=l_min_um)
        elif not tables.matches(flat, l_min_um):
            raise ValueError(
                "packed switch tables are stale for this netlist (device "
                "geometry/topology changed since they were built); rebuild "
                "them or use DesignCache.switch_tables")
        self._tables = tables
        self.flat = flat
        self.dominance_ratio = dominance_ratio
        self.l_min_um = l_min_um
        self.record_history = record_history
        self.incremental = incremental
        self.cccs = tables.cccs
        self.state: dict[str, NetState] = {
            name: NetState() for name in flat.nets
        }
        self.state["vdd"] = NetState(Logic.ONE, driven=True)
        self.state["gnd"] = NetState(Logic.ZERO, driven=True)
        self._externally_driven: dict[str, Logic] = {}
        n = tables.n_nets
        # Numpy mirror of self.state, kept in lockstep: the state dict
        # stays authoritative for all API reads, the arrays feed the
        # batched solves.
        self._val = np.full(n, 2, np.int8)
        self._driven = np.zeros(n, bool)
        self._ext = np.zeros(n, bool)
        for rail, level in (("vdd", 1), ("gnd", 0)):
            rid = tables.net_ids[rail]
            self._val[rid] = level
            self._driven[rid] = True
        self._gate_readers = tables.gate_readers
        self._port_cccs = tables.port_cccs
        self._net_cccs = tables.net_cccs
        # Incremental path classification: per conduction path, how many
        # gate conditions are definitely blocking / at X right now.
        # Maintained by _shift_cond on every net value change instead of
        # re-reading gate values per condition on every solve.
        n_paths = tables.path_src.size
        if tables.cond_gate.size:
            gv = self._val[tables.cond_gate]
            bad = np.where(tables.cond_level == 1, gv == 0, gv == 1)
            self._n_bad = np.bincount(
                tables.cond_path, weights=bad,
                minlength=n_paths).astype(np.int32)
            self._n_unk = np.bincount(
                tables.cond_path, weights=gv == 2,
                minlength=n_paths).astype(np.int32)
        else:
            self._n_bad = np.zeros(n_paths, np.int32)
            self._n_unk = np.zeros(n_paths, np.int32)
        self._dirty: list[set[str] | None] = [None] * len(tables.cccs)
        # Bumped on *every* disturbance of a CCC's fan-in -- including
        # ones that land while its dirty set is None -- so speculative
        # results can detect staleness exactly.
        self._dirty_version = [0] * len(tables.cccs)
        self.time = 0
        self.history: list[tuple[int, str, Logic]] = []
        self.counters: dict[str, int] = {
            "ccc_evaluations": 0,
            "net_solves": 0,
            "naive_net_solves": 0,
            "settle_calls": 0,
            "solve_count": 0,
            "skip_count": 0,
            # vector-only: batched passes run, and speculative CCC
            # results discarded as stale (pure waste, never wrong).
            "vector_passes": 0,
            "vector_wasted_evals": 0,
        }

    @property
    def tables(self) -> PackedSwitchTables:
        return self._tables

    # -- testbench interface (array mirror maintenance) ----------------

    def _touch(self, net: str) -> None:
        for idx in self._gate_readers.get(net, ()):
            d = self._dirty[idx]
            if d is not None:
                d.add(net)
            self._dirty_version[idx] += 1
        for idx in self._net_cccs.get(net, ()):
            d = self._dirty[idx]
            if d is not None:
                d.add(net)
            self._dirty_version[idx] += 1

    def drive(self, net: str, value: Logic | int | bool) -> None:
        super().drive(net, value)
        self._sync_net(net)

    def release(self, net: str) -> None:
        super().release(net)
        self._sync_net(net)

    def _sync_net(self, net: str) -> None:
        nid = self._tables.net_ids.get(net)
        if nid is None:
            return  # net unknown to the netlist: electrically inert
        st = self.state[net]
        old = int(self._val[nid])
        new = st.value.value
        self._val[nid] = new
        self._driven[nid] = st.driven
        self._ext[nid] = net in self._externally_driven
        if new != old:
            self._shift_cond(nid, old, new)

    def _shift_cond(self, nid: int, old: int, new: int,
                    internal_only: bool = False) -> None:
        """Shift path condition counters for a gate value transition.

        Committed changes (``internal_only=False``) update every
        condition on the net; speculative mid-pass changes update only
        the net's *internal* conditions (paths of its owning CCC, the
        wave-semantics reads) and are exactly undone by calling this
        again with ``old``/``new`` swapped -- the updates are additive
        integer deltas on static index sets.
        """
        T = self._tables
        upd = (T.net_cond_int if internal_only else T.net_cond_all).get(nid)
        if upd is None:
            return
        du = (new == 2) - (old == 2)
        n_bad = self._n_bad
        n_unk = self._n_unk
        for lvl in (0, 1):
            ent = upd[lvl]
            if ent is None:
                continue
            db = _IS_BAD[lvl][new] - _IS_BAD[lvl][old]
            if not (db or du):
                continue
            paths, mult = ent
            if db:
                n_bad[paths] += db * mult
            if du:
                n_unk[paths] += du * mult

    # -- the batched settle loop ---------------------------------------

    def settle(self, max_events: int = 100000) -> int:
        T = self._tables
        n = len(T.cccs)
        dirty = self._dirty
        versions = self._dirty_version
        gate_readers = self._gate_readers
        port_cccs = self._port_cccs
        counters = self.counters
        if self.incremental:
            heap = [i for i in range(n) if dirty[i] is None or dirty[i]]
        else:
            heap = list(range(n))
        in_pending = [False] * n
        pend = np.zeros(n, bool)  # numpy mirror for fast snapshot scans
        for i in heap:
            in_pending[i] = True
            pend[i] = True
        evaluations = 0
        # Speculation cache: idx -> (version, spec, row slice, solved).
        # Entries are single-use (dropped at apply, because applying a
        # CCC changes its own internal nets without bumping its version)
        # and version-guarded (any disturbance of the CCC's fan-in since
        # speculation invalidates the entry).  The loop always applies
        # the true heap minimum, so apply order is exactly the
        # reference's pop order; the cache only decides whether that
        # result comes from an earlier batched pass or a fresh one.
        cache: dict[int, tuple[int, _Speculation, int, int, int]] = {}
        # Adaptive speculation depth: grow toward the number of entries
        # consumed between refills (wide independent frontiers), shrink
        # when serial propagation invalidates entries quickly.
        batch = 32
        applied_since_refill = 0
        while True:
            while heap and not in_pending[heap[0]]:
                heapq.heappop(heap)
            if not heap:
                break
            idx = heap[0]
            entry = cache.get(idx)
            if entry is not None and entry[0] != versions[idx]:
                counters["vector_wasted_evals"] += 1
                del cache[idx]
                entry = None
            if entry is None:
                batch = min(65536, max(16, 2 * applied_since_refill,
                                       batch if applied_since_refill else 16))
                applied_since_refill = 0
                # Pending CCCs without a still-valid entry, ascending --
                # the prefix is what the reference would pop next.
                snap = []
                for i in np.flatnonzero(pend).tolist():
                    e = cache.get(i)
                    if e is not None:
                        if e[0] == versions[i]:
                            continue
                        counters["vector_wasted_evals"] += 1
                    snap.append(i)
                    if len(snap) == batch:
                        break
                spec = self._speculate(snap)
                counters["vector_passes"] += 1
                snap_arr = np.asarray(snap, np.int64)
                lo = np.searchsorted(spec.rows, T.ccc_row_start[snap_arr])
                hi = np.searchsorted(spec.rows, T.ccc_row_end[snap_arr])
                for j, i in enumerate(snap):
                    cache[i] = (spec.versions[i], spec, int(lo[j]),
                                int(hi[j]), int(spec.solved[i]))
                entry = cache[idx]
            evaluations += 1
            if evaluations > max_events:
                raise OscillationError(
                    f"design did not settle within {max_events} CCC "
                    f"evaluations; combinational loop suspected"
                )
            in_pending[idx] = False
            pend[idx] = False
            heapq.heappop(heap)  # == idx: it was heap[0]
            del cache[idx]
            applied_since_refill += 1
            changed = self._apply(idx, entry)
            for net in changed:
                for r in gate_readers.get(net, ()):
                    d = dirty[r]
                    if d is not None:
                        d.add(net)
                    versions[r] += 1
                    if not in_pending[r]:
                        in_pending[r] = True
                        pend[r] = True
                        heapq.heappush(heap, r)
                for r in port_cccs.get(net, ()):
                    d = dirty[r]
                    if d is not None:
                        d.add(net)
                    versions[r] += 1
                    if not in_pending[r]:
                        in_pending[r] = True
                        pend[r] = True
                        heapq.heappush(heap, r)
        counters["vector_wasted_evals"] += len(cache)
        self.time += 1
        counters["ccc_evaluations"] += evaluations
        counters["settle_calls"] += 1
        return evaluations

    # -- speculation ----------------------------------------------------

    def _speculate(self, snap: list[int]) -> _Speculation:
        """Batch-evaluate every snapshot CCC against current state.

        Pure: writes only overlay copies.  Internal (own-CCC channel)
        nets read the overlay -- that is the wave-semantics mid-pass
        visibility -- while external gate nets read the untouched base
        state, so no speculative cross-CCC leakage is possible.
        """
        T = self._tables
        base = self._val  # read-only during speculation
        val = base.copy()
        drv = self._driven.copy()
        ext = self._ext
        row_wave = T.row_wave
        # Speculative overlay writes shift the *internal* condition
        # counters of the changed nets (wave-semantics visibility for
        # the owning CCC only); every shift is recorded and exactly
        # undone before returning, leaving the committed counters
        # untouched by speculation.
        shifts: list[tuple[int, int, int]] = []
        buckets: dict[int, list[np.ndarray]] = {}

        def push(rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            waves = row_wave[rows]
            order = np.argsort(waves, kind="stable")
            rows_sorted = rows[order]
            waves = waves[order]
            cuts = np.flatnonzero(waves[1:] != waves[:-1]) + 1
            for chunk in np.split(rows_sorted, cuts):
                buckets.setdefault(int(row_wave[chunk[0]]), []).append(chunk)

        versions = {idx: self._dirty_version[idx] for idx in snap}
        for idx in snap:
            dirty = self._dirty[idx]
            if dirty is None or not self.incremental:
                push(T.ccc_rows_arr[idx])
            else:
                aff = T.affected_rows[idx]
                parts = [aff[t] for t in dirty if t in aff]
                if parts:
                    push(np.concatenate(parts))

        solved_parts: list[np.ndarray] = []
        chg_rows: list[np.ndarray] = []
        chg_val: list[np.ndarray] = []
        chg_drv: list[np.ndarray] = []
        chg_vc: list[np.ndarray] = []
        while buckets:
            wave = min(buckets)
            rows = np.unique(np.concatenate(buckets.pop(wave)))
            rows = rows[~ext[T.row_net[rows]]]  # testbench owns those
            if rows.size == 0:
                continue
            new_v, new_d = self._solve_rows(rows, val)
            nets = T.row_net[rows]
            prev = val[nets]
            vchg = new_v != prev
            schg = vchg | (new_d != drv[nets])
            val[nets] = new_v
            drv[nets] = new_d
            if vchg.any():
                for nid_, ov, nv in zip(nets[vchg].tolist(),
                                        prev[vchg].tolist(),
                                        new_v[vchg].tolist()):
                    self._shift_cond(nid_, ov, nv, internal_only=True)
                    shifts.append((nid_, ov, nv))
            solved_parts.append(rows)
            if schg.any():
                chg_rows.append(rows[schg])
                chg_val.append(new_v[schg])
                chg_drv.append(new_d[schg])
                chg_vc.append(vchg[schg])
            vrows = rows[vchg]
            if vrows.size:
                # Mid-pass expansion: value changes open paths for nets
                # at later positions, which always sit at strictly
                # greater waves -- never behind the sweep.
                starts = T.aff_later_ptr[vrows]
                counts = T.aff_later_ptr[vrows + 1] - starts
                push(T.aff_later_rows[csr_gather(starts, counts)])

        # Unwind every speculative counter shift: committed state owns
        # the counters, speculation only borrowed them for the pass.
        for nid_, ov, nv in reversed(shifts):
            self._shift_cond(nid_, nv, ov, internal_only=True)

        n_cccs = len(T.cccs)
        if solved_parts:
            solved = np.bincount(T.row_ccc[np.concatenate(solved_parts)],
                                 minlength=n_cccs)
        else:
            solved = np.zeros(n_cccs, np.int64)
        if chg_rows:
            rows = np.concatenate(chg_rows)
            order = np.argsort(rows)
            return _Speculation(versions, rows[order],
                                np.concatenate(chg_val)[order],
                                np.concatenate(chg_drv)[order],
                                np.concatenate(chg_vc)[order], solved)
        empty = np.empty(0, np.int64)
        return _Speculation(versions, empty, empty.astype(np.int8),
                            empty.astype(bool), empty.astype(bool), solved)

    def _solve_rows(self, rows: np.ndarray,
                    val: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`SwitchSimulator._solve_net` over many rows.

        ``val`` is the in-pass overlay (source/prev reads); path on/off
        classification comes from the incrementally maintained
        ``_path_state`` (internal conditions track the overlay via
        :meth:`_shift_cond`, external conditions sit at the committed
        pre-pass state).  Returns the new (value, driven) per row;
        bit-identical to the scalar solver because the bincount segment
        sums add path conductances in the same order as the reference's
        scalar ``+=`` loop, and dropping a masked-out path only removes
        a ``+ 0.0`` term (which never changes a float sum bitwise).
        """
        T = self._tables
        nr = rows.size
        starts = T.path_ptr[rows]
        counts = T.path_ptr[rows + 1] - starts
        if int(counts.sum()):
            pi = csr_gather(starts, counts)
            seg = np.repeat(np.arange(nr), counts)
            # Blocked paths (any definitely-off gate) contribute
            # nothing; drop them before everything else.
            live = self._n_bad[pi] == 0
            if not live.all():
                pi = pi[live]
                seg = seg[live]
            src = T.path_src[pi]
            act = T.path_src_rail[pi] | self._ext[src]
            if not act.all():
                # Non-rail sources only drive while externally held.
                pi = pi[act]
                seg = seg[act]
                src = src[act]
            g = T.path_g[pi]
            on = self._n_unk[pi] == 0
            sv = val[src]
            sx = sv == 2           # X source through a non-off path
            d0 = on & (sv == 0)
            d1 = on & (sv == 1)
            maybe = ~on            # pstate == 1
            m0 = (maybe & (sv == 0)) | sx
            m1 = (maybe & (sv == 1)) | sx
            dx = sx & on           # definitely-on path from an X source
            # Fused per-side segment sums: even bins collect definite
            # conductance, odd bins "maybe"; in-bin order is path order,
            # so float accumulation matches the reference exactly.
            side0 = np.bincount(seg * 2 + m0,
                                weights=np.where(d0 | m0, g, 0.0),
                                minlength=2 * nr)
            side1 = np.bincount(seg * 2 + m1,
                                weights=np.where(d1 | m1, g, 0.0),
                                minlength=2 * nr)
            G_d0 = side0[0::2]
            G_m0 = side0[1::2]
            G_d1 = side1[0::2]
            G_m1 = side1[1::2]
            P0 = np.zeros(nr, bool)
            P0[seg[d0 | m0]] = True
            P1 = np.zeros(nr, bool)
            P1[seg[d1 | m1]] = True
            DX = np.zeros(nr, bool)
            DX[seg[dx]] = True
        else:
            G_d0 = G_d1 = G_m0 = G_m1 = np.zeros(nr)
            P0 = P1 = DX = np.zeros(nr, bool)

        ratio = self.dominance_ratio
        prev = val[T.row_net[rows]]
        total0 = G_d0 + G_m0
        total1 = G_d1 + G_m1
        any_def = (G_d0 > 0.0) | (G_d1 > 0.0)
        win0 = (G_d0 >= ratio * total1) & ~DX
        win1 = (G_d1 >= ratio * total0) & ~DX & ~win0
        driven_v = np.where(win0, 0, np.where(win1, 1, 2))
        poss = P0 | P1
        keep = (P0 & ~P1 & (prev == 0)) | (P1 & ~P0 & (prev == 1))
        float_v = np.where(poss & ~keep, 2, prev)
        new_v = np.where(any_def, driven_v,
                         np.where(DX, 2, float_v)).astype(np.int8)
        new_d = any_def | DX
        return new_v, new_d

    # -- applying a surviving speculative result ------------------------

    def _apply(self, idx: int,
               entry: tuple[int, _Speculation, int, int, int]) -> list[str]:
        T = self._tables
        counters = self.counters
        self._dirty[idx] = set()
        _, spec, lo, hi, solved = entry
        naive = int(np.count_nonzero(
            ~self._ext[T.row_net[T.ccc_rows_arr[idx]]]))
        counters["naive_net_solves"] += naive
        counters["net_solves"] += solved
        counters["solve_count"] += solved
        counters["skip_count"] += naive - solved
        changed: list[str] = []
        if lo == hi:
            return changed
        state = self.state
        history = self.history
        record = self.record_history
        now = self.time
        row_name = T.row_name
        row_net = T.row_net
        for r, v, d, vc in zip(spec.rows[lo:hi].tolist(),
                               spec.val[lo:hi].tolist(),
                               spec.drv[lo:hi].tolist(),
                               spec.vchg[lo:hi].tolist()):
            name = row_name[r]
            nid = row_net[r]
            if vc:
                self._shift_cond(int(nid), int(self._val[nid]), v)
            self._val[nid] = v
            self._driven[nid] = d
            logic = _LOGIC[v]
            state[name] = NetState(logic, d)
            if vc:
                if record:
                    history.append((now, name, logic))
                changed.append(name)
        return changed
