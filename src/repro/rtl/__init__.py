"""The behavioral/RTL hardware language and its phase-accurate simulator.

Paper section 4.1: "Standard hardware description languages have proven
to be inadequate for us when describing highly variable (function
changing daily) parts of the design. ... We have developed a hardware
language driven by our style of designing microprocessors, with
programming constructs that make sense for the design itself, and which
compiles into very efficient code."

This package is that idea as a Python-embedded DSL:

* :class:`~repro.rtl.signals.Signal` -- multi-bit values with X support;
* :class:`~repro.rtl.module.RtlModule` -- behavioral processes declared
  as plain Python callables, either combinational or latched on one of
  the two clock phases (the paper's designs are two-phase,
  level-sensitive -- see Figure 4);
* :class:`~repro.rtl.simulator.PhaseSimulator` -- phase-accurate
  evaluation to fixpoint, the ">200 cycles per second per simulation
  CPU" engine whose throughput benchmark is experiment S41a;
* :class:`~repro.rtl.cam.Cam` -- the wide content-addressable-memory
  construct the paper calls out ("a 2000 port CAM structure") as
  hopeless in standard HDLs, implemented directly with vectorized
  matching;
* :mod:`~repro.rtl.stimulus` -- pseudo-random stimulus sequences
  (section 4.1: "stimulus patterns, which are either manually generated
  or pseudo-random sequences").
"""

from repro.rtl.signals import Signal, X
from repro.rtl.module import Phase, RtlModule
from repro.rtl.simulator import PhaseSimulator, SimulationError
from repro.rtl.cam import Cam
from repro.rtl.constructs import (
    ClockActivity,
    conditional_register,
    two_phase_register,
    xadd,
    xeq,
    xmux,
)
from repro.rtl.memory import Memory
from repro.rtl.stimulus import RandomStimulus, StimulusProgram

__all__ = [
    "Signal",
    "X",
    "Phase",
    "RtlModule",
    "PhaseSimulator",
    "SimulationError",
    "Cam",
    "ClockActivity",
    "conditional_register",
    "two_phase_register",
    "xadd",
    "xeq",
    "xmux",
    "Memory",
    "RandomStimulus",
    "StimulusProgram",
]
