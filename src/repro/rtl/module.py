"""RTL modules: behavioral processes over signals.

The paper's two-phase, level-sensitive clocking discipline (Figure 4)
shapes the process model:

* a **combinational** process runs in *every* phase, to fixpoint;
* a **latched** process runs only while its phase is high (transparent
  latch semantics): its outputs follow its inputs during that phase and
  hold during the other.

A process is any Python callable reading and writing
:class:`~repro.rtl.signals.Signal` s.  There is no sensitivity list --
the simulator iterates to fixpoint, which matches the "compiles into
very efficient code" in-house-language spirit better than event wheels
do at this scale, and guarantees phase accuracy.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.rtl.signals import Signal, SignalValue, X


class Phase(enum.Enum):
    """The two non-overlapping clock phases of Figure 4."""

    PHI1 = 1
    PHI2 = 2

    def other(self) -> "Phase":
        return Phase.PHI2 if self is Phase.PHI1 else Phase.PHI1


class RtlModule:
    """Base class for behavioral/RTL descriptions.

    Subclasses create signals with :meth:`signal`, register behaviour
    with :meth:`comb` and :meth:`latch`, and may nest submodules with
    :meth:`submodule`.  Hierarchy here is *descriptive only* -- the
    simulator flattens it, and (paper section 2.1) nothing requires it
    to match the schematic hierarchy.
    """

    def __init__(self, name: str):
        self.name = name
        self.signals: dict[str, Signal] = {}
        self.processes: list[tuple[Phase | None, Callable[[], None]]] = []
        self.submodules: list[RtlModule] = []
        self.checks: list[Callable[[], str | None]] = []

    # -- construction ---------------------------------------------------------

    def signal(self, name: str, width: int = 1, reset: SignalValue = X) -> Signal:
        """Create and register a signal."""
        if name in self.signals:
            raise ValueError(f"module {self.name}: duplicate signal {name!r}")
        sig = Signal(f"{self.name}.{name}", width=width, reset=reset)
        self.signals[name] = sig
        return sig

    def comb(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Register a combinational process (runs every phase).

        Usable as a decorator.
        """
        self.processes.append((None, fn))
        return fn

    def latch(self, phase: Phase) -> Callable[[Callable[[], None]], Callable[[], None]]:
        """Register a process transparent during ``phase`` (decorator)."""

        def register(fn: Callable[[], None]) -> Callable[[], None]:
            self.processes.append((phase, fn))
            return fn

        return register

    def submodule(self, module: "RtlModule") -> "RtlModule":
        self.submodules.append(module)
        return module

    def check(self, fn: Callable[[], str | None]) -> Callable[[], str | None]:
        """Register an invariant checked after every phase.

        The callable returns None when the invariant holds, or a
        human-readable message when it is violated (a lightweight
        assertion language, another in-house-HDL staple).
        """
        self.checks.append(fn)
        return fn

    # -- queries -----------------------------------------------------------------

    def all_modules(self) -> list["RtlModule"]:
        out: list[RtlModule] = [self]
        for sub in self.submodules:
            out.extend(sub.all_modules())
        return out

    def all_signals(self) -> dict[str, Signal]:
        sigs: dict[str, Signal] = {}
        for mod in self.all_modules():
            for sig in mod.signals.values():
                if sig.name in sigs:
                    raise ValueError(f"duplicate signal name {sig.name!r} in hierarchy")
                sigs[sig.name] = sig
        return sigs

    def all_processes(self) -> list[tuple[Phase | None, Callable[[], None]]]:
        procs: list[tuple[Phase | None, Callable[[], None]]] = []
        for mod in self.all_modules():
            procs.extend(mod.processes)
        return procs

    def all_checks(self) -> list[Callable[[], str | None]]:
        checks: list[Callable[[], str | None]] = []
        for mod in self.all_modules():
            checks.extend(mod.checks)
        return checks
