"""Higher-level RTL constructs built from phase latches.

These are the "programming constructs that make sense for the design
itself" (section 4.1): two-phase master/slave registers, conditionally
clocked registers (the StrongARM power lever of section 3), and small
X-aware combinational helpers.

Conditionally clocked registers count their clock activity, feeding the
:mod:`repro.power` activity model: a gated-off latch burns no clock
power, which is one of the Table-1 reduction factors.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.rtl.module import Phase, RtlModule
from repro.rtl.signals import Signal, SignalValue, X


class ClockActivity:
    """Counts latch evaluations vs. gated-off opportunities."""

    def __init__(self) -> None:
        self.enabled_updates = 0
        self.gated_updates = 0

    def activity_factor(self) -> float:
        total = self.enabled_updates + self.gated_updates
        return self.enabled_updates / total if total else 0.0


def two_phase_register(
    module: RtlModule,
    name: str,
    width: int,
    next_fn: Callable[[], SignalValue],
    reset: SignalValue = X,
) -> Signal:
    """A master/slave register from two transparent latches.

    The master samples ``next_fn()`` during PHI1; the slave copies the
    master during PHI2.  Returns the slave (the architectural state).
    """
    master = module.signal(f"{name}_m", width=width, reset=reset)
    slave = module.signal(name, width=width, reset=reset)

    @module.latch(Phase.PHI1)
    def _master() -> None:
        master.set(next_fn())

    @module.latch(Phase.PHI2)
    def _slave() -> None:
        slave.set(master.get())

    return slave


def conditional_register(
    module: RtlModule,
    name: str,
    width: int,
    next_fn: Callable[[], SignalValue],
    enable_fn: Callable[[], SignalValue],
    activity: ClockActivity | None = None,
    reset: SignalValue = X,
) -> Signal:
    """A conditionally clocked master/slave register.

    When ``enable_fn()`` is 0 the master never samples -- the latch's
    clock is gated and no clock power is burned.  An X enable poisons
    the state (conservative).
    """
    master = module.signal(f"{name}_m", width=width, reset=reset)
    slave = module.signal(name, width=width, reset=reset)

    @module.latch(Phase.PHI1)
    def _master() -> None:
        en = enable_fn()
        if en is X:
            master.set(X)
            return
        if en:
            master.set(next_fn())
            if activity is not None:
                activity.enabled_updates += 1
        else:
            if activity is not None:
                activity.gated_updates += 1

    @module.latch(Phase.PHI2)
    def _slave() -> None:
        slave.set(master.get())

    return slave


# -- X-aware combinational helpers ------------------------------------------


def xadd(a: SignalValue, b: SignalValue, width: int) -> SignalValue:
    """Add with X poisoning and wrap to width."""
    if a is X or b is X:
        return X
    return (a + b) & ((1 << width) - 1)


def xmux(sel: SignalValue, when1: SignalValue, when0: SignalValue) -> SignalValue:
    """2:1 mux; X select yields X unless both inputs agree."""
    if sel is X:
        if when1 is not X and when1 == when0:
            return when1
        return X
    return when1 if sel else when0


def xeq(a: SignalValue, b: SignalValue) -> SignalValue:
    """Equality compare with X poisoning."""
    if a is X or b is X:
        return X
    return 1 if a == b else 0
