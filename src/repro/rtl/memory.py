"""Behavioral memory construct.

The RTL-side counterpart of :func:`repro.designs.sram.sram_array`: a
word-addressed memory with synchronous (phase-latched) write ports and
combinational read ports.  Like the CAM, it exists because coding a
cache behaviorally in a standard HDL of the era was painfully slow --
the in-house construct is a plain array with phase discipline bolted on.
"""

from __future__ import annotations

from repro.rtl.module import Phase, RtlModule
from repro.rtl.signals import Signal, SignalValue, X


class Memory:
    """A word-addressed behavioral memory bound to an RTL module.

    Writes are sampled while PHI1 is transparent (like a latch's master)
    and commit at PHI2, so reads within the same cycle see the *old*
    data -- the standard two-phase array discipline.

    Parameters
    ----------
    module:
        Owning module (registers the phase processes).
    name:
        Instance name (prefixes the port signal names).
    words / width:
        Geometry.
    """

    def __init__(self, module: RtlModule, name: str, words: int, width: int):
        if words < 1 or width < 1:
            raise ValueError("memory needs at least one word and bit")
        self.words = words
        self.width = width
        self.mask = (1 << width) - 1
        self.data: list[SignalValue] = [X] * words
        self._pending: list[tuple[int, int]] = []

        self.write_enable = module.signal(f"{name}_we", 1, reset=0)
        self.write_addr = module.signal(f"{name}_waddr",
                                        max(1, (words - 1).bit_length()), reset=0)
        self.write_data = module.signal(f"{name}_wdata", width, reset=0)

        @module.latch(Phase.PHI1)
        def _sample_write() -> None:
            we = self.write_enable.get()
            if we is X:
                # Unknown enable poisons the addressed word conservatively.
                addr = self.write_addr.get()
                if addr is not X and 0 <= addr < self.words:
                    self._pending = [(int(addr), -1)]
                return
            if not we:
                self._pending = []
                return
            addr = self.write_addr.get()
            value = self.write_data.get()
            if addr is X or value is X:
                self._pending = []
                return
            if not 0 <= addr < self.words:
                raise IndexError(f"memory write address {addr} out of range")
            self._pending = [(int(addr), int(value) & self.mask)]

        @module.latch(Phase.PHI2)
        def _commit_write() -> None:
            for addr, value in self._pending:
                self.data[addr] = X if value == -1 else value
            self._pending = []

    # -- access --------------------------------------------------------------

    def read(self, addr: SignalValue) -> SignalValue:
        """Combinational read (old data within the write cycle)."""
        if addr is X:
            return X
        if not 0 <= addr < self.words:
            raise IndexError(f"memory read address {addr} out of range")
        return self.data[int(addr)]

    def load(self, contents: dict[int, int]) -> None:
        """Backdoor initialization (test benches, boot images)."""
        for addr, value in contents.items():
            if not 0 <= addr < self.words:
                raise IndexError(f"load address {addr} out of range")
            self.data[addr] = value & self.mask

    def dump(self) -> dict[int, SignalValue]:
        """Snapshot of all defined (non-X) words."""
        return {i: v for i, v in enumerate(self.data) if v is not X}
