"""The wide content-addressable-memory construct.

Paper section 4.1: "Some of our functional units are just difficult to
code in standard languages and result in highly inefficient run-times,
e.g. a 2000 port CAM structure."

:class:`Cam` models an N-entry, W-bit CAM with an arbitrary number of
simultaneous match ports, vectorized with numpy so a 2000-port match is
one matrix comparison rather than 2000 * N behavioral loops -- exactly
the "compiles into very efficient code" property the in-house language
existed for.
"""

from __future__ import annotations

import numpy as np


class Cam:
    """An N-entry CAM with valid bits and optional ternary masking.

    Parameters
    ----------
    entries:
        Number of stored tags.
    width:
        Tag width in bits (<= 64 so tags pack into uint64 lanes).
    """

    def __init__(self, entries: int, width: int):
        if entries < 1:
            raise ValueError("CAM needs at least one entry")
        if not 1 <= width <= 64:
            raise ValueError("CAM width must be 1..64")
        self.entries = entries
        self.width = width
        self.mask = (1 << width) - 1 if width < 64 else 0xFFFFFFFFFFFFFFFF
        self._tags = np.zeros(entries, dtype=np.uint64)
        self._care = np.full(entries, self.mask, dtype=np.uint64)
        self._valid = np.zeros(entries, dtype=bool)

    # -- update -----------------------------------------------------------

    def write(self, index: int, tag: int, care_mask: int | None = None) -> None:
        """Store a tag; ``care_mask`` bits of 0 are wildcards (ternary CAM)."""
        self._check_index(index)
        self._tags[index] = tag & self.mask
        self._care[index] = (self.mask if care_mask is None else care_mask & self.mask)
        self._valid[index] = True

    def invalidate(self, index: int) -> None:
        self._check_index(index)
        self._valid[index] = False

    def invalidate_all(self) -> None:
        self._valid[:] = False

    # -- match ----------------------------------------------------------------

    def match(self, key: int) -> np.ndarray:
        """Boolean hit vector over entries for one key."""
        key_arr = np.uint64(key & self.mask)
        diffs = (self._tags ^ key_arr) & self._care
        return (diffs == 0) & self._valid

    def match_many(self, keys: np.ndarray | list[int]) -> np.ndarray:
        """Hit matrix (ports x entries) for many simultaneous ports.

        This is the 2000-port operation: one vectorized comparison.
        """
        key_arr = (np.asarray(keys, dtype=np.uint64) & np.uint64(self.mask))
        diffs = (self._tags[None, :] ^ key_arr[:, None]) & self._care[None, :]
        return (diffs == 0) & self._valid[None, :]

    def first_hit(self, key: int) -> int | None:
        """Lowest-index matching entry, or None."""
        hits = np.flatnonzero(self.match(key))
        return int(hits[0]) if hits.size else None

    def hit_count(self, key: int) -> int:
        return int(self.match(key).sum())

    def stored(self, index: int) -> tuple[int, int, bool]:
        """(tag, care_mask, valid) at an index."""
        self._check_index(index)
        return int(self._tags[index]), int(self._care[index]), bool(self._valid[index])

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.entries:
            raise IndexError(f"CAM index {index} out of range 0..{self.entries - 1}")
