"""Signals: multi-bit values with an explicit unknown.

A signal's value is either an ``int`` (masked to its width) or the
sentinel :data:`X` -- full-width unknown.  Partial unknowns are not
modeled at the RTL level; the paper's high-level model is about
*behavioral* intent, with electrical uncertainty handled by the
switch-level and analog layers.
"""

from __future__ import annotations

from typing import Union


class _Unknown:
    """Singleton sentinel for an unknown signal value."""

    _instance: "_Unknown | None" = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "X"

    def __bool__(self) -> bool:
        raise TypeError("an X signal value has no truth value; test 'is X'")


#: The unknown value.
X = _Unknown()

SignalValue = Union[int, _Unknown]


class Signal:
    """A named multi-bit state variable.

    Signals are written with :meth:`set` and read with :meth:`get`.
    The simulator snapshots values at phase boundaries for tracing and
    change detection; within a phase, writes are immediately visible
    (level-sensitive semantics).
    """

    __slots__ = ("name", "width", "mask", "_value", "reset_value")

    def __init__(self, name: str, width: int = 1, reset: SignalValue = X):
        if width < 1 or width > 512:
            raise ValueError(f"signal {name!r}: width must be in 1..512, got {width}")
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        self.reset_value: SignalValue = reset if reset is X else int(reset) & self.mask
        self._value: SignalValue = self.reset_value

    # -- access ------------------------------------------------------------

    def get(self) -> SignalValue:
        return self._value

    def set(self, value: SignalValue) -> bool:
        """Assign; returns True if the value changed."""
        if value is not X:
            value = int(value) & self.mask
        changed = value is not self._value and value != self._value
        self._value = value
        return changed

    def reset(self) -> None:
        self._value = self.reset_value

    # -- conveniences --------------------------------------------------------

    def is_x(self) -> bool:
        return self._value is X

    def bit(self, index: int) -> SignalValue:
        """One bit of the value (X-preserving)."""
        if not 0 <= index < self.width:
            raise IndexError(f"bit {index} out of range for {self.width}-bit {self.name}")
        if self._value is X:
            return X
        return (self._value >> index) & 1

    def __repr__(self) -> str:
        if self._value is X:
            return f"<{self.name}[{self.width}]=X>"
        return f"<{self.name}[{self.width}]={self._value:#x}>"


def xand(a: SignalValue, b: SignalValue) -> SignalValue:
    """X-pessimistic AND for 1-bit values (0 dominates X)."""
    if a == 0 or b == 0:
        return 0
    if a is X or b is X:
        return X
    return a & b


def xor_unknown(a: SignalValue, b: SignalValue) -> SignalValue:
    """X-pessimistic XOR for 1-bit values."""
    if a is X or b is X:
        return X
    return a ^ b


def xnot(a: SignalValue, width: int = 1) -> SignalValue:
    """X-pessimistic NOT over ``width`` bits."""
    if a is X:
        return X
    return ~a & ((1 << width) - 1)
