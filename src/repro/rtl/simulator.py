"""Phase-accurate RTL simulation.

Each clock cycle is PHI1 followed by PHI2.  Within a phase, every
combinational process and every latch transparent in that phase is
iterated until no signal changes (bounded -- an unstable fixpoint is a
modeling bug and raises).  Invariant checks registered on modules run at
each phase boundary.

The simulator tracks executed cycles and wall time so the section-4.1
throughput experiment ("achieving >200 cycles per second per simulation
CPU ... two billion aggregated simulated cycles per day requires ...
about 100 CPUs") can be measured rather than asserted.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.rtl.module import Phase, RtlModule
from repro.rtl.signals import Signal, SignalValue


class SimulationError(RuntimeError):
    """Raised for unstable fixpoints or failed invariants."""


class PhaseSimulator:
    """Simulates an :class:`~repro.rtl.module.RtlModule` hierarchy."""

    def __init__(self, top: RtlModule, max_iterations: int = 100):
        self.top = top
        self.max_iterations = max_iterations
        self.signals = top.all_signals()
        self._processes = top.all_processes()
        self._checks = top.all_checks()
        self.cycle_count = 0
        self.phase_count = 0
        self._sim_seconds = 0.0
        self.trace: dict[str, list[tuple[int, SignalValue]]] = {}
        self._traced: list[Signal] = []

    # -- tracing ------------------------------------------------------------

    def watch(self, *signals: Signal) -> None:
        """Record these signals' values after every phase."""
        for sig in signals:
            if sig not in self._traced:
                self._traced.append(sig)
                self.trace.setdefault(sig.name, [])

    # -- control -------------------------------------------------------------

    def reset(self) -> None:
        for sig in self.signals.values():
            sig.reset()
        self.cycle_count = 0
        self.phase_count = 0

    def eval_phase(self, phase: Phase) -> int:
        """Run one phase to fixpoint; returns iteration count."""
        start = time.perf_counter()
        active = [fn for p, fn in self._processes if p is None or p is phase]
        snapshot = self._snapshot()
        for iteration in range(self.max_iterations):
            for fn in active:
                fn()
            new_snapshot = self._snapshot()
            if new_snapshot == snapshot:
                break
            snapshot = new_snapshot
        else:
            raise SimulationError(
                f"phase {phase.name} did not reach a fixpoint within "
                f"{self.max_iterations} iterations (combinational loop?)"
            )
        self.phase_count += 1
        self._sim_seconds += time.perf_counter() - start
        self._record_trace()
        self._run_checks(phase)
        return iteration + 1

    def cycle(self, n: int = 1) -> None:
        """Run n full cycles (PHI1 then PHI2 each)."""
        for _ in range(n):
            self.eval_phase(Phase.PHI1)
            self.eval_phase(Phase.PHI2)
            self.cycle_count += 1

    # -- measurement ------------------------------------------------------------

    def cycles_per_second(self) -> float:
        """Measured simulation throughput so far."""
        if self._sim_seconds <= 0 or self.cycle_count == 0:
            return 0.0
        return self.cycle_count / self._sim_seconds

    def cpus_needed(self, cycles_per_day: float = 2e9) -> float:
        """Farm size for a daily cycle goal at the measured throughput
        (the paper's 2e9 cycles/day needed ~100 CPUs at >200 cyc/s)."""
        cps = self.cycles_per_second()
        if cps <= 0:
            raise SimulationError("no cycles simulated yet; run cycle() first")
        return cycles_per_day / (cps * 86400.0)

    # -- internals ----------------------------------------------------------------

    def _snapshot(self) -> tuple:
        return tuple(s.get() if not s.is_x() else "X" for s in self.signals.values())

    def _record_trace(self) -> None:
        for sig in self._traced:
            self.trace[sig.name].append((self.phase_count, sig.get()))

    def _run_checks(self, phase: Phase) -> None:
        for check in self._checks:
            message = check()
            if message is not None:
                raise SimulationError(
                    f"invariant failed after phase {phase.name} "
                    f"(cycle {self.cycle_count}): {message}"
                )
