"""Stimulus generation.

Paper section 4.1: "Simulation requires stimulus patterns, which are
either manually generated or pseudo-random sequences."

:class:`RandomStimulus` produces seeded pseudo-random per-cycle drive
values (reproducible across runs -- a hard requirement for triaging
mismatches found by shadow-mode simulation).  :class:`StimulusProgram`
holds a manually written sequence with hold/repeat conveniences.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping, Sequence

from repro.rtl.signals import Signal


class RandomStimulus:
    """Seeded pseudo-random stimulus over a set of signals.

    Parameters
    ----------
    signals:
        The signals to drive each cycle.
    seed:
        PRNG seed; identical seeds reproduce identical sequences.
    bias:
        Probability of each bit being 1 (0.5 = uniform).  Biased
        stimulus stresses corner behaviours (e.g. mostly-enabled clocks).
    """

    def __init__(self, signals: Sequence[Signal], seed: int = 1997, bias: float = 0.5):
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be in [0, 1]")
        self.signals = list(signals)
        self.bias = bias
        self._rng = random.Random(seed)

    def next_vector(self) -> dict[str, int]:
        """Generate and apply one cycle's stimulus; returns the values."""
        vector: dict[str, int] = {}
        for sig in self.signals:
            value = 0
            for bit in range(sig.width):
                if self._rng.random() < self.bias:
                    value |= 1 << bit
            sig.set(value)
            vector[sig.name] = value
        return vector

    def vectors(self, n: int) -> Iterator[dict[str, int]]:
        """Yield (and apply) n stimulus vectors."""
        for _ in range(n):
            yield self.next_vector()


class StimulusProgram:
    """A manually written stimulus sequence.

    The program is a list of ``{signal_name: value}`` maps; signals not
    mentioned in a step hold their previous value (like a tester's
    pattern memory).
    """

    def __init__(self, signals: Mapping[str, Signal]):
        self.signals = dict(signals)
        self.steps: list[dict[str, int]] = []

    def step(self, **values: int) -> "StimulusProgram":
        unknown = set(values) - set(self.signals)
        if unknown:
            raise KeyError(f"stimulus drives unknown signals {sorted(unknown)}")
        self.steps.append(dict(values))
        return self

    def repeat(self, count: int, **values: int) -> "StimulusProgram":
        for _ in range(count):
            self.step(**values)
        return self

    def play(self) -> Iterator[dict[str, int]]:
        """Apply each step in order, yielding the applied values."""
        for step in self.steps:
            for name, value in step.items():
                self.signals[name].set(value)
            yield step

    def __len__(self) -> int:
        return len(self.steps)
