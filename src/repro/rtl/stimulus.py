"""Stimulus generation.

Paper section 4.1: "Simulation requires stimulus patterns, which are
either manually generated or pseudo-random sequences."

:class:`RandomStimulus` produces seeded pseudo-random per-cycle drive
values (reproducible across runs -- a hard requirement for triaging
mismatches found by shadow-mode simulation).  :class:`StimulusProgram`
holds a manually written sequence with hold/repeat conveniences.

Seeds are **always explicit**.  A fuzz campaign runs many stimulus legs
at once, and two legs silently sharing a default seed replay the same
sequence -- exactly the scenario-diversity failure probabilistic
verification exists to avoid.  Campaign-level code derives per-leg seeds
from its own campaign seed (see :func:`repro.scenarios.derive_seed`);
hand-written tests just pass a literal.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping, Sequence

from repro.rtl.signals import Signal


class RandomStimulus:
    """Seeded pseudo-random stimulus over a set of signals.

    Parameters
    ----------
    signals:
        The signals to drive each cycle.
    seed:
        PRNG seed; identical seeds reproduce identical sequences.
        Required: there is no default, so two independently constructed
        stimulus legs can never silently replay one sequence.  Derive
        per-leg seeds from a campaign seed
        (:func:`repro.scenarios.derive_seed`) rather than inventing
        literals in campaign code.
    bias:
        Probability of each bit being 1 (0.5 = uniform).  Biased
        stimulus stresses corner behaviours (e.g. mostly-enabled clocks).
    """

    def __init__(self, signals: Sequence[Signal], seed: int | None = None,
                 bias: float = 0.5):
        if seed is None:
            raise ValueError(
                "RandomStimulus requires an explicit seed; derive one from "
                "a campaign seed (repro.scenarios.derive_seed) or pass a "
                "literal in tests")
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be in [0, 1]")
        self.signals = list(signals)
        self.seed = int(seed)
        self.bias = bias
        self._rng = random.Random(self.seed)

    def next_vector(self, apply: bool = True) -> dict[str, int]:
        """Generate one cycle's stimulus; returns the values.

        With ``apply=True`` (the default) each generated value is also
        **written to its live signal** -- the convenient mode for driving
        a simulator.  ``apply=False`` only advances the PRNG and returns
        the values, leaving every signal untouched: the mode for
        re-deriving a shard's vector sequence (fleet sharders, triage
        replay tooling) without perturbing simulator state.
        """
        vector: dict[str, int] = {}
        for sig in self.signals:
            value = 0
            for bit in range(sig.width):
                if self._rng.random() < self.bias:
                    value |= 1 << bit
            if apply:
                sig.set(value)
            vector[sig.name] = value
        return vector

    def vectors(self, n: int, apply: bool = True) -> Iterator[dict[str, int]]:
        """Yield n stimulus vectors.

        **Side effect**: with ``apply=True`` (the default) every yielded
        vector is also written to the live signals as it is generated --
        so materializing ``list(stim.vectors(n))`` and then replaying the
        list drives each signal *twice*.  Pass ``apply=False`` to
        enumerate the sequence purely (no signal writes), e.g. to
        inspect or persist the vectors a seed will produce.
        """
        for _ in range(n):
            yield self.next_vector(apply=apply)


class StimulusProgram:
    """A manually written stimulus sequence.

    The program is a list of ``{signal_name: value}`` maps; signals not
    mentioned in a step hold their previous value (like a tester's
    pattern memory).
    """

    def __init__(self, signals: Mapping[str, Signal]):
        self.signals = dict(signals)
        self.steps: list[dict[str, int]] = []

    def step(self, **values: int) -> "StimulusProgram":
        unknown = set(values) - set(self.signals)
        if unknown:
            raise KeyError(f"stimulus drives unknown signals {sorted(unknown)}")
        self.steps.append(dict(values))
        return self

    def repeat(self, count: int, **values: int) -> "StimulusProgram":
        for _ in range(count):
            self.step(**values)
        return self

    def play(self) -> Iterator[dict[str, int]]:
        """Apply each step in order, yielding the applied values."""
        for step in self.steps:
            for name, value in step.items():
                self.signals[name].set(value)
            yield step

    def __len__(self) -> int:
        return len(self.steps)
