"""Antenna geometry: per-net charge-collection accounting.

During metal etch, a long wire connected to a gate (but not yet to any
diffusion that could bleed charge away) collects plasma charge in
proportion to its area; the gate oxide underneath sees the resulting
voltage.  The antenna *ratio* -- exposed conductor area over connected
gate area -- is what the section-4.2 "antenna checks" bound.

This module computes the geometric inputs from a :class:`~repro.layout.
geometry.Layout`; the pass/fail policy lives in
:mod:`repro.checks.antenna`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.geometry import Layout
from repro.netlist.flatten import FlatNetlist


@dataclass
class AntennaGeometry:
    """Charge-collection geometry of one net.

    Attributes
    ----------
    net:
        Net name.
    metal_area_um2:
        Total wire area on etched conductor layers connected to the net.
    gate_area_um2:
        Total gate (poly over channel) area the net drives.
    has_diffusion:
        True when the net also contacts source/drain diffusion, which
        provides a discharge path during processing and waives the check.
    """

    net: str
    metal_area_um2: float
    gate_area_um2: float
    has_diffusion: bool

    def ratio(self) -> float:
        """Antenna ratio; infinite for a gate-only net with metal."""
        if self.gate_area_um2 <= 0.0:
            return 0.0
        return self.metal_area_um2 / self.gate_area_um2


def antenna_geometry(
    layout: Layout,
    flat: FlatNetlist,
    l_min_um: float = 0.35,
    metal_layers: tuple[str, ...] = ("metal1", "metal2", "metal3"),
) -> list[AntennaGeometry]:
    """Antenna accounting for every net that drives at least one gate."""
    out: list[AntennaGeometry] = []
    for net in sorted(flat.nets):
        flat_net = flat.nets[net]
        gate_pins = flat_net.gate_pins()
        if not gate_pins or flat_net.is_rail:
            continue
        gate_area = 0.0
        for pin in gate_pins:
            device = flat.transistor(pin.device)
            gate_area += device.w_um * device.effective_length(l_min_um)
        metal_area = sum(layout.net_area(net, layer) for layer in metal_layers)
        has_diffusion = bool(flat_net.channel_pins())
        out.append(AntennaGeometry(
            net=net,
            metal_area_um2=metal_area,
            gate_area_um2=gate_area,
            has_diffusion=has_diffusion,
        ))
    return out
