"""Transistor placement: diffusion-sharing row ordering.

Full-custom macrocells place PMOS in a top row and NMOS in a bottom row;
adjacent devices that share a source/drain net share a diffusion strip,
saving area and junction capacitance.  Finding the best ordering is the
classic Euler-path problem; this implementation uses a greedy
chain-extension heuristic, which recovers the optimal (zero-break)
ordering for series stacks and simple gates and degrades gracefully on
tangles -- in keeping with the paper's "assist, don't replace the
designer" philosophy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.devices import Transistor


@dataclass
class OrderedRow:
    """One placement row.

    ``order`` is the left-to-right device sequence; ``breaks`` counts
    adjacent pairs that share no diffusion net (each costs a gap).
    """

    polarity: str
    order: list[Transistor]
    breaks: int

    def shared_nets(self) -> list[str | None]:
        """Per adjacent pair, the shared diffusion net (None = break)."""
        shared: list[str | None] = []
        for left, right in zip(self.order, self.order[1:]):
            common = set(left.channel_terminals()) & set(right.channel_terminals())
            shared.append(sorted(common)[0] if common else None)
        return shared


def diffusion_ordering(devices: list[Transistor]) -> OrderedRow:
    """Greedy diffusion-sharing order for one row of same-polarity devices."""
    if not devices:
        raise ValueError("cannot order an empty device row")
    polarity = devices[0].polarity
    if any(t.polarity != polarity for t in devices):
        raise ValueError("diffusion_ordering expects a single-polarity row")

    remaining = list(devices)
    chain: list[Transistor] = [remaining.pop(0)]
    while remaining:
        tail_nets = set(chain[-1].channel_terminals())
        head_nets = set(chain[0].channel_terminals())
        best_idx = None
        best_end = "tail"
        for i, cand in enumerate(remaining):
            cand_nets = set(cand.channel_terminals())
            if cand_nets & tail_nets:
                best_idx, best_end = i, "tail"
                break
            if cand_nets & head_nets and best_idx is None:
                best_idx, best_end = i, "head"
        if best_idx is None:
            # No sharing possible: append with a break.
            chain.append(remaining.pop(0))
        elif best_end == "tail":
            chain.append(remaining.pop(best_idx))
        else:
            chain.insert(0, remaining.pop(best_idx))

    breaks = sum(
        1 for left, right in zip(chain, chain[1:])
        if not set(left.channel_terminals()) & set(right.channel_terminals())
    )
    return OrderedRow(polarity=polarity, order=chain, breaks=breaks)


def placement_rows(transistors: list[Transistor]) -> tuple[OrderedRow | None, OrderedRow | None]:
    """(pmos_row, nmos_row) orderings for a macrocell; None if a
    polarity is absent."""
    pmos = [t for t in transistors if t.polarity == "pmos"]
    nmos = [t for t in transistors if t.polarity == "nmos"]
    p_row = diffusion_ordering(pmos) if pmos else None
    n_row = diffusion_ordering(nmos) if nmos else None
    return p_row, n_row
