"""A small channel router for macrocell-internal wiring.

Pins live on two horizontal rows (the PMOS row's bottom edge and the
NMOS row's top edge).  Each net gets one horizontal trunk in the channel
between the rows plus vertical branches dropping to its pins -- classic
left-edge channel routing.  Trunk tracks are assigned greedily so that
nets whose x-spans overlap never share a track.

The router's output is what extraction consumes: per-net metal segments
with real lengths and, crucially, *which nets run parallel to which* --
the source of the coupling capacitances that sections 4.2/4.3 obsess
over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.geometry import Rect


@dataclass
class RouteSegment:
    """One routed wire piece (horizontal trunk or vertical branch)."""

    net: str
    rect: Rect
    kind: str  # "trunk" or "branch"
    track: int = -1


def channel_route(
    pins: dict[str, list[tuple[float, float]]],
    channel_y0: float,
    channel_y1: float,
    wire_width: float = 0.5,
    track_pitch: float = 1.5,
) -> list[RouteSegment]:
    """Route each net's pins through the channel.

    Parameters
    ----------
    pins:
        net -> list of (x, y) pin locations (y outside or at the channel
        edges).
    channel_y0 / channel_y1:
        Vertical extent of the routing channel.
    wire_width:
        Drawn metal width.
    track_pitch:
        Vertical distance between trunk tracks.

    Returns the placed segments; raises if the channel is too short for
    the required number of tracks.
    """
    if channel_y1 <= channel_y0:
        raise ValueError("channel has non-positive height")

    # Net spans, sorted by left edge (left-edge algorithm).
    spans: list[tuple[float, float, str]] = []
    for net, locations in pins.items():
        if not locations:
            continue
        xs = [x for x, _y in locations]
        spans.append((min(xs), max(xs), net))
    spans.sort()

    # Greedy track assignment: place each net on the first track whose
    # occupied intervals don't overlap its span.
    tracks: list[list[tuple[float, float]]] = []
    assignment: dict[str, int] = {}
    for x_min, x_max, net in spans:
        placed = False
        for idx, occupied in enumerate(tracks):
            if all(x_max + wire_width < lo or hi + wire_width < x_min
                   for lo, hi in occupied):
                occupied.append((x_min, x_max))
                assignment[net] = idx
                placed = True
                break
        if not placed:
            tracks.append([(x_min, x_max)])
            assignment[net] = len(tracks) - 1

    needed_height = len(tracks) * track_pitch
    if needed_height > (channel_y1 - channel_y0):
        raise ValueError(
            f"channel height {channel_y1 - channel_y0:.2f} um cannot fit "
            f"{len(tracks)} tracks at pitch {track_pitch} um"
        )

    segments: list[RouteSegment] = []
    for x_min, x_max, net in spans:
        track = assignment[net]
        y = channel_y0 + track_pitch * (track + 0.5)
        trunk = Rect("metal1",
                     x_min - wire_width / 2, y - wire_width / 2,
                     x_max + wire_width / 2, y + wire_width / 2,
                     net=net)
        segments.append(RouteSegment(net=net, rect=trunk, kind="trunk", track=track))
        for px, py in pins[net]:
            y_lo, y_hi = sorted((y, py))
            branch = Rect("metal1",
                          px - wire_width / 2, y_lo,
                          px + wire_width / 2, y_hi,
                          net=net)
            segments.append(RouteSegment(net=net, rect=branch, kind="branch", track=track))
    return segments


def parallel_runs(segments: list[RouteSegment],
                  max_gap: float = 3.0) -> list[tuple[str, str, float, float]]:
    """Pairs of distinct-net trunk segments running side by side.

    Returns (net_a, net_b, parallel_length_um, gap_um) tuples -- the
    geometric input to coupling extraction.
    """
    trunks = [s for s in segments if s.kind == "trunk"]
    out: list[tuple[str, str, float, float]] = []
    for i, a in enumerate(trunks):
        for b in trunks[i + 1:]:
            if a.net == b.net:
                continue
            if abs(a.track - b.track) != 1:
                continue  # only adjacent tracks couple meaningfully
            run = a.rect.horizontal_overlap(b.rect)
            if run <= 0:
                continue
            gap = a.rect.vertical_gap(b.rect)
            if gap <= max_gap:
                out.append((a.net, b.net, run, gap))
    return out
