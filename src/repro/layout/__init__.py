"""Layout model and macrocell synthesis assist.

Paper section 2.2: "CAD layout synthesis and assistance tools have had a
greater impact in our layout creation.  The emphasis of these layout
generation tools is to assist in the creation of macrocells, at the
level of transistor place and route."

This package provides exactly that level of tooling:

* :mod:`~repro.layout.geometry` -- rectangles on named layers, with net
  annotation;
* :mod:`~repro.layout.placer` -- diffusion-sharing transistor ordering
  (the classic row-based full-custom style);
* :mod:`~repro.layout.router` -- a small channel router producing
  metal segments whose lengths feed extraction;
* :mod:`~repro.layout.macrocell` -- ties placement and routing into a
  :class:`~repro.layout.geometry.Layout` for a cell;
* :mod:`~repro.layout.antenna_geom` -- per-net gate-area vs metal-area
  accounting for the antenna check of section 4.2.
"""

from repro.layout.geometry import Layout, Rect
from repro.layout.placer import diffusion_ordering, placement_rows
from repro.layout.router import RouteSegment, channel_route
from repro.layout.macrocell import MacrocellResult, generate_macrocell
from repro.layout.antenna_geom import AntennaGeometry, antenna_geometry

__all__ = [
    "Layout",
    "Rect",
    "diffusion_ordering",
    "placement_rows",
    "RouteSegment",
    "channel_route",
    "MacrocellResult",
    "generate_macrocell",
    "AntennaGeometry",
    "antenna_geometry",
]
