"""Layout geometry primitives.

Everything is axis-aligned rectangles on named layers, annotated with
the net they belong to -- sufficient for extraction (area, perimeter,
parallel-run coupling) and for the geometry-driven checks (antenna).

Coordinates are microns.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle on one layer, owned by one net.

    ``layer`` names are free-form but the conventional set is
    ``ndiff`` / ``pdiff`` / ``poly`` / ``contact`` / ``metal1``...
    """

    layer: str
    x0: float
    y0: float
    x1: float
    y1: float
    net: str = ""

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate rect on {self.layer}: "
                             f"({self.x0},{self.y0})-({self.x1},{self.y1})")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    def area(self) -> float:
        return self.width * self.height

    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def intersects(self, other: "Rect") -> bool:
        return not (self.x1 <= other.x0 or other.x1 <= self.x0
                    or self.y1 <= other.y0 or other.y1 <= self.y0)

    def horizontal_gap(self, other: "Rect") -> float:
        """Horizontal clear distance (0 if overlapping in x)."""
        if self.x1 < other.x0:
            return other.x0 - self.x1
        if other.x1 < self.x0:
            return self.x0 - other.x1
        return 0.0

    def vertical_overlap(self, other: "Rect") -> float:
        """Length of shared y-extent (parallel-run length for vertical
        wires)."""
        return max(0.0, min(self.y1, other.y1) - max(self.y0, other.y0))

    def horizontal_overlap(self, other: "Rect") -> float:
        return max(0.0, min(self.x1, other.x1) - max(self.x0, other.x0))

    def vertical_gap(self, other: "Rect") -> float:
        if self.y1 < other.y0:
            return other.y0 - self.y1
        if other.y1 < self.y0:
            return self.y0 - other.y1
        return 0.0


@dataclass
class Layout:
    """A bag of annotated rectangles plus named device placements."""

    name: str
    rects: list[Rect] = field(default_factory=list)
    # device name -> (x, y) gate position, for debug and router pins
    placements: dict[str, tuple[float, float]] = field(default_factory=dict)

    def add(self, rect: Rect) -> None:
        self.rects.append(rect)

    def on_layer(self, layer: str) -> list[Rect]:
        return [r for r in self.rects if r.layer == layer]

    def of_net(self, net: str, layer: str | None = None) -> list[Rect]:
        return [r for r in self.rects
                if r.net == net and (layer is None or r.layer == layer)]

    def nets(self) -> set[str]:
        return {r.net for r in self.rects if r.net}

    def bounding_box(self) -> Rect:
        if not self.rects:
            raise ValueError(f"layout {self.name!r} is empty")
        return Rect(
            layer="bbox",
            x0=min(r.x0 for r in self.rects),
            y0=min(r.y0 for r in self.rects),
            x1=max(r.x1 for r in self.rects),
            y1=max(r.y1 for r in self.rects),
        )

    def area(self) -> float:
        box = self.bounding_box()
        return box.area()

    def net_area(self, net: str, layer: str) -> float:
        return sum(r.area() for r in self.of_net(net, layer))

    def net_wire_length(self, net: str, layer: str) -> float:
        """Total centerline length of a net's wires on a layer
        (long-dimension sum)."""
        return sum(max(r.width, r.height) for r in self.of_net(net, layer))
