"""Macrocell generation: transistor place & route for one cell.

Takes a flat list of transistors, orders each polarity row for diffusion
sharing (:mod:`~repro.layout.placer`), draws diffusion/poly geometry,
and channel-routes the internal nets (:mod:`~repro.layout.router`).

The output geometry is deliberately schematic-grade rather than
DRC-clean: its purpose is to give extraction *real, structure-derived*
wire lengths, coupling neighbourhoods, and antenna areas, which is what
the paper's verification flow consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.geometry import Layout, Rect
from repro.layout.placer import OrderedRow, placement_rows
from repro.layout.router import RouteSegment, channel_route, parallel_runs
from repro.netlist.devices import Transistor
from repro.netlist.nets import is_rail_name


@dataclass
class MacrocellResult:
    """Everything macrocell generation produced."""

    layout: Layout
    segments: list[RouteSegment]
    couplings: list[tuple[str, str, float, float]]
    pmos_row: OrderedRow | None
    nmos_row: OrderedRow | None
    breaks: int = 0
    width_um: float = 0.0

    def net_length(self, net: str) -> float:
        return sum(max(s.rect.width, s.rect.height) for s in self.segments
                   if s.net == net)


def generate_macrocell(
    name: str,
    transistors: list[Transistor],
    l_min_um: float = 0.35,
    gate_pitch_um: float = 2.5,
    row_height_um: float = 6.0,
    channel_height_um: float = 12.0,
) -> MacrocellResult:
    """Place and route one macrocell.

    Geometry convention: NMOS row at the bottom (y < 0), PMOS row at the
    top, routing channel between them.  Devices sit at
    ``x = slot * gate_pitch``; a diffusion break inserts an empty slot.
    """
    if not transistors:
        raise ValueError("macrocell needs at least one transistor")
    pmos_row, nmos_row = placement_rows(transistors)
    layout = Layout(name=name)
    # Pin collection for the router: net -> [(x, y)]
    pins: dict[str, list[tuple[float, float]]] = {}

    def draw_row(row: OrderedRow | None, y_base: float, diff_layer: str) -> float:
        """Returns row width in slots."""
        if row is None:
            return 0.0
        shared = row.shared_nets()
        slot = 0
        for i, device in enumerate(row.order):
            x = slot * gate_pitch_um
            width = device.w_um
            length = device.effective_length(l_min_um)
            # Poly gate stripe.
            layout.add(Rect("poly", x - length / 2, y_base,
                            x + length / 2, y_base + width, net=device.gate))
            # Diffusion strip spanning the device.
            layout.add(Rect(diff_layer, x - gate_pitch_um / 2, y_base,
                            x + gate_pitch_um / 2, y_base + width, net=""))
            layout.placements[device.name] = (x, y_base)
            # Channel terminal pins at the channel-facing edge.
            pin_y = y_base if y_base >= 0 else y_base + width
            d, s = device.channel_terminals()
            for net, px in ((d, x - gate_pitch_um / 2), (s, x + gate_pitch_um / 2)):
                if not is_rail_name(net):
                    pins.setdefault(net, []).append((px, pin_y))
            gate_px = x
            if not is_rail_name(device.gate):
                pins.setdefault(device.gate, []).append((gate_px, pin_y))
            slot += 1
            if i < len(shared) and shared[i] is None:
                slot += 1  # diffusion break costs a slot
        return slot * gate_pitch_um

    n_width = draw_row(nmos_row, -(channel_height_um / 2 + row_height_um), "ndiff")
    p_width = draw_row(pmos_row, channel_height_um / 2, "pdiff")

    # Keep only nets with 2+ pins (singletons need no routing).
    routable = {net: locs for net, locs in pins.items() if len(locs) >= 2}
    # The requested channel height is a floor: congested cells grow the
    # channel until the router fits (a real assist tool would report the
    # new row pitch back to floorplanning).
    height = channel_height_um
    for _attempt in range(12):
        try:
            segments = channel_route(
                routable,
                channel_y0=-height / 2,
                channel_y1=height / 2,
            )
            break
        except ValueError:
            height *= 2.0
    else:
        raise ValueError(
            f"macrocell {name!r}: routing does not converge even with a "
            f"{height:.0f} um channel"
        )
    for seg in segments:
        layout.add(seg.rect)

    couplings = parallel_runs(segments)
    breaks = (pmos_row.breaks if pmos_row else 0) + (nmos_row.breaks if nmos_row else 0)
    return MacrocellResult(
        layout=layout,
        segments=segments,
        couplings=couplings,
        pmos_row=pmos_row,
        nmos_row=nmos_row,
        breaks=breaks,
        width_um=max(n_width, p_width),
    )
