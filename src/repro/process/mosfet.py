"""MOSFET device model.

A long-channel square-law (SPICE level-1 style) model with a
subthreshold-leakage extension and a channel-length-dependent threshold
roll-off.  The roll-off term is what makes the paper's section-3 story
reproducible: "devices in the cache arrays, the pad drivers, and certain
other areas were lengthened by 0.045 um or 0.09 um" to pull standby
leakage under 20 mW -- lengthening the channel backs the device off its
short-channel threshold roll-off, raising Vth and cutting subthreshold
current exponentially.

Unit conventions (used throughout the toolkit):

* geometry (W, L): microns
* voltage: volts
* current: amperes
* capacitance: farads
* transconductance parameter kp: A / V^2 (already includes Cox)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.process.corners import CornerSpec


@dataclass(frozen=True)
class MosfetParams:
    """Per-polarity device parameters of a technology.

    Attributes
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    vth0_v:
        Long-channel threshold voltage magnitude (positive number even
        for PMOS; sign handling is done in the evaluation functions).
    kp_a_per_v2:
        Process transconductance ``mu * Cox`` in A/V^2.
    lambda_per_v:
        Channel-length modulation coefficient (1/V).
    cox_f_per_um2:
        Gate-oxide capacitance per unit area.
    cov_f_per_um:
        Gate-drain/source overlap capacitance per unit gate width.
    cj_f_per_um2:
        Junction (source/drain area) capacitance per unit area.
    i0_leak_a:
        Subthreshold leakage pre-factor for a W/L = 1 device at
        Vgs = Vth (extrapolated), at 25 C.
    subthreshold_n:
        Subthreshold slope ideality factor (typically 1.3-1.6).
    vth_rolloff_v:
        Magnitude of the short-channel threshold roll-off at L ->
        l_min (sets how much lengthening the channel buys back).
    rolloff_lambda_um:
        Characteristic length of the exponential roll-off.
    l_min_um:
        Minimum drawn channel length of the technology.
    diff_width_um:
        Default source/drain diffusion extent used for junction caps.
    """

    polarity: str
    vth0_v: float
    kp_a_per_v2: float
    lambda_per_v: float
    cox_f_per_um2: float
    cov_f_per_um: float
    cj_f_per_um2: float
    i0_leak_a: float
    subthreshold_n: float
    vth_rolloff_v: float
    rolloff_lambda_um: float
    l_min_um: float
    diff_width_um: float

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")


class MosfetModel:
    """Evaluates one polarity of MOSFET at one PVT corner.

    All terminal voltages are passed as *overdrive-convention magnitudes*:
    for an NMOS, ``vgs`` and ``vds`` are the usual positive quantities;
    for a PMOS, pass ``vgs = Vsource - Vgate`` and ``vds = Vsource -
    Vdrain`` so the same equations apply.  Callers that work with node
    voltages should use :meth:`ids_at` which does the sign bookkeeping.
    """

    def __init__(self, params: MosfetParams, corner: CornerSpec):
        self.params = params
        self.corner = corner

    # -- threshold -------------------------------------------------------

    def vth(self, l_um: float | None = None) -> float:
        """Effective threshold magnitude at channel length ``l_um``.

        The short-channel roll-off is modeled as an exponential in L:
        ``Vth(L) = Vth_long - rolloff * exp(-(L - Lmin) / lambda)``,
        normalized so the roll-off equals ``vth_rolloff_v`` exactly at
        L = Lmin.  Lengthening the channel (L > Lmin) therefore raises
        Vth toward its long-channel value, which is the leakage-control
        mechanism of paper section 3.
        """
        p = self.params
        if l_um is None:
            l_um = p.l_min_um
        if l_um < p.l_min_um:
            raise ValueError(f"channel length {l_um} um below process minimum {p.l_min_um} um")
        vth_long = p.vth0_v + p.vth_rolloff_v
        rolloff = p.vth_rolloff_v * math.exp(-(l_um - p.l_min_um) / p.rolloff_lambda_um)
        shift = self.corner.vth_shift_v
        return vth_long - rolloff + shift

    # -- drain current ---------------------------------------------------

    def ids(self, vgs: float, vds: float, w_um: float, l_um: float | None = None) -> float:
        """Drain current (A) in overdrive convention (both args >= 0 in
        normal forward operation).

        Covers subthreshold, linear, and saturation regions with a
        continuous square-law hand-off.
        """
        p = self.params
        if l_um is None:
            l_um = p.l_min_um
        if vds < 0:
            # Reverse conduction: swap source/drain (symmetric device).
            return -self.ids(vgs + vds, -vds, w_um, l_um)
        vth = self.vth(l_um)
        beta = self.corner.drive_factor * p.kp_a_per_v2 * (w_um / l_um)
        vov = vgs - vth
        # The subthreshold component is evaluated with Vgs clamped at Vth,
        # so it is continuous across the threshold and becomes a constant,
        # quickly negligible floor in strong inversion.
        sub = self._subthreshold(min(vgs, vth), vds, w_um, l_um, vth)
        if vov <= 0:
            return sub
        if vds < vov:
            strong = beta * (vov * vds - 0.5 * vds * vds)
        else:
            strong = 0.5 * beta * vov * vov * (1.0 + p.lambda_per_v * (vds - vov))
        return strong + sub

    def _subthreshold(self, vgs: float, vds: float, w_um: float, l_um: float, vth: float) -> float:
        p = self.params
        vt = self.corner.thermal_voltage()
        n = p.subthreshold_n
        i0 = p.i0_leak_a * self.corner.drive_factor
        exponent = (vgs - vth) / (n * vt)
        # Clamp to avoid overflow for deeply reverse-biased gates.
        exponent = max(exponent, -80.0)
        drain_term = 1.0 - math.exp(-max(vds, 0.0) / vt) if vds < 40 * vt else 1.0
        return i0 * (w_um / l_um) * math.exp(exponent) * drain_term

    def leakage(self, vdd: float, w_um: float, l_um: float | None = None) -> float:
        """Off-state (Vgs = 0, Vds = VDD) subthreshold leakage in amperes."""
        p = self.params
        if l_um is None:
            l_um = p.l_min_um
        return self._subthreshold(0.0, vdd, w_um, l_um, self.vth(l_um))

    def ids_at(self, vg: float, vd: float, vs: float, w_um: float, l_um: float | None = None) -> float:
        """Drain current given absolute node voltages.

        Returns conventional current flowing drain -> source for NMOS
        and source -> drain for PMOS (i.e. positive when the device pulls
        its output toward its rail).
        """
        if self.params.polarity == "nmos":
            if vd >= vs:
                return self.ids(vg - vs, vd - vs, w_um, l_um)
            return -self.ids(vg - vd, vs - vd, w_um, l_um)
        # PMOS: mirror voltages.
        if vd <= vs:
            return self.ids(vs - vg, vs - vd, w_um, l_um)
        return -self.ids(vd - vg, vd - vs, w_um, l_um)

    # -- capacitance & strength -----------------------------------------

    def gate_capacitance(self, w_um: float, l_um: float | None = None) -> float:
        """Total gate capacitance in farads (channel + both overlaps)."""
        p = self.params
        if l_um is None:
            l_um = p.l_min_um
        channel = self.corner.cap_factor * p.cox_f_per_um2 * w_um * l_um
        overlap = self.corner.cap_factor * 2.0 * p.cov_f_per_um * w_um
        return channel + overlap

    def diffusion_capacitance(self, w_um: float) -> float:
        """Source or drain junction capacitance in farads."""
        p = self.params
        area = w_um * p.diff_width_um
        return self.corner.cap_factor * p.cj_f_per_um2 * area

    def on_resistance(self, vdd: float, w_um: float, l_um: float | None = None) -> float:
        """Effective switching resistance (ohms).

        The usual RC-delay abstraction: average of the saturation-region
        and midpoint-linear-region V/I.  This is what the timing engine
        uses for Elmore-style delays; :mod:`repro.spice` provides the
        accurate alternative.
        """
        if l_um is None:
            l_um = self.params.l_min_um
        i_sat = self.ids(vdd, vdd, w_um, l_um)
        i_mid = self.ids(vdd, vdd / 2.0, w_um, l_um)
        if i_sat <= 0 or i_mid <= 0:
            return float("inf")
        r_sat = vdd / i_sat
        r_mid = (vdd / 2.0) / i_mid
        return 0.5 * (r_sat + r_mid)

    def saturation_current(self, vdd: float, w_um: float, l_um: float | None = None) -> float:
        """Full-overdrive saturation current (A), e.g. for EM budgeting."""
        return self.ids(vdd, vdd, w_um, l_um)
