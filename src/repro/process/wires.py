"""Interconnect layer parameters.

Extraction (:mod:`repro.extraction`) and the clock-RC / electromigration
checks need per-layer sheet resistance, area/fringe capacitance, coupling
capacitance to same-layer neighbours, and current-density limits.  Values
are representative of mid-1990s aluminium interconnect.

Units: resistance in ohms/square, capacitance in F/um^2 (area) and
F/um (fringe and coupling per edge length), current density limits in
A/um of wire width (the usual EM budgeting unit for Al at ~1 mA/um).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WireLayer:
    """One routing layer.

    Attributes
    ----------
    name:
        Layer name, e.g. ``"metal1"``.
    sheet_res_ohm_sq:
        Sheet resistance in ohms per square.
    c_area_f_per_um2:
        Parallel-plate capacitance to the layers below, per unit area.
    c_fringe_f_per_um:
        Fringe capacitance per unit edge length (both edges counted
        separately by the extractor).
    c_couple_f_per_um:
        Sidewall coupling capacitance to a minimum-spaced same-layer
        neighbour, per unit parallel-run length.
    min_width_um / min_space_um:
        Design-rule minima.
    em_limit_a_per_um:
        DC current-density limit for electromigration, per um of width.
    thickness_um:
        Metal thickness (used by the antenna check's charge-collection
        area and by via resistance estimates).
    """

    name: str
    sheet_res_ohm_sq: float
    c_area_f_per_um2: float
    c_fringe_f_per_um: float
    c_couple_f_per_um: float
    min_width_um: float
    min_space_um: float
    em_limit_a_per_um: float
    thickness_um: float

    def resistance(self, length_um: float, width_um: float) -> float:
        """Resistance of a ``length x width`` wire segment in ohms."""
        if width_um <= 0:
            raise ValueError("wire width must be positive")
        return self.sheet_res_ohm_sq * length_um / width_um

    def ground_capacitance(self, length_um: float, width_um: float) -> float:
        """Capacitance to ground of an isolated segment (area + 2 fringes)."""
        return (
            self.c_area_f_per_um2 * length_um * width_um
            + 2.0 * self.c_fringe_f_per_um * length_um
        )

    def coupling_capacitance(self, parallel_run_um: float, spacing_um: float | None = None) -> float:
        """Sidewall coupling to one neighbour over a parallel run.

        Scales inversely with spacing relative to the minimum-space
        value (a standard first-order extraction approximation).
        """
        if spacing_um is None:
            spacing_um = self.min_space_um
        if spacing_um <= 0:
            raise ValueError("spacing must be positive")
        return self.c_couple_f_per_um * parallel_run_um * (self.min_space_um / spacing_um)


@dataclass(frozen=True)
class WireStack:
    """The ordered set of routing layers of a technology."""

    layers: tuple[WireLayer, ...] = field(default_factory=tuple)

    def __getitem__(self, name: str) -> WireLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no wire layer named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(layer.name == name for layer in self.layers)

    def names(self) -> list[str]:
        return [layer.name for layer in self.layers]


def aluminium_stack(scale_um: float, n_layers: int = 3) -> WireStack:
    """Build a representative aluminium wire stack for a given node.

    ``scale_um`` is the technology's drawn feature size; widths/spaces
    scale linearly with it, sheet resistance and per-length capacitances
    are held roughly constant across generations (as they historically
    were for Al until copper/low-k).
    """
    layers = []
    for i in range(n_layers):
        level = i + 1
        # Upper layers are thicker, wider, lower-resistance.
        fat = 1.0 + 0.6 * i
        layers.append(
            WireLayer(
                name=f"metal{level}",
                sheet_res_ohm_sq=0.07 / fat,
                c_area_f_per_um2=3.0e-17 / (1.0 + 0.5 * i),
                c_fringe_f_per_um=4.0e-17,
                c_couple_f_per_um=5.0e-17,
                min_width_um=scale_um * fat,
                min_space_um=scale_um * fat,
                em_limit_a_per_um=1.0e-3,
                thickness_um=0.6 * fat,
            )
        )
    return WireStack(layers=tuple(layers))
