"""Technology, PVT-corner, and device models.

The paper's designs span two fabrication generations:

* a 0.75 um, 3.45 V CMOS process (the ALPHA 21064 of reference [2]), and
* a 0.35 um, 1.5 V low-threshold CMOS process (the StrongARM SA-110 of
  reference [1]).

Neither process is public, so this package provides *simulated*
technologies: parameter sets tuned such that the public, paper-quoted
figures hold (200 MHz @ 26 W for the 21064-class model; 160 MHz @ ~0.45 W
and a <= 20 mW standby-leakage budget for the SA-110-class model).  Every
downstream analysis (timing, checks, power) consumes only the
:class:`~repro.process.technology.Technology` interface, so a user can
substitute a real PDK-derived parameter set without touching any tool.
"""

from repro.process.corners import Corner, CornerSpec, PROCESS_CORNERS
from repro.process.mosfet import MosfetModel, MosfetParams
from repro.process.technology import (
    Technology,
    alpha_21064_technology,
    alpha_21164_technology,
    strongarm_technology,
)
from repro.process.wires import WireLayer, WireStack

__all__ = [
    "Corner",
    "CornerSpec",
    "PROCESS_CORNERS",
    "MosfetModel",
    "MosfetParams",
    "Technology",
    "WireLayer",
    "WireStack",
    "alpha_21064_technology",
    "alpha_21164_technology",
    "strongarm_technology",
]
