"""Technology definitions: the glue between devices, wires, and corners.

Two presets matter for the paper's experiments:

* :func:`alpha_21064_technology` -- a 0.75 um, 3.45 V process standing in
  for the one that built the 200 MHz ALPHA 21064 (paper ref [2]).  High
  thresholds, negligible subthreshold leakage.
* :func:`strongarm_technology` -- a 0.35 um, 1.5 V *low-threshold*
  process standing in for the StrongARM SA-110's (paper ref [1]).  The
  low thresholds that enable 160 MHz at 1.5 V also leak enough that the
  20 mW standby budget fails at the fast corner unless channels in the
  big arrays are lengthened (paper section 3) -- the preset is calibrated
  so this trade-off is live, not decorative.

:func:`alpha_21164_technology` (0.5 um) fills in the middle generation
for the Table-1 process-scaling step.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.process.corners import Corner, CornerSpec, corner_spec
from repro.process.mosfet import MosfetModel, MosfetParams
from repro.process.wires import WireStack, aluminium_stack


@dataclass(frozen=True)
class Technology:
    """A complete process description.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"cmos035-lowvt"``.
    l_min_um:
        Minimum drawn channel length (the node's "feature size").
    vdd_v:
        Nominal supply voltage.
    nmos / pmos:
        Device parameter sets.
    wires:
        Routing stack.
    tox_nm:
        Gate-oxide thickness, consumed by the TDDB check.
    tddb_max_field_mv_per_cm:
        Oxide field above which time-dependent dielectric breakdown
        lifetime is considered violated at nominal use conditions.
    hci_max_vds_v:
        Drain-source voltage above which hot-carrier degradation is
        flagged for N devices that switch with high duty.
    """

    name: str
    l_min_um: float
    vdd_v: float
    nmos: MosfetParams
    pmos: MosfetParams
    wires: WireStack
    tox_nm: float
    tddb_max_field_mv_per_cm: float = 5.0
    hci_max_vds_v: float | None = None

    # -- model factories --------------------------------------------------

    def mosfet(self, polarity: str, corner: Corner = Corner.TYPICAL) -> MosfetModel:
        """A :class:`MosfetModel` for one polarity at one corner."""
        if polarity == "nmos":
            return MosfetModel(self.nmos, corner_spec(corner))
        if polarity == "pmos":
            return MosfetModel(self.pmos, corner_spec(corner))
        raise ValueError(f"unknown polarity {polarity!r}")

    def nmos_model(self, corner: Corner = Corner.TYPICAL) -> MosfetModel:
        return self.mosfet("nmos", corner)

    def pmos_model(self, corner: Corner = Corner.TYPICAL) -> MosfetModel:
        return self.mosfet("pmos", corner)

    def vdd_at(self, corner: Corner) -> float:
        """Supply voltage including the corner's tolerance."""
        return self.vdd_v * corner_spec(corner).vdd_factor

    def oxide_field_mv_per_cm(self, voltage_v: float | None = None) -> float:
        """Oxide electric field in MV/cm at a gate voltage (default VDD)."""
        if voltage_v is None:
            voltage_v = self.vdd_v
        return voltage_v / (self.tox_nm * 1e-7) / 1e6

    def scaled(self, name: str, l_min_um: float, vdd_v: float) -> "Technology":
        """Derive a shrunk (or grown) technology.

        Geometry-linked parameters scale with the feature-size ratio:
        Cox and kp go up as dimensions shrink (thinner oxide), junction
        and overlap caps go down.  Used by the Table-1 process-scaling
        step and by ablation sweeps.
        """
        s = l_min_um / self.l_min_um  # < 1 for a shrink
        tox = self.tox_nm * s

        def scale_params(p: MosfetParams) -> MosfetParams:
            return replace(
                p,
                kp_a_per_v2=p.kp_a_per_v2 / s,
                cox_f_per_um2=p.cox_f_per_um2 / s,
                cov_f_per_um=p.cov_f_per_um * s,
                cj_f_per_um2=p.cj_f_per_um2,
                l_min_um=l_min_um,
                rolloff_lambda_um=p.rolloff_lambda_um * s,
                diff_width_um=p.diff_width_um * s,
            )

        return Technology(
            name=name,
            l_min_um=l_min_um,
            vdd_v=vdd_v,
            nmos=scale_params(self.nmos),
            pmos=scale_params(self.pmos),
            wires=aluminium_stack(l_min_um, n_layers=len(self.wires.layers)),
            tox_nm=tox,
            tddb_max_field_mv_per_cm=self.tddb_max_field_mv_per_cm,
            hci_max_vds_v=self.hci_max_vds_v,
        )


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


def alpha_21064_technology() -> Technology:
    """0.75 um, 3.45 V CMOS -- the ALPHA 21064 generation (paper ref [2]).

    High thresholds (|Vth| ~ 0.7-0.8 V): subthreshold leakage is
    negligible, so nothing in this technology's power budget depends on
    channel lengthening.  Drive parameters give FO4-class delays
    consistent with a 200 MHz, deeply hand-tuned design.
    """
    nmos = MosfetParams(
        polarity="nmos",
        vth0_v=0.70,
        kp_a_per_v2=1.15e-4,
        lambda_per_v=0.05,
        cox_f_per_um2=2.3e-15,
        cov_f_per_um=2.5e-16,
        cj_f_per_um2=4.0e-16,
        i0_leak_a=5.0e-8,
        subthreshold_n=1.45,
        vth_rolloff_v=0.06,
        rolloff_lambda_um=0.15,
        l_min_um=0.75,
        diff_width_um=1.5,
    )
    pmos = MosfetParams(
        polarity="pmos",
        vth0_v=0.80,
        kp_a_per_v2=4.0e-5,
        lambda_per_v=0.06,
        cox_f_per_um2=2.3e-15,
        cov_f_per_um=2.5e-16,
        cj_f_per_um2=4.5e-16,
        i0_leak_a=2.0e-8,
        subthreshold_n=1.45,
        vth_rolloff_v=0.06,
        rolloff_lambda_um=0.15,
        l_min_um=0.75,
        diff_width_um=1.5,
    )
    return Technology(
        name="cmos075",
        l_min_um=0.75,
        vdd_v=3.45,
        nmos=nmos,
        pmos=pmos,
        wires=aluminium_stack(0.75, n_layers=3),
        tox_nm=15.0,
        hci_max_vds_v=3.8,
    )


def alpha_21164_technology() -> Technology:
    """0.5 um, 3.3 V CMOS -- the 21164 generation (paper ref [3])."""
    return alpha_21064_technology().scaled("cmos050", l_min_um=0.50, vdd_v=3.3)


def strongarm_technology() -> Technology:
    """0.35 um, 1.5 V low-threshold CMOS -- the StrongARM SA-110's process.

    Calibrated so that, at the FAST corner, a chip-scale inventory of
    minimum-length devices leaks *more* than the 20 mW standby budget,
    and lengthening array/pad devices by +0.045 or +0.09 um (paper
    section 3) brings it back under -- the exact knob the paper
    describes.  Thresholds are low (0.30 / 0.35 V) to sustain 160 MHz
    at VDD = 1.5 V.
    """
    nmos = MosfetParams(
        polarity="nmos",
        vth0_v=0.30,
        kp_a_per_v2=1.8e-4,
        lambda_per_v=0.07,
        cox_f_per_um2=3.8e-15,
        cov_f_per_um=3.0e-16,
        cj_f_per_um2=6.0e-16,
        i0_leak_a=8.0e-7,
        subthreshold_n=1.50,
        vth_rolloff_v=0.10,
        rolloff_lambda_um=0.065,
        l_min_um=0.35,
        diff_width_um=0.7,
    )
    pmos = MosfetParams(
        polarity="pmos",
        vth0_v=0.35,
        kp_a_per_v2=6.0e-5,
        lambda_per_v=0.08,
        cox_f_per_um2=3.8e-15,
        cov_f_per_um=3.0e-16,
        cj_f_per_um2=6.5e-16,
        i0_leak_a=3.5e-7,
        subthreshold_n=1.50,
        vth_rolloff_v=0.10,
        rolloff_lambda_um=0.065,
        l_min_um=0.35,
        diff_width_um=0.7,
    )
    return Technology(
        name="cmos035-lowvt",
        l_min_um=0.35,
        vdd_v=1.5,
        nmos=nmos,
        pmos=pmos,
        wires=aluminium_stack(0.35, n_layers=3),
        tox_nm=9.0,
        hci_max_vds_v=2.2,
    )
