"""Process / voltage / temperature (PVT) corners.

Section 4.3 of the paper stresses that min/max delay calculation must
bound manufacturing tolerances: "Internodal capacitance values ... have
significant variation from both manufacturing tolerances and miller
coupling capacitance multiplicative effects."  Section 3 requires the
standby-leakage budget to be met "in the fastest process corner".

A :class:`CornerSpec` is a pure description of how one corner perturbs
the nominal technology; :class:`Corner` enumerates the conventional named
corners.  Perturbation factors are multiplicative on drive strength and
capacitance and additive on threshold voltage, matching how foundry
corner models are commonly abstracted in timing tools.

Units: temperatures in degrees Celsius, voltages in volts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Corner(enum.Enum):
    """Named PVT corners.

    ``FAST`` is the leakage-worst / race-worst corner (strong devices,
    low threshold, high temperature for leakage, low for delay -- we use
    the leakage-pessimistic convention since the paper's standby spec is
    stated at the fastest corner).  ``SLOW`` is the critical-path-worst
    corner.  ``TYPICAL`` is nominal silicon.
    """

    FAST = "fast"
    TYPICAL = "typical"
    SLOW = "slow"


@dataclass(frozen=True)
class CornerSpec:
    """Multiplicative / additive perturbations one corner applies.

    Attributes
    ----------
    name:
        The :class:`Corner` this spec realizes.
    drive_factor:
        Multiplier on transistor transconductance (kp).  > 1 means
        stronger (faster) devices.
    vth_shift_v:
        Additive shift applied to NMOS threshold voltage (and, with
        opposite sign, to the PMOS threshold, which is negative).  A
        negative shift lowers |Vth| -- faster and leakier.
    cap_factor:
        Multiplier on all extracted capacitances (interlayer dielectric
        and linewidth tolerance).
    res_factor:
        Multiplier on all extracted resistances.
    vdd_factor:
        Multiplier on the nominal supply (e.g. +/-10% supply tolerance).
    temperature_c:
        Junction temperature assumed at this corner.
    """

    name: Corner
    drive_factor: float
    vth_shift_v: float
    cap_factor: float
    res_factor: float
    vdd_factor: float
    temperature_c: float

    def thermal_voltage(self) -> float:
        """kT/q in volts at this corner's junction temperature."""
        boltzmann_over_q = 8.617333262e-5  # V / K
        return boltzmann_over_q * (self.temperature_c + 273.15)


#: The standard three-corner set used throughout the toolkit.  The FAST
#: corner is specified hot, because the paper's 20 mW standby budget is a
#: leakage limit and subthreshold leakage grows exponentially with
#: temperature; the SLOW corner is also hot (worst drive), and TYPICAL
#: is room-temperature nominal.
PROCESS_CORNERS: dict[Corner, CornerSpec] = {
    Corner.FAST: CornerSpec(
        name=Corner.FAST,
        drive_factor=1.25,
        vth_shift_v=-0.05,
        cap_factor=0.85,
        res_factor=0.85,
        vdd_factor=1.05,
        temperature_c=85.0,
    ),
    Corner.TYPICAL: CornerSpec(
        name=Corner.TYPICAL,
        drive_factor=1.0,
        vth_shift_v=0.0,
        cap_factor=1.0,
        res_factor=1.0,
        vdd_factor=1.0,
        temperature_c=25.0,
    ),
    Corner.SLOW: CornerSpec(
        name=Corner.SLOW,
        drive_factor=0.8,
        vth_shift_v=+0.05,
        cap_factor=1.15,
        res_factor=1.15,
        vdd_factor=0.95,
        temperature_c=110.0,
    ),
}


def corner_spec(corner: Corner) -> CornerSpec:
    """Return the :class:`CornerSpec` for a named corner."""
    return PROCESS_CORNERS[corner]


#: CornerSpec fields a Monte-Carlo draw perturbs, in a fixed order (the
#: order determines the PRNG call sequence, so it is part of the
#: reproducibility contract -- reordering changes every sampled corner).
SAMPLED_FIELDS: tuple[str, ...] = (
    "drive_factor", "vth_shift_v", "cap_factor", "res_factor",
    "vdd_factor", "temperature_c",
)

#: The FAST/SLOW span is read as the +/- 2 sigma window of the
#: underlying process distribution: ~95% of sampled corners land inside
#: the bounding corners, with tails beyond them -- which is what the
#: bounding-corner methodology assumes about real silicon.
CORNER_SPAN_SIGMA = 4.0


def corner_sigmas() -> dict[str, float]:
    """Per-field standard deviation implied by the FAST/SLOW span."""
    fast = PROCESS_CORNERS[Corner.FAST]
    slow = PROCESS_CORNERS[Corner.SLOW]
    return {
        field: abs(getattr(fast, field) - getattr(slow, field))
               / CORNER_SPAN_SIGMA
        for field in SAMPLED_FIELDS
    }


def sample_corner(rng, sigma_scale: float = 1.0) -> CornerSpec:
    """Draw one gaussian-perturbed corner around TYPICAL.

    ``rng`` is a :class:`random.Random` (or anything with ``gauss``);
    the draw consumes exactly ``len(SAMPLED_FIELDS)`` variates in
    :data:`SAMPLED_FIELDS` order, so a seeded rng reproduces the same
    corner bit-for-bit.  Multiplicative factors are clamped to stay
    positive (a tail draw cannot produce a negative capacitance).
    """
    typical = PROCESS_CORNERS[Corner.TYPICAL]
    sigmas = corner_sigmas()
    values = {}
    for field in SAMPLED_FIELDS:
        drawn = (getattr(typical, field)
                 + rng.gauss(0.0, 1.0) * sigmas[field] * sigma_scale)
        if field.endswith("_factor"):
            drawn = max(drawn, 0.05)
        values[field] = drawn
    return CornerSpec(name=Corner.TYPICAL, **values)
