"""Setup-path tests: template stamping, table persistence, CCC sharing.

The packed-table builder now stamps name-free CCC templates and rides
target-rooted path sweeps; this file pins the two invariants that make
that safe -- the stamped arrays are **byte-identical** to the direct
per-CCC enumeration of older releases, and a store round-trip
reproduces them exactly -- plus the cache-sharing contracts
(`DesignCache.cccs`, store-backed `switch_tables`) and a chip-scale
reference-vs-vector regression.
"""

import numpy as np
import pytest

from repro.designs import chip_scale
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.perf.cache import DesignCache
from repro.recognition import conduction
from repro.store.artifact import ArtifactStore
from repro.switchsim import SwitchSimulator
from repro.switchsim import tables as tables_mod
from repro.switchsim.tables import (
    PackedSwitchTables,
    load_switch_tables,
    save_switch_tables,
)

ARRAYS = (
    "row_net", "row_ccc", "row_wave", "path_ptr", "path_src",
    "path_src_rail", "path_g", "cond_ptr", "cond_gate", "cond_level",
    "cond_internal", "cond_path", "aff_later_ptr", "aff_later_rows",
)


def assert_tables_identical(a: PackedSwitchTables, b: PackedSwitchTables):
    for name in ARRAYS:
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype, name
        assert x.shape == y.shape, name
        assert x.tobytes() == y.tobytes(), name
    assert a.row_name == b.row_name
    assert len(a.affected_rows) == len(b.affected_rows)
    for da, db in zip(a.affected_rows, b.affected_rows):
        assert set(da) == set(db)
        for k in da:
            assert da[k].tolist() == db[k].tolist()


def build_legacy(cell) -> PackedSwitchTables:
    """PR 6 behaviour: per-pair DFS, no template stamping, fresh CCCs."""
    sweep, tmpl = conduction.SWEEP_ENABLED, tables_mod.TEMPLATES_ENABLED
    conduction.SWEEP_ENABLED = False
    tables_mod.TEMPLATES_ENABLED = False
    try:
        return PackedSwitchTables.build(flatten(cell))
    finally:
        conduction.SWEEP_ENABLED = sweep
        tables_mod.TEMPLATES_ENABLED = tmpl


def tiled_cell():
    """Many stamped copies of one slice -- the template cache's case."""
    slice_b = CellBuilder("bitslice", ports=["d", "en", "en_b", "q"])
    slice_b.transmission_gate("d", "m", "en", "en_b")
    slice_b.inverter("m", "q")
    slice_cell = slice_b.build()
    top = CellBuilder("tiled", ports=["d", "en", "en_b"]).build()
    for i in range(6):
        top.ports.append(f"q{i}")
        top.instantiate(f"s{i}", slice_cell, d="d", en="en", en_b="en_b",
                        q=f"q{i}")
    return top


@pytest.mark.parametrize("make_cell", [
    tiled_cell,
    lambda: chip_scale(300).cell,
], ids=["tiled-slices", "chipscale-300"])
def test_template_build_byte_identical_to_direct(make_cell):
    cell = make_cell()
    new = PackedSwitchTables.build(flatten(cell))
    old = build_legacy(cell)
    assert new.template_hits > 0  # the cache actually engaged
    assert_tables_identical(new, old)


def test_store_roundtrip_byte_identical(tmp_path):
    cell = tiled_cell()
    flat = flatten(cell)
    built = PackedSwitchTables.build(flat)
    store = ArtifactStore(str(tmp_path))
    assert save_switch_tables(store, built)
    assert not save_switch_tables(store, built)  # idempotent

    flat2 = flatten(cell)  # fresh netlist, same fingerprint
    loaded = load_switch_tables(store, flat2)
    assert loaded is not None
    assert loaded.loaded_from_store and loaded.build_wall_s == 0.0
    assert loaded.matches(flat2, 0.35)
    assert_tables_identical(built, loaded)


def test_store_miss_and_mismatches_return_none(tmp_path):
    store = ArtifactStore(str(tmp_path))
    cell = tiled_cell()
    flat = flatten(cell)
    # Key absent.
    assert load_switch_tables(store, flat) is None
    built = PackedSwitchTables.build(flat)
    save_switch_tables(store, built)
    # Different l_min is a different fingerprint -> miss, not a stale hit.
    assert load_switch_tables(store, flat, l_min_um=0.5) is None
    # Geometry mutation changes the fingerprint -> miss.
    flat.transistors[0].w_um *= 2.0
    flat.note_mutation()
    assert load_switch_tables(store, flat) is None


def test_store_quarantines_malformed_payload(tmp_path):
    store = ArtifactStore(str(tmp_path))
    flat = flatten(tiled_cell())
    key = PackedSwitchTables.store_key_for(
        PackedSwitchTables.fingerprint_of(flat, 0.35))
    store.put(key, {"schema": 999, "garbage": True})
    assert load_switch_tables(store, flat) is None
    # The bad blob was invalidated: the key is free for a good write.
    built = PackedSwitchTables.build(flat)
    assert save_switch_tables(store, built)
    assert load_switch_tables(store, flatten(tiled_cell())) is not None


def test_fingerprint_memoized_per_epoch():
    flat = flatten(tiled_cell())
    fp1 = PackedSwitchTables.fingerprint_of(flat, 0.35)
    assert PackedSwitchTables.fingerprint_of(flat, 0.35) == fp1
    flat.transistors[0].w_um *= 2.0
    # Undeclared in-place edit: the memo (by design) still answers for
    # the current epoch...
    assert PackedSwitchTables.fingerprint_of(flat, 0.35) == fp1
    # ...until the mutation is declared.
    flat.note_mutation()
    assert PackedSwitchTables.fingerprint_of(flat, 0.35) != fp1


def test_design_cache_shares_cccs_across_consumers():
    flat = flatten(tiled_cell())
    cache = DesignCache()
    cccs = cache.cccs(flat)
    assert cache.cccs(flat) is cccs                      # stable
    assert cache.recognized(flat).classifications[0].ccc in cccs
    tables = cache.switch_tables(flat)
    assert tables.cccs is cccs                           # no re-extract
    sim = SwitchSimulator(flat, engine="reference", cache=cache)
    assert sim.cccs is cccs
    # Declared mutation invalidates the shared extraction.
    flat.note_mutation()
    assert cache.cccs(flat) is not cccs


def test_design_cache_store_backed_tables(tmp_path):
    store = ArtifactStore(str(tmp_path))
    cell = tiled_cell()

    cache1 = DesignCache(store=store)
    built = cache1.switch_tables(flatten(cell))
    assert not built.loaded_from_store
    assert cache1.store_table_misses == 1
    assert cache1.store_table_writes == 1

    cache2 = DesignCache(store=store)
    loaded = cache2.switch_tables(flatten(cell))
    assert loaded.loaded_from_store
    assert cache2.store_table_hits == 1
    assert_tables_identical(built, loaded)
    for key in ("store_table_hits", "store_table_misses",
                "store_table_writes"):
        assert key in cache2.counters()


def test_chipscale_vector_matches_reference_bit_for_bit():
    """The tier-1 guard for the whole setup path: a chip-scale design
    built through the shared cache must simulate bit-identically to the
    scalar reference engine.  (CHIPSCALE_REF_TARGET=10000 runs the full
    10k comparison; 1k is the always-on tier.)"""
    import os

    target = int(os.environ.get("CHIPSCALE_REF_TARGET", "1000"))
    cs = chip_scale(target)
    flat = flatten(cs.cell)
    cache = DesignCache()
    ref = SwitchSimulator(flat, engine="reference", cache=cache)
    vec = SwitchSimulator(flat, engine="vector", cache=cache)

    state = 12345

    def lcg():
        nonlocal state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        return state

    plans = [[(p, 0) for p in cs.stimulus_ports]]
    for step in range(1, 6):
        drives = [(cs.clock_port, step % 2)]
        for p in cs.stimulus_ports:
            if p != cs.clock_port and lcg() % 3 == 0:
                drives.append((p, lcg() % 2))
        plans.append(drives)

    for drives in plans:
        for net, value in drives:
            ref.drive(net, value)
            vec.drive(net, value)
        ref.settle(max_events=5_000_000)
        vec.settle(max_events=5_000_000)
        nets = sorted(flat.nets)
        assert [ref.value(n) for n in nets] == [vec.value(n) for n in nets]
