"""Unit tests for repro.switchsim.vcd."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.switchsim.engine import SwitchSimulator
from repro.switchsim.vcd import export_vcd


def make_sim():
    b = CellBuilder("dut", ports=["a", "y"])
    b.inverter("a", "mid")
    b.inverter("mid", "y")
    return SwitchSimulator(flatten(b.build()))


def test_vcd_structure():
    sim = make_sim()
    sim.step(a=1)
    sim.step(a=0)
    text = export_vcd(sim)
    assert "$timescale 1ns $end" in text
    assert "$enddefinitions $end" in text
    assert "$dumpvars" in text
    # Every changed net declared once.
    assert text.count("$var wire 1") == len(
        {n for _t, n, _v in sim.history})
    # Time markers exist for both steps.
    assert "#0" in text and "#1" in text


def test_vcd_value_changes_in_order():
    sim = make_sim()
    sim.step(a=1)   # y ends 1
    sim.step(a=0)   # y ends 0
    text = export_vcd(sim, nets=["y"])
    y_id = next(line.split()[3] for line in text.splitlines()
                if line.startswith("$var"))
    changes = [line[0] for line in text.splitlines()
               if len(line) >= 2 and line[1:] == y_id and line[0] in "01x"]
    # Initial x from dumpvars, then 1, then 0.
    assert changes[0] == "x"
    assert changes[-2:] == ["1", "0"]


def test_vcd_net_selection_and_validation():
    sim = make_sim()
    sim.step(a=1)
    text = export_vcd(sim, nets=["a", "y"])
    assert text.count("$var wire 1") == 2
    assert "mid" not in text
    with pytest.raises(KeyError):
        export_vcd(sim, nets=["nope"])


def test_vcd_identifier_space():
    from repro.switchsim.vcd import _identifier
    ids = {_identifier(i) for i in range(500)}
    assert len(ids) == 500  # no collisions in a realistic range
