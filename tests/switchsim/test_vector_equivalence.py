"""Vector engine ≡ reference engine over every seed design.

The vector engine's contract (DESIGN.md, "Vector switch-sim engine") is
*bit identity*, not mere equivalence: same ``Logic`` per net, same
driven flags, same history stream in the same order, same settle()
return values, same shared counters, same oscillation behaviour.  This
harness drives both engines with identical seeded-random stimulus
(drives of 0/1/X and releases on every port) across the whole
``repro.designs`` library and checks all of it after every settle.
"""

import random

import pytest

from repro.designs.adders import domino_carry_adder, ripple_carry_adder
from repro.designs.cam import cam_array
from repro.designs.clocktree import clock_tree
from repro.designs.dcvsl import dcvsl_and_or, dcvsl_xor
from repro.designs.latch_zoo import (
    dynamic_latch,
    jamb_latch,
    pulsed_latch,
    sr_nand_latch,
)
from repro.designs.manchester import manchester_carry_chain
from repro.designs.minicore import mini_core
from repro.designs.muxes import pass_mux_tree
from repro.designs.regfile import register_file
from repro.designs.sram import sram_array
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.switchsim import (
    Logic,
    OscillationError,
    PackedSwitchTables,
    SwitchSimulator,
    VectorSwitchSimulator,
)

# Counters both engines must agree on (the vector engine adds its own
# vector_* keys on top; those are not part of the identity contract).
SHARED_COUNTERS = (
    "ccc_evaluations",
    "net_solves",
    "naive_net_solves",
    "settle_calls",
    "solve_count",
    "skip_count",
)

SEED_DESIGNS = {
    "ripple_adder": lambda: ripple_carry_adder(width=2),
    "domino_adder": lambda: domino_carry_adder(width=2),
    "manchester": lambda: manchester_carry_chain(width=3),
    "dcvsl_xor": dcvsl_xor,
    "dcvsl_and_or": dcvsl_and_or,
    "sram": lambda: sram_array(rows=2, cols=2),
    "cam": lambda: cam_array(entries=2, width=2),
    "regfile": lambda: register_file(entries=2, width=2),
    "mux_tree": lambda: pass_mux_tree(depth=2),
    "clock_tree": lambda: clock_tree(levels=2, branching=2)[0],
    "dynamic_latch": dynamic_latch,
    "jamb_latch": jamb_latch,
    "pulsed_latch": pulsed_latch,
    "sr_nand_latch": sr_nand_latch,
    "minicore": lambda: mini_core(width=2, entries=2).cell,
}


def _assert_lockstep(ref, vec, flat, context):
    for name in sorted(flat.nets):
        rs = ref.state[name]
        vs = vec.state[name]
        assert rs.value is vs.value, (context, name, rs, vs)
        assert rs.driven == vs.driven, (context, name, rs, vs)


def _random_stimulus_run(flat, seed, steps=40):
    ref = SwitchSimulator(flat)
    vec = SwitchSimulator(flat, engine="vector")
    assert isinstance(vec, VectorSwitchSimulator)
    ports = sorted(p for p in flat.ports if p not in ("vdd", "gnd"))
    assert ports, "design has no drivable ports"
    rng = random.Random(seed)
    for step in range(steps):
        net = rng.choice(ports)
        roll = rng.random()
        if roll < 0.15:
            ref.release(net)
            vec.release(net)
        else:
            value = rng.choice((0, 1, 0, 1, Logic.X))
            ref.drive(net, value)
            vec.drive(net, value)
        assert ref.settle() == vec.settle(), step
        _assert_lockstep(ref, vec, flat, step)
    assert ref.history == vec.history
    for key in SHARED_COUNTERS:
        assert ref.counters[key] == vec.counters[key], key
    # Incremental accounting must add up identically in both engines.
    for sim in (ref, vec):
        assert (sim.counters["solve_count"] + sim.counters["skip_count"]
                == sim.counters["naive_net_solves"])


@pytest.mark.parametrize("name", sorted(SEED_DESIGNS))
def test_vector_matches_reference_on_seed_design(name):
    flat = flatten(SEED_DESIGNS[name]())
    for seed in (1, 2):
        _random_stimulus_run(flat, seed=hash((name, seed)) & 0xFFFF)


@pytest.mark.parametrize("name", ["domino_adder", "sram", "minicore"])
def test_vector_matches_reference_exhaustive_mode(name):
    """incremental=False (the cross-check mode) must also be identical."""
    flat = flatten(SEED_DESIGNS[name]())
    ref = SwitchSimulator(flat, incremental=False)
    vec = SwitchSimulator(flat, incremental=False, engine="vector")
    ports = sorted(p for p in flat.ports if p not in ("vdd", "gnd"))
    rng = random.Random(7)
    for step in range(15):
        net = rng.choice(ports)
        value = rng.choice((0, 1, Logic.X))
        ref.drive(net, value)
        vec.drive(net, value)
        assert ref.settle() == vec.settle()
        _assert_lockstep(ref, vec, flat, step)
    assert ref.history == vec.history
    for key in SHARED_COUNTERS:
        assert ref.counters[key] == vec.counters[key], key
    # Exhaustive mode never skips.
    assert vec.counters["skip_count"] == 0


def test_vector_oscillation_detection_matches():
    """A ring oscillator must raise in both engines at the same budget."""
    b = CellBuilder("ring", ports=["en"])
    b.nand(["en", "r2"], "r0")
    b.inverter("r0", "r1")
    b.inverter("r1", "r2")
    flat = flatten(b.build())
    ref = SwitchSimulator(flat)
    vec = SwitchSimulator(flat, engine="vector")
    for sim in (ref, vec):
        sim.drive("en", 0)  # settles: r0=1, r1=0, r2=1
        sim.settle()
    for sim in (ref, vec):
        sim.drive("en", 1)  # closes the loop: never settles
    with pytest.raises(OscillationError):
        ref.settle(max_events=200)
    with pytest.raises(OscillationError):
        vec.settle(max_events=200)
    assert ref.counters["net_solves"] == vec.counters["net_solves"]
    assert ref.history == vec.history


def test_engine_dispatch():
    flat = flatten(SEED_DESIGNS["dcvsl_xor"]())
    ref = SwitchSimulator(flat)
    vec = SwitchSimulator(flat, engine="vector")
    assert type(ref) is SwitchSimulator
    assert type(vec) is VectorSwitchSimulator
    assert isinstance(vec, SwitchSimulator)
    with pytest.raises(ValueError, match="unknown switch-sim engine"):
        SwitchSimulator(flat, engine="gpu")


def test_prebuilt_tables_are_shareable_and_fingerprinted():
    flat = flatten(SEED_DESIGNS["sram"]())
    tables = PackedSwitchTables.build(flat, l_min_um=0.35)
    a = VectorSwitchSimulator(flat, tables=tables)
    b = VectorSwitchSimulator(flat, tables=tables)
    assert a.tables is b.tables
    a.drive("wl0", 1)
    a.settle()
    # Sharing tables must not share dynamic state.
    assert b.value("wl0") is Logic.X
    # A geometry mutation (what a sizing loop does) must be caught;
    # the fingerprint memo is epoch-keyed, so the edit is declared.
    flat.transistors[0].w_um *= 2.0
    flat.note_mutation()
    assert not tables.matches(flat, 0.35)
    with pytest.raises(ValueError, match="stale"):
        VectorSwitchSimulator(flat, tables=tables)
