"""Unit tests for repro.switchsim.engine."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.switchsim.engine import OscillationError, SwitchSimulator
from repro.switchsim.values import Logic


def make_sim(build, ports):
    b = CellBuilder("dut", ports=ports)
    build(b)
    return SwitchSimulator(flatten(b.build()))


def test_inverter():
    sim = make_sim(lambda b: b.inverter("a", "y"), ["a", "y"])
    sim.step(a=1)
    assert sim.value("y") is Logic.ZERO
    sim.step(a=0)
    assert sim.value("y") is Logic.ONE


def test_unknown_input_gives_unknown_output():
    sim = make_sim(lambda b: b.inverter("a", "y"), ["a", "y"])
    sim.settle()
    assert sim.value("y") is Logic.X


def test_nand_truth_table():
    sim = make_sim(lambda b: b.nand(["a", "b"], "y"), ["a", "b", "y"])
    for a, b_, y in [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]:
        sim.step(a=a, b=b_)
        assert sim.value("y") is Logic.from_int(y), f"nand({a},{b_})"


def test_combinational_chain():
    def build(b):
        b.nand(["a", "b"], "n1")
        b.inverter("n1", "y")  # y = a AND b

    sim = make_sim(build, ["a", "b", "y"])
    sim.step(a=1, b=1)
    assert sim.value("y") is Logic.ONE
    sim.step(b=0)
    assert sim.value("y") is Logic.ZERO


def test_transmission_gate_pass_and_hold():
    def build(b):
        b.transmission_gate("d", "store", "en", "en_b")
        b.inverter("store", "q")

    sim = make_sim(build, ["d", "en", "en_b", "q"])
    sim.step(d=1, en=1, en_b=0)
    assert sim.value("store") is Logic.ONE
    assert sim.value("q") is Logic.ZERO
    assert sim.is_driven("store")
    # Close the gate: store retains charge, q holds.
    sim.step(en=0, en_b=1)
    assert sim.value("store") is Logic.ONE
    assert not sim.is_driven("store")
    # Change d with the gate closed: nothing moves.
    sim.step(d=0)
    assert sim.value("store") is Logic.ONE
    assert sim.value("q") is Logic.ZERO
    # Reopen: new value flows through.
    sim.step(en=1, en_b=0)
    assert sim.value("store") is Logic.ZERO
    assert sim.value("q") is Logic.ONE


def test_domino_precharge_evaluate_cycle():
    sim = make_sim(
        lambda b: b.domino_gate("clk", ["a", "b"], "y", dyn_net="dyn"),
        ["clk", "a", "b", "y"],
    )
    # Precharge phase.
    sim.step(clk=0, a=0, b=0)
    assert sim.value("dyn") is Logic.ONE
    assert sim.value("y") is Logic.ZERO
    # Evaluate with inputs low: keeper holds the dynamic node high.
    sim.step(clk=1)
    assert sim.value("dyn") is Logic.ONE
    assert sim.value("y") is Logic.ZERO
    # Evaluate with both inputs high: node discharges through the stack,
    # winning the fight against the weak keeper.
    sim.step(a=1, b=1)
    assert sim.value("dyn") is Logic.ZERO
    assert sim.value("y") is Logic.ONE
    # Back to precharge.
    sim.step(clk=0)
    assert sim.value("dyn") is Logic.ONE
    assert sim.value("y") is Logic.ZERO


def test_keeperless_domino_holds_charge_dynamically():
    sim = make_sim(
        lambda b: b.domino_gate("clk", ["a"], "y", keeper=False, dyn_net="dyn"),
        ["clk", "a", "y"],
    )
    sim.step(clk=0, a=0)
    assert sim.value("dyn") is Logic.ONE
    sim.step(clk=1)  # evaluate, input low: no path anywhere
    assert sim.value("dyn") is Logic.ONE
    assert not sim.is_driven("dyn")


def test_sram_cell_write_and_hold():
    def build(b):
        b.sram_cell("bl", "bl_b", "wl")

    b = CellBuilder("dut", ports=["bl", "bl_b", "wl"])
    s, s_b = b.sram_cell("bl", "bl_b", "wl")
    sim = SwitchSimulator(flatten(b.build()))

    # Differential write of 0.
    sim.step(bl=0, bl_b=1, wl=1)
    assert sim.value(s) is Logic.ZERO
    assert sim.value(s_b) is Logic.ONE
    # Deselect; release the bitlines entirely: the cell holds.
    sim.step(wl=0)
    sim.release("bl")
    sim.release("bl_b")
    sim.settle()
    assert sim.value(s) is Logic.ZERO
    assert sim.value(s_b) is Logic.ONE
    # Write the opposite value.
    sim.step(bl=1, bl_b=0, wl=1)
    assert sim.value(s) is Logic.ONE
    assert sim.value(s_b) is Logic.ZERO


def test_sram_read_through_released_bitline():
    b = CellBuilder("dut", ports=["bl", "bl_b", "wl"])
    s, s_b = b.sram_cell("bl", "bl_b", "wl")
    sim = SwitchSimulator(flatten(b.build()))
    sim.step(bl=0, bl_b=1, wl=1)   # write 0
    sim.step(wl=0)
    sim.drive("bl", 1)             # precharge both bitlines
    sim.drive("bl_b", 1)
    sim.settle()
    sim.release("bl")
    sim.release("bl_b")
    sim.step(wl=1)                 # read
    assert sim.value("bl") is Logic.ZERO      # cell pulls its side low
    assert sim.value(s) is Logic.ZERO         # without losing its state


def test_transparent_latch_full_behaviour():
    """The template latch is inverting: q = NOT(stored d)."""
    b = CellBuilder("dut", ports=["d", "q", "clk", "clk_b"])
    b.transparent_latch("d", "q", "clk", "clk_b")
    sim = SwitchSimulator(flatten(b.build()))
    # Transparent: q follows NOT d.
    sim.step(d=1, clk=1, clk_b=0)
    assert sim.value("q") is Logic.ZERO
    sim.step(d=0)
    assert sim.value("q") is Logic.ONE
    # Opaque: q holds through d changes, restored by feedback.
    sim.step(clk=0, clk_b=1)
    sim.step(d=1)
    assert sim.value("q") is Logic.ONE
    # Transparent again: the new d=1 flows through.
    sim.step(clk=1, clk_b=0)
    assert sim.value("q") is Logic.ZERO


def test_ratioed_pseudo_nmos():
    def build(b):
        b.pmos("gnd", "y", "vdd", w=0.5)   # weak always-on load
        b.nmos("a", "y", "gnd", w=6.0)     # strong pull-down

    sim = make_sim(build, ["a", "y"])
    sim.step(a=0)
    assert sim.value("y") is Logic.ONE
    sim.step(a=1)
    assert sim.value("y") is Logic.ZERO  # ratio fight resolves low


def test_balanced_fight_goes_x():
    def build(b):
        b.pmos("gnd", "y", "vdd", w=2.0)   # g ~ 0.4 * 5.7 = 2.3
        b.nmos("a", "y", "gnd", w=1.0)     # g ~ 2.9: too close to dominate

    sim = make_sim(build, ["a", "y"])
    sim.step(a=1)
    assert sim.value("y") is Logic.X


def test_ring_oscillator_raises():
    def build(b):
        b.inverter("a", "b")
        b.inverter("b", "c")
        b.inverter("c", "a")

    b = CellBuilder("ring", ports=[])
    build(b)
    sim = SwitchSimulator(flatten(b.build()))
    # Kick one node so definite values circulate.
    sim.drive("a", 1)
    sim.settle()
    sim.release("a")
    with pytest.raises(OscillationError):
        sim.settle(max_events=500)


def test_x_propagates_pessimistically_through_fight():
    """X on a gate that might open a disturbing path makes the node X."""
    def build(b):
        b.transmission_gate("d", "y", "en", "en_b")
        b.inverter("y", "q")

    sim = make_sim(build, ["d", "en", "en_b", "q"])
    sim.step(d=0, en=1, en_b=0)
    assert sim.value("y") is Logic.ZERO
    # Enable goes X while d is 1: y might now be written with 1 -> X.
    sim.step(d=1, en=Logic.X, en_b=Logic.X)
    assert sim.value("y") is Logic.X


def test_history_records_changes():
    sim = make_sim(lambda b: b.inverter("a", "y"), ["a", "y"])
    sim.step(a=1)
    nets_changed = {net for _t, net, _v in sim.history}
    assert "a" in nets_changed and "y" in nets_changed
