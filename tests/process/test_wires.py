"""Unit tests for repro.process.wires."""

import pytest

from repro.process.wires import WireLayer, WireStack, aluminium_stack


@pytest.fixture
def m1():
    return aluminium_stack(0.35)["metal1"]


def test_stack_layer_lookup():
    stack = aluminium_stack(0.35, n_layers=3)
    assert stack.names() == ["metal1", "metal2", "metal3"]
    assert isinstance(stack["metal2"], WireLayer)
    with pytest.raises(KeyError):
        stack["poly"]


def test_resistance_scales_with_geometry(m1):
    r = m1.resistance(length_um=100.0, width_um=1.0)
    assert r == pytest.approx(m1.sheet_res_ohm_sq * 100.0)
    assert m1.resistance(100.0, 2.0) == pytest.approx(r / 2)
    with pytest.raises(ValueError):
        m1.resistance(100.0, 0.0)


def test_ground_capacitance_positive_and_linear(m1):
    c1 = m1.ground_capacitance(length_um=50.0, width_um=1.0)
    c2 = m1.ground_capacitance(length_um=100.0, width_um=1.0)
    assert c1 > 0
    assert c2 == pytest.approx(2 * c1)


def test_coupling_capacitance_shrinks_with_spacing(m1):
    tight = m1.coupling_capacitance(parallel_run_um=100.0, spacing_um=m1.min_space_um)
    loose = m1.coupling_capacitance(parallel_run_um=100.0, spacing_um=4 * m1.min_space_um)
    assert tight == pytest.approx(4 * loose)
    with pytest.raises(ValueError):
        m1.coupling_capacitance(100.0, spacing_um=0.0)


def test_upper_layers_are_lower_resistance():
    stack = aluminium_stack(0.35)
    assert stack["metal3"].sheet_res_ohm_sq < stack["metal1"].sheet_res_ohm_sq


def test_wire_widths_scale_with_node():
    coarse = aluminium_stack(0.75)["metal1"]
    fine = aluminium_stack(0.35)["metal1"]
    assert coarse.min_width_um > fine.min_width_um
