"""Unit tests for repro.process.mosfet."""

import math

import pytest

from repro.process.corners import Corner, corner_spec
from repro.process.mosfet import MosfetModel, MosfetParams
from repro.process.technology import strongarm_technology


@pytest.fixture
def nmos():
    tech = strongarm_technology()
    return MosfetModel(tech.nmos, corner_spec(Corner.TYPICAL))


@pytest.fixture
def pmos():
    tech = strongarm_technology()
    return MosfetModel(tech.pmos, corner_spec(Corner.TYPICAL))


def test_polarity_validation():
    with pytest.raises(ValueError):
        MosfetParams(
            polarity="cmos", vth0_v=0.3, kp_a_per_v2=1e-4, lambda_per_v=0.05,
            cox_f_per_um2=3e-15, cov_f_per_um=3e-16, cj_f_per_um2=6e-16,
            i0_leak_a=1e-7, subthreshold_n=1.5, vth_rolloff_v=0.1,
            rolloff_lambda_um=0.065, l_min_um=0.35, diff_width_um=0.7,
        )


def test_vth_at_min_length_equals_vth0(nmos):
    assert nmos.vth() == pytest.approx(nmos.params.vth0_v, abs=1e-12)


def test_vth_increases_with_channel_lengthening(nmos):
    l_min = nmos.params.l_min_um
    v0 = nmos.vth(l_min)
    v45 = nmos.vth(l_min + 0.045)
    v90 = nmos.vth(l_min + 0.090)
    assert v0 < v45 < v90
    # Roll-off saturates toward the long-channel value.
    assert v90 < nmos.params.vth0_v + nmos.params.vth_rolloff_v


def test_vth_below_minimum_length_rejected(nmos):
    with pytest.raises(ValueError):
        nmos.vth(nmos.params.l_min_um / 2)


def test_ids_zero_gate_is_leakage_only(nmos):
    i = nmos.ids(0.0, 1.5, w_um=2.0)
    assert 0 < i < 1e-6  # tiny subthreshold current, not a hard zero


def test_ids_regions_ordering(nmos):
    """Saturation current exceeds triode at small Vds; both positive."""
    i_triode = nmos.ids(1.5, 0.1, w_um=2.0)
    i_sat = nmos.ids(1.5, 1.5, w_um=2.0)
    assert 0 < i_triode < i_sat


def test_ids_scales_linearly_with_width(nmos):
    i1 = nmos.ids(1.5, 1.5, w_um=1.0)
    i4 = nmos.ids(1.5, 1.5, w_um=4.0)
    assert i4 == pytest.approx(4 * i1, rel=1e-9)


def test_ids_reverse_vds_antisymmetric(nmos):
    """Drain/source swap: ids(vgs, -vds) mirrors the swapped device."""
    fwd = nmos.ids(1.5, 0.4, w_um=2.0)
    rev = nmos.ids(1.9, -0.4, w_um=2.0)
    assert rev == pytest.approx(-fwd, rel=1e-9)


def test_ids_at_nmos_node_voltage_convention(nmos):
    """ids_at with vd > vs matches overdrive-convention ids."""
    direct = nmos.ids(1.5, 0.7, w_um=2.0)
    via_nodes = nmos.ids_at(vg=1.5, vd=0.7, vs=0.0, w_um=2.0)
    assert via_nodes == pytest.approx(direct, rel=1e-12)


def test_ids_at_pmos_pulls_up(pmos):
    """PMOS with gate low and source at VDD conducts toward drain."""
    i = pmos.ids_at(vg=0.0, vd=0.5, vs=1.5, w_um=4.0)
    assert i > 1e-5


def test_leakage_drops_exponentially_with_lengthening(nmos):
    l_min = nmos.params.l_min_um
    base = nmos.leakage(1.5, w_um=10.0, l_um=l_min)
    l45 = nmos.leakage(1.5, w_um=10.0, l_um=l_min + 0.045)
    l90 = nmos.leakage(1.5, w_um=10.0, l_um=l_min + 0.090)
    assert base > 2.0 * l45  # +0.045 um buys well over 2x
    assert l45 > 1.5 * l90


def test_leakage_worse_at_fast_corner():
    tech = strongarm_technology()
    typ = tech.nmos_model(Corner.TYPICAL).leakage(1.5, w_um=10.0)
    fast = tech.nmos_model(Corner.FAST).leakage(1.5, w_um=10.0)
    assert fast > 3.0 * typ


def test_gate_capacitance_components(nmos):
    c = nmos.gate_capacitance(w_um=2.0)
    p = nmos.params
    expected = p.cox_f_per_um2 * 2.0 * p.l_min_um + 2 * p.cov_f_per_um * 2.0
    assert c == pytest.approx(expected, rel=1e-9)
    assert c > 0


def test_on_resistance_decreases_with_width(nmos):
    r2 = nmos.on_resistance(1.5, w_um=2.0)
    r8 = nmos.on_resistance(1.5, w_um=8.0)
    assert r8 == pytest.approx(r2 / 4, rel=1e-6)


def test_on_resistance_infinite_when_off():
    tech = strongarm_technology()
    model = tech.nmos_model()
    # Below threshold "vdd": no strong conduction.
    assert model.on_resistance(0.0, w_um=2.0) == math.inf


def test_subthreshold_continuity_at_threshold(nmos):
    """Current is continuous in order of magnitude across Vgs = Vth."""
    vth = nmos.vth()
    below = nmos.ids(vth - 1e-6, 1.5, w_um=2.0)
    above = nmos.ids(vth + 1e-3, 1.5, w_um=2.0)
    assert above > below
    assert above / below < 50  # no discontinuous jump
