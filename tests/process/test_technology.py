"""Unit tests for repro.process.technology."""

import pytest

from repro.process.corners import Corner
from repro.process.technology import (
    alpha_21064_technology,
    alpha_21164_technology,
    strongarm_technology,
)


def test_alpha_preset_basics():
    tech = alpha_21064_technology()
    assert tech.l_min_um == 0.75
    assert tech.vdd_v == 3.45
    assert tech.nmos.polarity == "nmos"
    assert tech.pmos.polarity == "pmos"


def test_strongarm_preset_is_low_voltage_low_threshold():
    alpha = alpha_21064_technology()
    sarm = strongarm_technology()
    assert sarm.vdd_v < alpha.vdd_v / 2
    assert sarm.nmos.vth0_v < alpha.nmos.vth0_v / 2


def test_vdd_at_corner_applies_tolerance():
    tech = strongarm_technology()
    assert tech.vdd_at(Corner.FAST) > tech.vdd_v > tech.vdd_at(Corner.SLOW)


def test_mosfet_factory_polarity_dispatch():
    tech = strongarm_technology()
    assert tech.mosfet("nmos").params.polarity == "nmos"
    assert tech.mosfet("pmos").params.polarity == "pmos"
    with pytest.raises(ValueError):
        tech.mosfet("bjt")


def test_scaled_technology_shrink():
    t075 = alpha_21064_technology()
    t050 = alpha_21164_technology()
    assert t050.l_min_um == 0.50
    # Shrink: thinner oxide -> larger Cox and kp.
    assert t050.nmos.cox_f_per_um2 > t075.nmos.cox_f_per_um2
    assert t050.nmos.kp_a_per_v2 > t075.nmos.kp_a_per_v2
    assert t050.tox_nm < t075.tox_nm


def test_oxide_field_reasonable():
    tech = strongarm_technology()
    field = tech.oxide_field_mv_per_cm()
    assert 1.0 < field < tech.tddb_max_field_mv_per_cm


def test_strongarm_leakage_knob_is_live():
    """The paper's section-3 story: minimum-length low-Vt devices at the
    FAST corner leak orders of magnitude more than the ALPHA-era process;
    channel lengthening claws back a large factor."""
    sarm = strongarm_technology()
    alpha = alpha_21064_technology()
    sarm_n = sarm.nmos_model(Corner.FAST)
    alpha_n = alpha.nmos_model(Corner.FAST)
    leak_sarm = sarm_n.leakage(sarm.vdd_at(Corner.FAST), w_um=10.0)
    leak_alpha = alpha_n.leakage(alpha.vdd_at(Corner.FAST), w_um=10.0)
    assert leak_sarm > 100 * leak_alpha
    lengthened = sarm_n.leakage(sarm.vdd_at(Corner.FAST), w_um=10.0,
                                l_um=sarm.l_min_um + 0.045)
    assert leak_sarm / lengthened > 2.0


def test_drive_current_order_of_magnitude():
    """A 10 um StrongARM NMOS should source a few mA at full overdrive --
    the right ballpark for a 160 MHz, 1.5 V design."""
    sarm = strongarm_technology()
    i = sarm.nmos_model().saturation_current(1.5, w_um=10.0)
    assert 1e-3 < i < 2e-2


def test_wire_stack_present():
    tech = strongarm_technology()
    assert "metal1" in tech.wires
    assert "metal3" in tech.wires
    assert "metal9" not in tech.wires
