"""Unit tests for repro.process.corners."""

import pytest

from repro.process.corners import PROCESS_CORNERS, Corner, corner_spec


def test_three_corners_defined():
    assert set(PROCESS_CORNERS) == {Corner.FAST, Corner.TYPICAL, Corner.SLOW}


def test_typical_is_identity():
    spec = corner_spec(Corner.TYPICAL)
    assert spec.drive_factor == 1.0
    assert spec.vth_shift_v == 0.0
    assert spec.cap_factor == 1.0
    assert spec.res_factor == 1.0
    assert spec.vdd_factor == 1.0


def test_fast_is_stronger_and_leakier_than_slow():
    fast = corner_spec(Corner.FAST)
    slow = corner_spec(Corner.SLOW)
    assert fast.drive_factor > 1.0 > slow.drive_factor
    assert fast.vth_shift_v < 0.0 < slow.vth_shift_v
    assert fast.cap_factor < slow.cap_factor
    assert fast.res_factor < slow.res_factor


def test_thermal_voltage_room_temperature():
    vt = corner_spec(Corner.TYPICAL).thermal_voltage()
    assert vt == pytest.approx(0.0257, rel=0.01)


def test_thermal_voltage_grows_with_temperature():
    assert (corner_spec(Corner.FAST).thermal_voltage()
            > corner_spec(Corner.TYPICAL).thermal_voltage())


def test_corner_spec_lookup_matches_dict():
    for corner in Corner:
        assert corner_spec(corner) is PROCESS_CORNERS[corner]
