"""End-to-end service tests over the real wire protocol.

One module-scoped service (2 fleet workers, private store) backs the
whole file; tests that need isolation (the cross-process cache test,
the backpressure test) use their own tenants or their own service so
the shared counters stay interpretable as deltas.

The two pinned contracts from the service design:

* the canonical JSON fetched through the service is byte-identical to
  a direct single-process ``CbvCampaign.run`` of the same bundle;
* a duplicate submission is answered from the verdict cache (or
  coalesced onto the in-flight campaign) with zero battery executions.
"""

import multiprocessing
import threading

import pytest

from repro.core.campaign import CbvCampaign
from repro.core.report import report_to_json
from repro.fleet.jobs import FleetConfig, resolve_bundle
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    variant_ref,
)
from repro.service.suite import VARIANT_COUNT, variant_bundle

ALPHA_REF = "repro.fleet.suite:alpha_slice"


def failing_bundle():
    """Resolves in the service process, raises inside fleet workers."""
    if multiprocessing.current_process().name != "MainProcess":
        raise RuntimeError("injected worker failure")
    return variant_bundle(VARIANT_COUNT - 1)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("service-store"))


@pytest.fixture(scope="module")
def service(store_dir):
    handle = ServiceThread(ServiceConfig(
        workers=2, max_inflight=4,
        fleet=FleetConfig(store_dir=store_dir)))
    handle.start()
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.config.host, service.service.port)


@pytest.fixture(scope="module")
def alpha_campaign(client):
    """alpha_slice submitted once; later tests reuse the sealed id."""
    sub = client.submit(ALPHA_REF, tenant="seed", name="alpha_slice")
    assert sub["ok"] and not sub["cached"] and not sub["coalesced"]
    assert client.wait(sub["campaign"]) == "sealed"
    return sub["campaign"]


class TestByteIdentity:
    def test_canonical_report_matches_direct_run(self, client,
                                                 alpha_campaign):
        via_service = client.report(alpha_campaign, canonical=True)
        direct = report_to_json(
            CbvCampaign(resolve_bundle(ALPHA_REF)).run(), canonical=True)
        assert via_service == direct

    def test_full_report_round_trips(self, client, alpha_campaign):
        report = client.report(alpha_campaign, canonical=False)
        assert report["design"] == "alpha_slice"
        assert report["stages"]
        assert report["trace"]


class TestVerdictCache:
    def test_resubmission_is_a_cache_hit(self, client, alpha_campaign):
        sub = client.submit(ALPHA_REF, tenant="another-team")
        assert sub["cached"] is True
        assert sub["state"] == "sealed"
        assert sub["campaign"] != alpha_campaign

    def test_cache_hit_is_byte_identical(self, client, alpha_campaign):
        sub = client.submit(ALPHA_REF, tenant="third-team")
        assert sub["cached"]
        assert (client.report(sub["campaign"], canonical=True)
                == client.report(alpha_campaign, canonical=True))

    def test_cache_crosses_service_processes_with_zero_executions(
            self, client, alpha_campaign, store_dir):
        """A *fresh* service on the same store answers from the cache
        without launching anything -- the cross-user contract."""
        other = ServiceThread(ServiceConfig(
            workers=1, fleet=FleetConfig(store_dir=store_dir)))
        try:
            host, port = other.start()
            fresh = ServiceClient(host, port)
            sub = fresh.submit(ALPHA_REF, tenant="cold-start")
            assert sub["cached"] is True
            status = fresh.status()
            # Zero battery executions: this service never handed
            # anything to its pool.
            assert status["metrics"]["launched"] == 0
            assert status["metrics"]["cache_hits"] == 1
            assert (fresh.report(sub["campaign"], canonical=True)
                    == client.report(alpha_campaign, canonical=True))
        finally:
            other.stop()


class TestCoalescing:
    def test_concurrent_duplicates_run_one_campaign(self, client):
        """N concurrent submissions of one new fingerprint yield one
        campaign id and exactly one launch."""
        before = client.status()["metrics"]
        ref = variant_ref(0)
        results: list = [None] * 6
        barrier = threading.Barrier(len(results))

        def submit(i):
            barrier.wait()
            results[i] = client.submit(ref, tenant=f"racer-{i}")

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(len(results))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        ids = {r["campaign"] for r in results}
        assert len(ids) == 1, f"duplicates ran {len(ids)} campaigns"
        campaign = ids.pop()
        originals = [r for r in results if not r["coalesced"]]
        assert len(originals) == 1
        assert not any(r["cached"] for r in results)
        assert client.wait(campaign) == "sealed"
        after = client.status()["metrics"]
        assert after["launched"] - before["launched"] == 1
        assert after["coalesced"] - before["coalesced"] == len(results) - 1

    def test_late_duplicate_after_seal_hits_cache(self, client):
        sub = client.submit(variant_ref(0), tenant="latecomer")
        # The campaign sealed above, so this is a cache hit (or, in a
        # seal-write race, a coalesce onto the sealed record) -- either
        # way zero new battery work.
        assert sub["cached"] or sub["coalesced"]


class TestBackpressure:
    def test_queue_limit_rejects_429_style(self, client):
        client.configure_tenant("bp", max_inflight=1, max_queued=1)
        first = client.submit(variant_ref(1), tenant="bp")
        second = client.submit(variant_ref(2), tenant="bp")
        assert not first["coalesced"] and not second["coalesced"]
        # first holds the tenant's single in-flight slot, second its
        # single queue slot; a third submission must bounce.
        with pytest.raises(ServiceError) as excinfo:
            client.submit(variant_ref(3), tenant="bp")
        assert excinfo.value.code == "backpressure"
        assert "retry later" in excinfo.value.detail
        # The rejected design was never admitted; the earlier two
        # complete normally.
        assert client.wait(first["campaign"]) == "sealed"
        assert client.wait(second["campaign"]) == "sealed"
        snap = client.status()["tenants"]["bp"]
        assert snap["rejected"] == 1
        assert snap["granted"] == 2


class TestEventStream:
    def test_stream_shape_and_order(self, client, alpha_campaign):
        events = list(client.events(alpha_campaign, follow=False))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "service.submitted"
        assert "service.admitted" in kinds
        assert any(k == "service.progress" for k in kinds)
        # The campaign's own replayed events ride in the stream.
        assert "campaign_start" in kinds
        assert "battery_end" in kinds
        assert kinds[-1] == "service.sealed"
        # seq is the cursor: contiguous from 0 on a stream trace.
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(e["worker"] == "service" for e in events)

    def test_cursor_resumes_mid_stream(self, client, alpha_campaign):
        full = list(client.events(alpha_campaign, follow=False))
        end_cursor = client.last_end["next"]
        assert end_cursor == len(full)
        cut = len(full) // 2
        tail = list(client.events(alpha_campaign, since=cut, follow=False))
        assert tail == full[cut:]
        # Resuming at the end yields nothing new.
        assert list(client.events(alpha_campaign, since=end_cursor,
                                  follow=False)) == []

    def test_follow_streams_live_to_seal(self, client):
        sub = client.submit(variant_ref(4), tenant="streamer")
        events = list(client.events(sub["campaign"], follow=True))
        assert events[-1]["event"] == "service.sealed"
        assert client.last_end["state"] == "sealed"


class TestFailurePath:
    def test_fleet_abandonment_surfaces_as_campaign_failed(self, client):
        sub = client.submit(
            "tests.service.test_service:failing_bundle", tenant="doomed")
        assert not sub["cached"]
        assert client.wait(sub["campaign"]) == "failed"
        with pytest.raises(ServiceError) as excinfo:
            client.report(sub["campaign"])
        assert excinfo.value.code == "campaign_failed"
        assert "retries" in excinfo.value.detail
        events = list(client.events(sub["campaign"], follow=False))
        assert events[-1]["event"] == "service.failed"

    def test_unresolvable_ref_is_bad_request(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("repro.no_such_module:nothing", tenant="typo")
        assert excinfo.value.code == "bad_request"

    def test_unknown_campaign(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.report("c999999", wait=False)
        assert excinfo.value.code == "unknown_campaign"

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call({"op": "frobnicate"})
        assert excinfo.value.code == "unknown_op"


class TestObservability:
    def test_status_carries_store_stats(self, client, alpha_campaign):
        status = client.status()
        assert status["store"]["entries"] > 0
        assert status["store"]["total_bytes"] > 0
        assert status["store"]["degraded"] is False
        assert status["verdict_cache"]["verdict_seals"] >= 1
        assert status["campaigns"]["sealed"] >= 1

    def test_prometheus_exposition(self, client, alpha_campaign):
        text = client.metrics_text()
        assert "# TYPE repro_service_submissions counter" in text
        assert "repro_service_cache_hits" in text
        assert 'repro_service_tenant_queue_depth{tenant="seed"}' in text
        assert 'repro_service_tenant_granted{tenant="seed"}' in text
        assert "repro_service_verdict_hits" in text
        assert "# TYPE repro_service_store_entries gauge" in text

    def test_configure_tenant_round_trips(self, client):
        body = client.configure_tenant("tuned", weight=2.5, max_queued=7)
        assert body["config"]["weight"] == 2.5
        assert body["config"]["max_queued"] == 7
