"""Unit tests for the weighted-DRR tenant scheduler."""

import pytest

from repro.service.tenants import Backpressure, TenantScheduler


def drain(sched, grants):
    """Take ``grants`` grants, releasing each immediately (pure DRR)."""
    out = []
    for _ in range(grants):
        grant = sched.next()
        if grant is None:
            break
        tenant, _item = grant
        sched.release(tenant)
        out.append(tenant)
    return out


class TestDeficitRoundRobin:
    def test_weighted_grant_ratio_converges_on_weights(self):
        sched = TenantScheduler(default_max_inflight=10 ** 6,
                                default_max_queued=10 ** 6)
        sched.configure("heavy", weight=4.0)
        sched.configure("light", weight=1.0)
        for i in range(500):
            sched.submit("heavy", f"h{i}")
            sched.submit("light", f"l{i}")
        grants = drain(sched, 500)
        heavy = grants.count("heavy")
        light = grants.count("light")
        assert heavy + light == 500
        # 4:1 weights -> 4:1 grants, exactly, over a saturated window.
        assert light == 100
        assert heavy == 400

    def test_equal_weights_alternate(self):
        sched = TenantScheduler(default_max_inflight=10 ** 6)
        for i in range(10):
            sched.submit("a", i)
            sched.submit("b", i)
        grants = drain(sched, 20)
        assert grants.count("a") == 10
        assert grants.count("b") == 10
        # No starvation runs: never more than one consecutive grant.
        for first, second in zip(grants, grants[1:]):
            assert first != second

    def test_single_tenant_gets_everything(self):
        sched = TenantScheduler(default_max_inflight=10 ** 6)
        for i in range(5):
            sched.submit("only", i)
        assert drain(sched, 10) == ["only"] * 5

    def test_fifo_within_tenant(self):
        sched = TenantScheduler(default_max_inflight=10 ** 6)
        for i in range(5):
            sched.submit("t", i)
        items = []
        while True:
            grant = sched.next()
            if grant is None:
                break
            sched.release("t")
            items.append(grant[1])
        assert items == [0, 1, 2, 3, 4]

    def test_deficit_resets_when_queue_empties(self):
        """An idle tenant cannot bank credit for a later burst."""
        sched = TenantScheduler(default_max_inflight=10 ** 6,
                                default_max_queued=10 ** 6)
        sched.configure("a", weight=1.0)
        sched.configure("b", weight=10.0)
        # b drains alone for a while -- no credit may accrue to a.
        for i in range(20):
            sched.submit("b", i)
        assert drain(sched, 20).count("b") == 20
        assert sched.snapshot()["b"]["queue_depth"] == 0
        # Now both saturate: the ratio must still be 10:1, not skewed
        # by banked deficit from the solo interval.
        for i in range(110):
            sched.submit("a", i)
            sched.submit("b", i)
        grants = drain(sched, 110)
        assert grants.count("a") == 10
        assert grants.count("b") == 100


class TestCapsAndBackpressure:
    def test_backpressure_at_queue_limit(self):
        sched = TenantScheduler(default_max_queued=2)
        sched.submit("t", 1)
        sched.submit("t", 2)
        with pytest.raises(Backpressure) as excinfo:
            sched.submit("t", 3)
        assert excinfo.value.tenant == "t"
        assert excinfo.value.limit == 2
        assert sched.snapshot()["t"]["rejected"] == 1
        # Another tenant's queue is unaffected.
        sched.submit("other", 1)

    def test_inflight_cap_blocks_grants_until_release(self):
        sched = TenantScheduler(default_max_inflight=1)
        sched.submit("t", 1)
        sched.submit("t", 2)
        assert sched.next() == ("t", 1)
        assert sched.next() is None  # at the cap
        sched.release("t")
        assert sched.next() == ("t", 2)

    def test_capped_tenant_does_not_block_peers(self):
        sched = TenantScheduler(default_max_inflight=1)
        sched.configure("capped", weight=100.0)
        sched.submit("capped", 1)
        sched.submit("capped", 2)
        sched.submit("peer", 1)
        assert sched.next() == ("capped", 1)
        # capped is at its in-flight limit; the peer still drains even
        # though its weight is 100x smaller.
        assert sched.next() == ("peer", 1)

    def test_configure_validation(self):
        sched = TenantScheduler()
        with pytest.raises(ValueError):
            sched.configure("t", weight=0.0)
        with pytest.raises(ValueError):
            sched.configure("t", max_inflight=0)
        with pytest.raises(ValueError):
            sched.configure("t", max_queued=0)

    def test_empty_scheduler_grants_nothing(self):
        sched = TenantScheduler()
        assert sched.next() is None
        sched.release("ghost")  # harmless

    def test_snapshot_counters(self):
        sched = TenantScheduler(default_max_queued=1)
        sched.submit("t", 1)
        with pytest.raises(Backpressure):
            sched.submit("t", 2)
        sched.next()
        snap = sched.snapshot()["t"]
        assert snap["admitted"] == 1
        assert snap["rejected"] == 1
        assert snap["granted"] == 1
        assert snap["inflight"] == 1
        assert snap["queue_depth"] == 0
