"""Unit tests for the JSON-lines wire protocol."""

import pytest

from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE,
    CampaignState,
    decode,
    encode,
    error,
)


class TestFraming:
    def test_encode_one_line_with_newline(self):
        line = encode({"op": "status"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_round_trip(self):
        body = {"op": "submit", "bundle_ref": "m:a", "tenant": "t",
                "nested": {"x": [1, 2.5, None, True]}}
        assert decode(encode(body)) == body

    def test_sorted_keys_are_deterministic(self):
        assert (encode({"b": 1, "a": 2})
                == encode({"a": 2, "b": 1}))

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            decode(b"[1, 2, 3]\n")
        with pytest.raises(ValueError):
            decode(b"not json\n")

    def test_max_line_fits_a_real_report(self):
        # A sealed report serializes to ~10 KB for the seed designs;
        # the limit leaves three orders of magnitude of headroom.
        assert MAX_LINE >= 1024 * 1024


class TestErrors:
    def test_error_body_shape(self):
        body = error("backpressure", "queue full")
        assert body == {"ok": False, "error": "backpressure",
                        "detail": "queue full"}

    def test_error_without_detail_omits_it(self):
        assert error("unknown_campaign") == {"ok": False,
                                             "error": "unknown_campaign"}

    def test_all_codes_render(self):
        for code in ERROR_CODES:
            assert error(code)["error"] == code


class TestCampaignState:
    def test_terminal_states(self):
        assert CampaignState.SEALED.terminal
        assert CampaignState.FAILED.terminal
        assert not CampaignState.QUEUED.terminal
        assert not CampaignState.RUNNING.terminal

    def test_values_are_wire_strings(self):
        assert {s.value for s in CampaignState} == {
            "queued", "running", "sealed", "failed"}
