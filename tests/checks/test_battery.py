"""Unit tests for the section-4.2 check battery."""

import pytest

from repro.checks.base import CheckSettings, Severity
from repro.checks.beta import BetaRatioCheck, DeviceSizeCheck
from repro.checks.charge_share import ChargeShareCheck
from repro.checks.coupling import CouplingCheck
from repro.checks.driver import make_context
from repro.checks.edge_rate import EdgeRateCheck
from repro.checks.electromigration import ElectromigrationCheck
from repro.checks.hot_carrier import HotCarrierCheck, TddbCheck
from repro.checks.latch import LatchCheck
from repro.checks.leakage import DynamicLeakageCheck
from repro.checks.registry import run_battery
from repro.checks.writability import WritabilityCheck
from repro.extraction.caps import Bound
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def ctx_for(tech, build, ports, **kwargs):
    b = CellBuilder("dut", ports=ports)
    build(b)
    return make_context(flatten(b.build()), tech, **kwargs)


def severities(findings, subject):
    return {f.severity for f in findings if f.subject == subject}


# ---- beta / size -----------------------------------------------------------


def test_beta_balanced_inverter_passes(tech):
    ctx = ctx_for(tech, lambda b: b.inverter("a", "y", wn=2.0, wp=6.0), ["a", "y"])
    findings = BetaRatioCheck().run(ctx)
    assert severities(findings, "y") == {Severity.PASS}


def test_beta_skewed_gate_flagged(tech):
    ctx = ctx_for(tech, lambda b: b.inverter("a", "y", wn=30.0, wp=0.5), ["a", "y"])
    findings = BetaRatioCheck().run(ctx)
    flagged = severities(findings, "y")
    assert flagged & {Severity.FILTERED, Severity.VIOLATION}


def test_device_size_violation(tech):
    def build(b):
        b.nmos("a", "y", "gnd", w=0.2)  # sub-minimum
        b.pmos("a", "y", "vdd", w=4.0)

    ctx = ctx_for(tech, build, ["a", "y"])
    findings = DeviceSizeCheck().run(ctx)
    bad = [f for f in findings if f.severity is Severity.VIOLATION]
    assert len(bad) == 1


# ---- latch ------------------------------------------------------------------


def test_latch_clocked_storage_passes(tech):
    ctx = ctx_for(tech,
                  lambda b: b.transparent_latch("d", "q", "clk", "clk_b"),
                  ["d", "q", "clk", "clk_b"],
                  clock_hints=["clk", "clk_b"])
    findings = LatchCheck().run(ctx)
    assert findings
    assert all(f.severity is not Severity.VIOLATION for f in findings)


def test_latch_unclocked_write_violation(tech):
    def build(b):
        b.transmission_gate("d", "store", "en", "en_b")  # en is NOT a clock
        b.inverter("store", "q")

    ctx = ctx_for(tech, build, ["d", "en", "en_b", "q"])
    findings = LatchCheck().run(ctx)
    assert any(f.severity is Severity.VIOLATION and f.subject == "store"
               for f in findings)


def test_latch_dynamic_storage_filtered(tech):
    def build(b):
        b.transmission_gate("d", "store", "clk", "clk_b")
        b.inverter("store", "q")

    ctx = ctx_for(tech, build, ["d", "clk", "clk_b", "q"],
                  clock_hints=["clk", "clk_b"])
    findings = LatchCheck().run(ctx)
    assert any(f.severity is Severity.FILTERED and f.subject == "store"
               for f in findings)


# ---- coupling ----------------------------------------------------------------


def test_coupling_quiet_net_passes(tech):
    ctx = ctx_for(tech, lambda b: b.inverter("a", "y"), ["a", "y"])
    findings = CouplingCheck().run(ctx)
    assert all(f.severity is Severity.PASS for f in findings)


def test_coupling_hammered_dynamic_node_violates(tech):
    ctx = ctx_for(tech,
                  lambda b: b.domino_gate("clk", ["a"], "y", dyn_net="dyn"),
                  ["clk", "a", "y"])
    # Inject a brutal aggressor onto the dynamic node.
    from repro.extraction.caps import Coupling
    dyn_wire = ctx.typical.load("dyn").wire
    dyn_total = ctx.typical.load("dyn").total_nominal()
    dyn_wire.couplings.append(
        Coupling("aggressor", Bound.from_tolerance(dyn_total * 2, 0.1)))
    findings = CouplingCheck().run(ctx)
    assert any(f.subject == "dyn" and f.severity is Severity.VIOLATION
               for f in findings)


# ---- charge share ---------------------------------------------------------------


def test_charge_share_small_stack_passes_or_filters(tech):
    ctx = ctx_for(tech,
                  lambda b: b.domino_gate("clk", ["a"], "y", dyn_net="dyn"),
                  ["clk", "a", "y"])
    findings = ChargeShareCheck().run(ctx)
    assert len(findings) == 1
    assert findings[0].severity is not Severity.VIOLATION


def test_charge_share_deep_keeperless_stack_flagged(tech):
    def build(b):
        b.domino_gate("clk", ["a", "b", "c", "d"], "y",
                      keeper=False, dyn_net="dyn", wn=12.0)
        # Small dynamic node, big internal nodes: droop city.

    ctx = ctx_for(tech, build, ["clk", "a", "b", "c", "d", "y"])
    findings = ChargeShareCheck().run(ctx)
    assert findings[0].severity in (Severity.FILTERED, Severity.VIOLATION)
    assert findings[0].metric("droop_v") > 0.1


def test_charge_share_keeper_demotes_to_filtered(tech):
    def build(b):
        b.domino_gate("clk", ["a", "b", "c", "d"], "y",
                      keeper=True, dyn_net="dyn", wn=12.0)

    ctx = ctx_for(tech, build, ["clk", "a", "b", "c", "d", "y"])
    findings = ChargeShareCheck().run(ctx)
    assert findings[0].severity is not Severity.VIOLATION


# ---- leakage ----------------------------------------------------------------------


def test_leakage_keeper_dominates(tech):
    ctx = ctx_for(tech,
                  lambda b: b.domino_gate("clk", ["a"], "y", dyn_net="dyn"),
                  ["clk", "a", "y"],
                  clock=TwoPhaseClock(period_s=6.25e-9))
    findings = DynamicLeakageCheck().run(ctx)
    dyn = next(f for f in findings if f.subject == "dyn")
    assert dyn.severity is Severity.PASS
    assert dyn.metric("keeper_ratio") > 5


def test_leakage_keeperless_wide_stack_at_slow_clock(tech):
    """A keeperless node held for a long phase with a huge leaky stack."""
    def build(b):
        b.domino_gate("clk", ["a"], "y", keeper=False, dyn_net="dyn", wn=200.0)

    ctx = ctx_for(tech, build, ["clk", "a", "y"],
                  clock=TwoPhaseClock(period_s=10e-6))  # 100 kHz scan-ish
    findings = DynamicLeakageCheck().run(ctx)
    dyn = next(f for f in findings if f.subject == "dyn")
    assert dyn.severity in (Severity.FILTERED, Severity.VIOLATION)


# ---- writability -------------------------------------------------------------------


def test_writability_healthy_latch(tech):
    ctx = ctx_for(tech,
                  lambda b: b.transparent_latch("d", "q", "clk", "clk_b"),
                  ["d", "q", "clk", "clk_b"],
                  clock_hints=["clk", "clk_b"])
    findings = WritabilityCheck().run(ctx)
    assert findings
    assert all(f.severity is Severity.PASS for f in findings
               if f.metric("write_ratio"))


def test_writability_weak_write_violates(tech):
    def build(b):
        # Tiny write tgate against a beefy feedback inverter.
        b.transmission_gate("d", "store", "clk", "clk_b", wn=0.4, wp=0.4)
        b.inverter("store", "q", wn=4.0, wp=8.0)
        fb = "fbn"
        b.inverter("q", fb, wn=6.0, wp=12.0)
        b.transmission_gate(fb, "store", "clk_b", "clk", wn=6.0, wp=12.0)

    ctx = ctx_for(tech, build, ["d", "q", "clk", "clk_b"],
                  clock_hints=["clk", "clk_b"])
    findings = WritabilityCheck().run(ctx)
    store = [f for f in findings if f.subject == "store"]
    assert store and store[0].severity is Severity.VIOLATION


# ---- EM / HCI / TDDB -----------------------------------------------------------------


def test_em_huge_driver_violates(tech):
    def build(b):
        b.inverter("a", "y", wn=400.0, wp=800.0)  # pad-driver class
        b.cap("y", "gnd", 10e-12)  # 10 pF pad load
        b.inverter("y", "z", wn=2.0, wp=4.0)

    ctx = ctx_for(tech, build, ["a", "y", "z"],
                  clock=TwoPhaseClock(period_s=6.25e-9))
    findings = ElectromigrationCheck().run(ctx)
    y = next(f for f in findings if f.subject == "y")
    assert y.severity is Severity.VIOLATION


def test_em_small_gate_passes(tech):
    ctx = ctx_for(tech, lambda b: (b.inverter("a", "y"), b.inverter("y", "z")),
                  ["a", "z"], clock=TwoPhaseClock(period_s=6.25e-9))
    findings = ElectromigrationCheck().run(ctx)
    assert all(f.severity is Severity.PASS for f in findings)


def test_tddb_within_limit(tech):
    ctx = ctx_for(tech, lambda b: b.inverter("a", "y"), ["a", "y"])
    (finding,) = TddbCheck().run(ctx)
    assert finding.severity in (Severity.PASS, Severity.FILTERED)


def test_hci_single_device_sees_full_vdd(tech):
    ctx = ctx_for(tech, lambda b: b.inverter("a", "y"), ["a", "y"])
    findings = HotCarrierCheck().run(ctx)
    n_findings = [f for f in findings if f.subject.startswith("mn")]
    assert n_findings
    # StrongARM at 1.5 V is comfortably under its 2.2 V HCI limit.
    assert all(f.severity is Severity.PASS for f in n_findings)


def test_hci_violation_on_overvoltage_process():
    """The ALPHA process run at an abusive supply trips HCI."""
    from dataclasses import replace

    from repro.process.technology import alpha_21064_technology
    tech = replace(alpha_21064_technology(), vdd_v=5.0, hci_max_vds_v=3.8)
    b = CellBuilder("dut", ports=["a", "y"])
    b.inverter("a", "y")
    ctx = make_context(flatten(b.build()), tech)
    findings = HotCarrierCheck().run(ctx)
    assert any(f.severity is Severity.VIOLATION for f in findings)


# ---- edge rate & battery ------------------------------------------------------------------


def test_edge_rate_weak_driver_flagged(tech):
    def build(b):
        b.inverter("a", "y", wn=0.5, wp=0.5)
        for i in range(30):  # massive fanout
            b.inverter("y", f"z{i}", wn=8.0, wp=16.0)

    ctx = ctx_for(tech, build, ["a", "y"])
    findings = EdgeRateCheck().run(ctx)
    y = next(f for f in findings if f.subject == "y")
    assert y.severity in (Severity.FILTERED, Severity.VIOLATION)


def test_full_battery_runs_clean_design(tech):
    def build(b):
        b.nand(["a", "b"], "n1")
        b.inverter("n1", "y")
        b.transparent_latch("y", "q", "clk", "clk_b")

    ctx = ctx_for(tech, build, ["a", "b", "q", "clk", "clk_b"],
                  clock=TwoPhaseClock(period_s=6.25e-9),
                  clock_hints=["clk", "clk_b"])
    result = run_battery(ctx)
    assert result.findings
    stats = result.queues.stats()
    # A clean design: most findings auto-cleared, no violations.
    assert stats.violations == 0
    assert stats.auto_cleared_fraction() > 0.6
    # Every paper check that applies produced findings.
    for name in ("beta_ratio", "device_size", "edge_rate", "latch",
                 "coupling", "writability", "electromigration",
                 "hot_carrier", "tddb"):
        assert result.of_check(name), f"check {name} produced nothing"
