"""Unit tests for repro.checks.supply (Figure 3's remaining noise sources)."""

import pytest

from repro.checks.base import Severity
from repro.checks.driver import make_context
from repro.checks.supply import ALPHA_CHARGE_FC, AlphaParticleCheck, SupplyDifferenceCheck
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def domino_ctx(tech, **kwargs):
    b = CellBuilder("dom", ports=["clk", "a", "y"])
    b.domino_gate("clk", ["a"], "y", dyn_net="dyn", **kwargs)
    return make_context(flatten(b.build()), tech,
                        clock=TwoPhaseClock(period_s=6.25e-9))


# ---- supply difference ----------------------------------------------------


def test_supply_check_abstains_without_region_map(tech):
    ctx = domino_ctx(tech)
    assert SupplyDifferenceCheck().run(ctx) == []


def test_supply_difference_within_budget_passes(tech):
    ctx = domino_ctx(tech)
    ctx.supply_regions = {"a": "north", "dyn": "south", "y": "south"}
    ctx.supply_offsets_v = {"north": 0.01, "south": 0.02}
    findings = SupplyDifferenceCheck().run(ctx)
    assert findings
    assert all(f.severity is Severity.PASS for f in findings)


def test_supply_difference_on_dynamic_receiver_violates(tech):
    """A big IR drop between the driver of an evaluate input and the
    dynamic gate it feeds: tight budget, violation."""
    ctx = domino_ctx(tech)
    # 'a' gates the evaluate device; pretend its driver is far away.
    ctx.supply_regions = {"a": "far_corner", "dyn": "local", "y": "local"}
    ctx.supply_offsets_v = {"far_corner": 0.30, "local": 0.0}
    findings = SupplyDifferenceCheck().run(ctx)
    flagged = [f for f in findings if f.severity is not Severity.PASS]
    assert flagged
    assert any(f.subject == "a" for f in flagged)


def test_supply_difference_static_receiver_filtered_not_violated(tech):
    b = CellBuilder("c", ports=["x", "z"])
    b.inverter("x", "mid")
    b.inverter("mid", "z")
    ctx = make_context(flatten(b.build()), tech)
    ctx.supply_regions = {"x": "a_side", "mid": "b_side", "z": "b_side"}
    ctx.supply_offsets_v = {"a_side": 0.5, "b_side": 0.0}
    findings = SupplyDifferenceCheck().run(ctx)
    assert any(f.severity is Severity.FILTERED for f in findings)
    assert not any(f.severity is Severity.VIOLATION for f in findings)


# ---- alpha particle -----------------------------------------------------------


def test_alpha_small_dynamic_node_flagged(tech):
    """A minimum-size dynamic node holds only a few fC of margin charge:
    well under the strike budget."""
    ctx = domino_ctx(tech)
    findings = AlphaParticleCheck().run(ctx)
    dyn = next(f for f in findings if f.subject == "dyn")
    assert dyn.severity in (Severity.FILTERED, Severity.VIOLATION)
    assert dyn.metric("q_crit_fc") < ALPHA_CHARGE_FC * 3


def test_alpha_big_node_passes(tech):
    """Hanging a large capacitor on the dynamic node raises Q_crit past
    the strike budget -- the classic SER hardening move."""
    b = CellBuilder("dom", ports=["clk", "a", "y"])
    b.domino_gate("clk", ["a"], "y", dyn_net="dyn")
    b.cap("dyn", "gnd", 500e-15)
    ctx = make_context(flatten(b.build()), tech,
                       clock=TwoPhaseClock(period_s=6.25e-9))
    findings = AlphaParticleCheck().run(ctx)
    dyn = next(f for f in findings if f.subject == "dyn")
    assert dyn.severity is Severity.PASS


def test_alpha_static_nodes_not_reported(tech):
    b = CellBuilder("c", ports=["x", "z"])
    b.nand(["x", "x"], "mid")
    b.inverter("mid", "z")
    ctx = make_context(flatten(b.build()), tech)
    assert AlphaParticleCheck().run(ctx) == []


def test_alpha_dynamic_latch_reported(tech):
    b = CellBuilder("lat", ports=["d", "clk", "clk_b", "q"])
    b.transmission_gate("d", "store", "clk", "clk_b")
    b.inverter("store", "q")
    ctx = make_context(flatten(b.build()), tech,
                       clock_hints=["clk", "clk_b"])
    findings = AlphaParticleCheck().run(ctx)
    assert any(f.subject == "store" for f in findings)
