"""Finding / BatteryResult serialization round-trips (checkpoint store)."""

import pytest

from repro.checks.base import Finding, Severity
from repro.checks.driver import make_context
from repro.checks.registry import ALL_CHECKS, BatteryResult, run_battery
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology


def sample_findings():
    return [
        Finding(check="beta_ratio", subject="inv1", severity=Severity.PASS,
                message="ratio fine", metrics={"beta": 2.1}),
        Finding(check="beta_ratio", subject="inv2",
                severity=Severity.VIOLATION, message="ratio out of band",
                metrics={"beta": 9.0, "limit": 4.0}),
        Finding(check="charge_share", subject="dyn3",
                severity=Severity.FILTERED, message="below threshold"),
        Finding(check="latch", subject="q0", severity=Severity.VIOLATION,
                message="check crashed (exception): boom",
                metrics={"crash": 1.0},
                detail="Traceback (most recent call last):\n  boom\n"),
    ]


@pytest.mark.parametrize("finding", sample_findings())
def test_finding_roundtrip_exact(finding):
    assert Finding.from_dict(finding.to_dict()) == finding


def test_finding_to_dict_omits_empty_detail():
    plain = sample_findings()[0]
    assert "detail" not in plain.to_dict()
    crash = sample_findings()[3]
    assert crash.to_dict()["detail"].startswith("Traceback")


def test_battery_result_roundtrip_rederives_consistently():
    findings = sample_findings()
    src = BatteryResult(
        findings=findings,
        queues=None,  # deliberately wrong: from_dict must not trust it
        per_check={},
        per_check_seconds={"beta_ratio": 0.25, "charge_share": 0.5,
                           "latch": 0.125, "edge_rate": 0.0625},
        crashes={"latch": "Traceback ...\nboom"},
    )
    back = BatteryResult.from_dict(src.to_dict())
    assert back.findings == findings
    assert back.per_check_seconds == src.per_check_seconds
    assert back.crashes == src.crashes
    # derived views rebuilt: triage split and per-check slots, including
    # an empty slot for the check that found nothing
    assert back.of_check("edge_rate") == []
    assert back.of_check("beta_ratio") == findings[:2]
    assert [f.subject for f in back.queues.violations] \
        == [f.subject for f in findings if f.severity is Severity.VIOLATION]
    # and the round trip is a fixpoint at the dict level
    assert BatteryResult.from_dict(back.to_dict()).to_dict() == back.to_dict()


def test_live_battery_roundtrips():
    b = CellBuilder("dut", ports=["a", "bb", "y", "q", "clk", "clk_b"])
    b.nand(["a", "bb"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    ctx = make_context(flatten(b.build()), strongarm_technology(),
                       clock_hints=("clk", "clk_b"))
    result = run_battery(ctx, checks=ALL_CHECKS)
    back = BatteryResult.from_dict(result.to_dict())
    assert back.findings == result.findings
    assert sorted(back.per_check) == sorted(result.per_check)
    for name in result.per_check:
        assert back.per_check[name] == result.per_check[name]
    assert back.to_dict() == result.to_dict()
