"""Coverage for the thinner checks: clock skew, clock RC on real trees,
and antenna with real macrocell geometry."""

import pytest

from repro.checks.antenna import AntennaCheck
from repro.checks.base import Severity
from repro.checks.clock_rc import ClockRcCheck, ClockSkewCheck
from repro.checks.driver import make_context
from repro.designs.clocktree import clock_tree
from repro.extraction.extract import extract_macrocell
from repro.layout.antenna_geom import AntennaGeometry, antenna_geometry
from repro.layout.macrocell import generate_macrocell
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock, clock_tree_skew


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def test_clock_rc_on_real_tree(tech):
    cell, leaves = clock_tree(levels=2, branching=2)
    ctx = make_context(flatten(cell), tech, clock_hints=["clk_in"],
                       clock=TwoPhaseClock(period_s=6.25e-9, skew_s=100e-12))
    findings = ClockRcCheck().run(ctx)
    # Every recognized clock net gets a node-by-node entry.
    assert {f.subject for f in findings} >= set(leaves) | {"clk_in"}
    assert all(f.metric("rc_s") >= 0 for f in findings)


def test_clock_skew_check_budget_sensitivity(tech):
    cell, _leaves = clock_tree(levels=3, branching=2)
    flat = flatten(cell)
    tight = make_context(flat, tech, clock_hints=["clk_in"],
                         clock=TwoPhaseClock(period_s=6.25e-9, skew_s=1e-15))
    loose = make_context(flat, tech, clock_hints=["clk_in"],
                         clock=TwoPhaseClock(period_s=6.25e-9, skew_s=5e-9))
    tight_findings = ClockSkewCheck().run(tight)
    loose_findings = ClockSkewCheck().run(loose)
    assert tight_findings and loose_findings
    worst_tight = max(f.severity.value for f in tight_findings)
    assert any(f.severity is not Severity.PASS for f in tight_findings)
    assert all(f.severity is Severity.PASS for f in loose_findings)


def test_clock_tree_skew_estimate_grows_with_depth(tech):
    from repro.extraction.annotate import annotate
    from repro.extraction.wireload import WireloadModel
    from repro.process.corners import Corner
    from repro.recognition.recognizer import recognize

    def skew_of(levels):
        cell, _ = clock_tree(levels=levels, branching=2)
        flat = flatten(cell)
        design = recognize(flat, clock_hints=["clk_in"])
        par = WireloadModel().extract(flat, tech.wires)
        annotated = annotate(flat, par, tech, Corner.TYPICAL)
        return clock_tree_skew(design, annotated)

    assert skew_of(3) >= skew_of(1) >= 0.0


def test_antenna_check_with_real_geometry(tech):
    b = CellBuilder("blk", ports=["a", "y"])
    b.inverter("a", "mid")
    b.inverter("mid", "y")
    flat = flatten(b.build())
    mc = generate_macrocell("blk", flat.transistors, l_min_um=tech.l_min_um)
    geoms = antenna_geometry(mc.layout, flat, l_min_um=tech.l_min_um)
    ctx = make_context(flat, tech,
                       parasitics=extract_macrocell(mc, tech.wires),
                       antenna=geoms)
    findings = AntennaCheck().run(ctx)
    assert findings
    # mid has diffusion (driven by the first inverter): waived/pass.
    mid = next(f for f in findings if f.subject == "mid")
    assert mid.severity is Severity.PASS


def test_antenna_check_flags_monster_wire(tech):
    """A huge gate-only wire with no diffusion trips the ratio limit."""
    geom = AntennaGeometry(net="long_route", metal_area_um2=2000.0,
                           gate_area_um2=1.0, has_diffusion=False)
    b = CellBuilder("c", ports=["a", "y"])
    b.inverter("a", "y")
    ctx = make_context(flatten(b.build()), tech, antenna=[geom])
    findings = AntennaCheck().run(ctx)
    assert findings[0].severity is Severity.VIOLATION


def test_antenna_check_abstains_without_layout(tech):
    b = CellBuilder("c", ports=["a", "y"])
    b.inverter("a", "y")
    ctx = make_context(flatten(b.build()), tech)
    assert AntennaCheck().run(ctx) == []
