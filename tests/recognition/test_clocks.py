"""Unit tests for repro.recognition.clocks."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.ccc import extract_cccs
from repro.recognition.clocks import infer_clocks, structural_clock_seeds


def build_and_extract(build, ports):
    b = CellBuilder("c", ports=ports)
    build(b)
    flat = flatten(b.build())
    return flat, extract_cccs(flat)


def test_domino_clock_seed_found():
    flat, cccs = build_and_extract(
        lambda b: b.domino_gate("clk", ["a", "b"], "y"),
        ["clk", "a", "b", "y"],
    )
    assert structural_clock_seeds(cccs) == {"clk"}


def test_static_gate_inputs_are_not_seeds():
    flat, cccs = build_and_extract(
        lambda b: (b.nand(["a", "b"], "y"), b.inverter("y", "z")),
        ["a", "b", "y", "z"],
    )
    assert structural_clock_seeds(cccs) == set()


def test_clock_propagates_through_inverter_chain():
    def build(b):
        b.domino_gate("clk", ["a"], "y")
        b.inverter("clk", "clk_b")
        b.inverter("clk_b", "clk_2")

    flat, cccs = build_and_extract(build, ["clk", "a", "y"])
    clocks = infer_clocks(flat, cccs)
    assert {"clk", "clk_b", "clk_2"} <= set(clocks)
    assert clocks["clk"].inverted is False and clocks["clk"].depth == 0
    assert clocks["clk_b"].inverted is True and clocks["clk_b"].depth == 1
    assert clocks["clk_2"].inverted is False and clocks["clk_2"].depth == 2
    assert clocks["clk_2"].root == "clk"


def test_hints_create_roots():
    flat, cccs = build_and_extract(
        lambda b: b.transparent_latch("d", "q", "phi", "phi_b"),
        ["d", "q", "phi", "phi_b"],
    )
    clocks = infer_clocks(flat, cccs, hints=["phi", "phi_b"])
    assert "phi" in clocks and clocks["phi"].root == "phi"
    assert "phi_b" in clocks


def test_data_signals_not_classified_as_clocks():
    def build(b):
        b.domino_gate("clk", ["a"], "y")
        b.inverter("a", "a_b")  # inverter on a *data* net

    flat, cccs = build_and_extract(build, ["clk", "a", "y"])
    clocks = infer_clocks(flat, cccs)
    assert "a" not in clocks
    assert "a_b" not in clocks


def test_dynamic_output_inverter_not_marked_clock():
    """The domino output inverter's input is the dynamic node, not a
    clock; its output must not become a derived clock."""
    flat, cccs = build_and_extract(
        lambda b: b.domino_gate("clk", ["a"], "y"),
        ["clk", "a", "y"],
    )
    clocks = infer_clocks(flat, cccs)
    assert "y" not in clocks
