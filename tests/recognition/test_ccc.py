"""Unit tests for repro.recognition.ccc."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.ccc import ccc_of_net, extract_cccs


def test_inverter_is_one_ccc():
    b = CellBuilder("inv", ports=["a", "y"])
    b.inverter("a", "y")
    cccs = extract_cccs(flatten(b.build()))
    assert len(cccs) == 1
    assert cccs[0].size() == 2
    assert cccs[0].channel_nets == {"y"}
    assert cccs[0].input_nets == {"a"}
    assert cccs[0].output_nets == {"y"}


def test_nand_is_one_ccc_with_internal_node():
    b = CellBuilder("nand2", ports=["a", "b", "y"])
    b.nand(["a", "b"], "y")
    cccs = extract_cccs(flatten(b.build()))
    assert len(cccs) == 1
    ccc = cccs[0]
    assert ccc.size() == 4
    assert ccc.output_nets == {"y"}
    assert len(ccc.internal_nets) == 1  # the series-stack midpoint


def test_cascaded_inverters_are_separate_cccs():
    b = CellBuilder("buf", ports=["a", "y"])
    b.inverter("a", "mid")
    b.inverter("mid", "y")
    cccs = extract_cccs(flatten(b.build()))
    assert len(cccs) == 2
    # "mid" drives a gate, so it is an output of its CCC.
    first = next(c for c in cccs if "mid" in c.channel_nets)
    assert first.output_nets == {"mid"}


def test_pass_gate_merges_with_driven_node_not_through_rails():
    """A tgate bridging two nets makes them one CCC; rails never merge."""
    b = CellBuilder("latch_front", ports=["d", "clk", "clk_b", "q"])
    b.transmission_gate("d", "store", "clk", "clk_b")
    b.inverter("store", "q")
    cccs = extract_cccs(flatten(b.build()))
    # tgate CCC (d, store) and inverter CCC (q): store connects to the
    # inverter only through a gate, so they stay separate.
    assert len(cccs) == 2
    tg = next(c for c in cccs if "d" in c.channel_nets)
    assert tg.channel_nets == {"d", "store"}
    assert "clk" in tg.input_nets and "clk_b" in tg.input_nets


def test_domino_gate_ccc_split():
    b = CellBuilder("dom", ports=["clk", "a", "b", "y"])
    dyn = b.domino_gate("clk", ["a", "b"], "y")
    cccs = extract_cccs(flatten(b.build()))
    # Dynamic-node CCC (precharge + eval + foot + keeper) and the output
    # inverter CCC.
    assert len(cccs) == 2
    dyn_ccc = next(c for c in cccs if dyn in c.channel_nets)
    # precharge + two series eval devices + foot + keeper = 5
    assert dyn_ccc.size() == 5


def test_decap_device_is_isolated_ccc():
    b = CellBuilder("decap", ports=[])
    b.nmos("vdd", "gnd", "gnd", w=10.0)  # gate to vdd, channel shorted to gnd
    cccs = extract_cccs(flatten(b.build()))
    assert len(cccs) == 1
    assert cccs[0].channel_nets == set()


def test_ccc_of_net_lookup():
    b = CellBuilder("two", ports=["a", "y1", "y2"])
    b.inverter("a", "y1")
    b.inverter("a", "y2")
    cccs = extract_cccs(flatten(b.build()))
    assert len(ccc_of_net(cccs, "y1")) == 1
    assert len(ccc_of_net(cccs, "nosuch")) == 0


def test_deterministic_ordering():
    b = CellBuilder("c", ports=["a", "y1", "y2"])
    b.inverter("a", "y1")
    b.inverter("y1", "y2")
    flat = flatten(b.build())
    first = [tuple(t.name for t in c.transistors) for c in extract_cccs(flat)]
    second = [tuple(t.name for t in c.transistors) for c in extract_cccs(flat)]
    assert first == second
    assert [c.index for c in extract_cccs(flat)] == [0, 1]
