"""Unit tests for repro.recognition.gates."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.ccc import extract_cccs
from repro.recognition.gates import recognize_static_gate


def first_ccc(build):
    b = CellBuilder("cell", ports=["a", "b", "c", "y"])
    build(b)
    return extract_cccs(flatten(b.build()))[0]


def test_inverter_recognized():
    ccc = first_ccc(lambda b: b.inverter("a", "y"))
    gate = recognize_static_gate(ccc, "y")
    assert gate is not None
    assert gate.complementary
    assert gate.inputs == ["a"]
    assert gate.is_inverter()
    assert gate.function_name() == "inv"
    assert gate.evaluate({"a": False}) is True
    assert gate.evaluate({"a": True}) is False


def test_nand2_recognized():
    ccc = first_ccc(lambda b: b.nand(["a", "b"], "y"))
    gate = recognize_static_gate(ccc, "y")
    assert gate is not None and gate.complementary
    assert gate.inputs == ["a", "b"]
    assert gate.function_name() == "nand"
    assert gate.evaluate({"a": True, "b": True}) is False
    assert gate.evaluate({"a": True, "b": False}) is True


def test_nor3_recognized():
    ccc = first_ccc(lambda b: b.nor(["a", "b", "c"], "y"))
    gate = recognize_static_gate(ccc, "y")
    assert gate is not None and gate.complementary
    assert gate.function_name() == "nor"
    assert gate.evaluate({"a": False, "b": False, "c": False}) is True
    assert gate.evaluate({"a": False, "b": True, "c": False}) is False


def test_aoi21_recognized_as_complex():
    ccc = first_ccc(lambda b: b.aoi21("a", "b", "c", "y"))
    gate = recognize_static_gate(ccc, "y")
    assert gate is not None and gate.complementary
    assert gate.function_name() == "complex"
    # y = NOT(a*b + c)
    assert gate.evaluate({"a": True, "b": True, "c": False}) is False
    assert gate.evaluate({"a": True, "b": False, "c": False}) is True
    assert gate.evaluate({"a": False, "b": False, "c": True}) is False


def test_pseudo_nmos_not_complementary():
    """Grounded-gate PMOS load: a ratioed gate, flagged non-complementary."""
    b = CellBuilder("pseudo", ports=["a", "y"])
    b.pmos("gnd", "y", "vdd", w=1.0)  # always-on load
    b.nmos("a", "y", "gnd", w=4.0)
    ccc = extract_cccs(flatten(b.build()))[0]
    gate = recognize_static_gate(ccc, "y")
    # Pull-up support is empty (rail-gated device): no usable up paths
    # with gate conditions, so the gate is either None or marked
    # non-complementary -- never silently complementary.
    assert gate is None or not gate.complementary


def test_skewed_complementary_still_recognized():
    """Complementarity is about topology, not sizing: a heavily skewed
    inverter is still an inverter (every transistor individually sized,
    paper section 2)."""
    b = CellBuilder("skew", ports=["a", "y"])
    b.nmos("a", "y", "gnd", w=20.0)
    b.pmos("a", "y", "vdd", w=0.6)
    ccc = extract_cccs(flatten(b.build()))[0]
    gate = recognize_static_gate(ccc, "y")
    assert gate is not None and gate.complementary and gate.is_inverter()


def test_non_gate_returns_none():
    """A bare pass transistor has no pull networks."""
    b = CellBuilder("pass", ports=["x", "y", "en"])
    b.nmos_pass("x", "y", "en")
    ccc = extract_cccs(flatten(b.build()))[0]
    assert recognize_static_gate(ccc, "y") is None


def test_mismatched_networks_not_complementary():
    """Pull-up NOR-style, pull-down NAND-style: both exist but are not
    complements."""
    b = CellBuilder("bad", ports=["a", "b", "y"])
    # Pull-down: series (conducts at a&b).
    b.nmos("a", "y", "m", w=2.0)
    b.nmos("b", "m", "gnd", w=2.0)
    # Pull-up: series too (conducts at !a & !b) -- complement would need
    # parallel.  Function has a floating region.
    b.pmos("a", "y", "p", w=4.0)
    b.pmos("b", "p", "vdd", w=4.0)
    ccc = extract_cccs(flatten(b.build()))[0]
    gate = recognize_static_gate(ccc, "y")
    assert gate is not None
    assert not gate.complementary


def test_keeper_feedback_returns_none():
    """A node whose own value gates its pull-up is not a simple gate."""
    b = CellBuilder("keep", ports=["a", "y"])
    b.nmos("a", "y", "gnd", w=2.0)
    b.pmos("y", "y", "vdd", w=1.0)  # self-feedback keeper
    ccc = extract_cccs(flatten(b.build()))[0]
    assert recognize_static_gate(ccc, "y") is None
