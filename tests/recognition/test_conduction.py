"""Unit tests for repro.recognition.conduction."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.ccc import extract_cccs
from repro.recognition.conduction import (
    conduction_function,
    conduction_paths,
    support,
    truth_table,
)


def nand2_ccc():
    b = CellBuilder("nand2", ports=["a", "b", "y"])
    b.nand(["a", "b"], "y")
    return extract_cccs(flatten(b.build()))[0]


def test_nand_pull_down_single_series_path():
    ccc = nand2_ccc()
    down = conduction_paths(ccc, "y", "gnd")
    assert len(down) == 1
    assert len(down[0].devices) == 2
    assert set(down[0].conditions) == {("a", True), ("b", True)}


def test_nand_pull_up_two_parallel_paths():
    ccc = nand2_ccc()
    up = conduction_paths(ccc, "y", "vdd")
    assert len(up) == 2
    assert {p.conditions for p in up} == {(("a", False),), (("b", False),)}


def test_conduction_function_evaluation():
    ccc = nand2_ccc()
    down = conduction_paths(ccc, "y", "gnd")
    assert conduction_function(down, {"a": True, "b": True})
    assert not conduction_function(down, {"a": True, "b": False})
    # Missing assignments are conservatively non-conducting.
    assert not conduction_function(down, {"a": True})


def test_contradictory_paths_dropped():
    """A path through both an NMOS and PMOS gated by the same net never
    conducts and must not be reported."""
    b = CellBuilder("tg", ports=["x", "y", "en"])
    # NMOS then PMOS in series, both gated by en: requires en=1 and en=0.
    b.nmos("en", "x", "mid", w=2.0)
    b.pmos("en", "mid", "y", w=2.0)
    ccc = extract_cccs(flatten(b.build()))[0]
    paths = conduction_paths(ccc, "x", "y")
    assert paths == []


def test_transmission_gate_two_paths():
    b = CellBuilder("tg", ports=["x", "y", "en", "en_b"])
    b.transmission_gate("x", "y", "en", "en_b")
    ccc = extract_cccs(flatten(b.build()))[0]
    paths = conduction_paths(ccc, "x", "y")
    assert len(paths) == 2
    assert support(paths) == {"en", "en_b"}


def test_truth_table_nand():
    ccc = nand2_ccc()
    down = conduction_paths(ccc, "y", "gnd")
    inputs = sorted(support(down))
    # Conduction only at a=b=1 (minterm 3): bitmask 0b1000.
    assert truth_table(down, inputs) == 0b1000


def test_truth_table_input_cap():
    ccc = nand2_ccc()
    down = conduction_paths(ccc, "y", "gnd")
    with pytest.raises(ValueError):
        truth_table(down, [f"x{i}" for i in range(20)])


def test_paths_do_not_cross_rails():
    """Paths from output to gnd must not detour through vdd."""
    b = CellBuilder("inv", ports=["a", "y"])
    b.inverter("a", "y")
    ccc = extract_cccs(flatten(b.build()))[0]
    down = conduction_paths(ccc, "y", "gnd")
    assert len(down) == 1
    assert down[0].conditions == (("a", True),)


def test_parallel_stack_path_count():
    """OR-type evaluate network: one path per parallel device."""
    b = CellBuilder("nor3", ports=["a", "b", "c", "y"])
    b.nor(["a", "b", "c"], "y")
    ccc = extract_cccs(flatten(b.build()))[0]
    down = conduction_paths(ccc, "y", "gnd")
    assert len(down) == 3
