"""Integration-level unit tests for repro.recognition.recognizer."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.families import CircuitFamily
from repro.recognition.recognizer import NetKind, recognize


def build_mixed_design():
    """A miniature full-custom block exercising several families at once:
    static NAND -> domino stage -> output inverter, a transparent latch on
    the output, and an SRAM bit on the side."""
    b = CellBuilder("block", ports=["clk", "clk_b", "a", "b", "bl", "bl_b", "wl", "q"])
    b.nand(["a", "b"], "nd")
    b.inverter("nd", "and_ab")
    b.domino_gate("clk", ["and_ab"], "dom_out", dyn_net="dyn")
    store = b.transparent_latch("dom_out", "q", "clk", "clk_b")
    s, s_b = b.sram_cell("bl", "bl_b", "wl")
    return b.build(), store, s, s_b


def test_full_recognition_pipeline():
    cell, store, s, s_b = build_mixed_design()
    design = recognize(flatten(cell), clock_hints=["clk_b"])

    # Clocks: structural (clk from the domino) + hinted (clk_b).
    assert "clk" in design.clocks
    assert "clk_b" in design.clocks

    # Dynamic node found with its anatomy.
    assert "dyn" in design.dynamic_nodes
    dyn = design.dynamic_nodes["dyn"]
    assert dyn.clock == "clk"
    assert dyn.eval_inputs == {"and_ab"}

    # Static gates extracted: the NAND and the inverters.
    assert "nd" in design.gates
    assert design.gates["nd"].function_name() == "nand"

    # Storage: latch node + both SRAM nodes.
    storage_nets = {n.net for n in design.storage}
    assert store in storage_nets
    assert {s, s_b} <= storage_nets


def test_net_kind_assignment():
    cell, store, s, s_b = build_mixed_design()
    design = recognize(flatten(cell), clock_hints=["clk_b"])
    assert design.kind("vdd") is NetKind.RAIL
    assert design.kind("clk") is NetKind.CLOCK
    assert design.kind("dyn") is NetKind.DYNAMIC
    assert design.kind(store) is NetKind.STORAGE
    assert design.kind("nd") is NetKind.STATIC
    assert design.kind("a") is NetKind.INPUT
    assert design.kind("never_heard_of_it") is NetKind.UNKNOWN


def test_family_histogram():
    cell, *_ = build_mixed_design()
    design = recognize(flatten(cell), clock_hints=["clk_b"])
    hist = design.family_histogram()
    assert hist.get(CircuitFamily.STATIC, 0) >= 3  # nand + inverters
    assert hist.get(CircuitFamily.DYNAMIC, 0) == 1


def test_dcvsl_pair_reported():
    b = CellBuilder("d", ports=["a", "a_b", "t", "f"])
    b.dcvsl(["a"], ["a_b"], "t", "f")
    b.inverter("t", "to")
    b.inverter("f", "fo")
    design = recognize(flatten(b.build()))
    assert design.dcvsl_pairs == [("t", "f")] or design.dcvsl_pairs == [("f", "t")]
    # And DCVSL outputs are not storage.
    assert all(n.net not in ("t", "f") for n in design.storage)


def test_nets_of_kind_listing():
    cell, *_ = build_mixed_design()
    design = recognize(flatten(cell), clock_hints=["clk_b"])
    clocks = design.nets_of_kind(NetKind.CLOCK)
    assert "clk" in clocks and "clk_b" in clocks


def test_recognizer_on_pure_combinational():
    b = CellBuilder("comb", ports=["x", "y", "z"])
    b.nand(["x", "y"], "w")
    b.inverter("w", "z")
    design = recognize(flatten(b.build()))
    assert design.clocks == {}
    assert design.dynamic_nodes == {}
    assert design.storage == []
    assert design.kind("w") is NetKind.STATIC
