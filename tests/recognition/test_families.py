"""Unit tests for repro.recognition.families."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.ccc import extract_cccs
from repro.recognition.families import (
    CircuitFamily,
    classify_ccc,
    find_cross_coupled_pairs,
)


def classify_all(cell, clocks=frozenset()):
    cccs = extract_cccs(flatten(cell))
    return [classify_ccc(c, clocks) for c in cccs]


def test_static_gate_family():
    b = CellBuilder("nand", ports=["a", "b", "y"])
    b.nand(["a", "b"], "y")
    (c,) = classify_all(b.build())
    assert c.family is CircuitFamily.STATIC
    assert "y" in c.gates and c.gates["y"].complementary


def test_domino_dynamic_family():
    b = CellBuilder("dom", ports=["clk", "a", "b", "y"])
    dyn = b.domino_gate("clk", ["a", "b"], "y")
    results = classify_all(b.build(), clocks=frozenset({"clk"}))
    dyn_c = next(c for c in results if dyn in c.ccc.channel_nets)
    assert dyn_c.family is CircuitFamily.DYNAMIC
    node = dyn_c.dynamic_nodes[dyn]
    assert node.clock == "clk"
    assert node.eval_inputs == {"a", "b"}
    assert len(node.precharge_devices) == 1
    assert len(node.foot_devices) == 1
    assert len(node.keeper_devices) == 1


def test_domino_without_clock_knowledge_is_not_dynamic():
    """Without the clock set, the keeper-fed pull-up looks cross-coupled;
    the classifier must not claim DYNAMIC."""
    b = CellBuilder("dom", ports=["clk", "a", "y"])
    dyn = b.domino_gate("clk", ["a"], "y")
    results = classify_all(b.build(), clocks=frozenset())
    dyn_c = next(c for c in results if dyn in c.ccc.channel_nets)
    assert dyn_c.family is not CircuitFamily.DYNAMIC


def test_footless_domino_dynamic():
    b = CellBuilder("dom", ports=["clk", "a", "y"])
    # Hand-built footless domino: precharge + direct eval device.
    b.pmos("clk", "dyn", "vdd", w=4.0)
    b.nmos("a", "dyn", "gnd", w=4.0)
    b.inverter("dyn", "y")
    results = classify_all(b.build(), clocks=frozenset({"clk"}))
    dyn_c = next(c for c in results if "dyn" in c.ccc.channel_nets)
    assert dyn_c.family is CircuitFamily.DYNAMIC
    assert dyn_c.dynamic_nodes["dyn"].foot_devices == []


def test_pass_network_family():
    b = CellBuilder("mux", ports=["a", "b", "s", "s_b", "y"])
    b.nmos_pass("a", "y", "s")
    b.nmos_pass("b", "y", "s_b")
    (c,) = classify_all(b.build())
    assert c.family is CircuitFamily.PASS_NETWORK
    assert ("a", "y") in c.pass_pairs
    assert ("b", "y") in c.pass_pairs


def test_transmission_gate_family():
    b = CellBuilder("tg", ports=["x", "y", "en", "en_b"])
    b.transmission_gate("x", "y", "en", "en_b")
    (c,) = classify_all(b.build())
    assert c.family is CircuitFamily.TRANSMISSION_GATE


def test_isolated_decap():
    b = CellBuilder("decap", ports=[])
    b.nmos("vdd", "gnd", "gnd", w=20.0)
    (c,) = classify_all(b.build())
    assert c.family is CircuitFamily.ISOLATED


def test_pull_only_family():
    b = CellBuilder("pullup", ports=["en", "y"])
    b.pmos("en", "y", "vdd", w=2.0)
    (c,) = classify_all(b.build())
    assert c.family is CircuitFamily.PULL_ONLY


def test_ratioed_family():
    b = CellBuilder("pseudo", ports=["a", "y"])
    b.pmos("gnd", "y", "vdd", w=1.0)
    b.nmos("a", "y", "gnd", w=4.0)
    (c,) = classify_all(b.build())
    assert c.family is CircuitFamily.RATIOED


def test_dcvsl_halves_and_pairing():
    b = CellBuilder("dcvsl", ports=["a", "b", "a_b", "b_b", "t", "f"])
    b.dcvsl(["a", "b"], ["a_b", "b_b"], "t", "f")
    results = classify_all(b.build())
    halves = [c for c in results if c.family is CircuitFamily.CROSS_COUPLED_HALF]
    assert len(halves) == 2
    pairs = find_cross_coupled_pairs(results)
    assert len(pairs) == 1


def test_mixed_dynamic_and_static_notes():
    """A CCC containing both a dynamic node and a static output stays
    classified DYNAMIC with a note (conservative for the checks)."""
    b = CellBuilder("mix", ports=["clk", "a", "c", "y", "z"])
    # Dynamic node dyn shares a channel with a static-ish structure via a
    # pass device, merging the two into one CCC.
    b.pmos("clk", "dyn", "vdd", w=4.0)
    b.nmos("a", "dyn", "foot", w=4.0)
    b.nmos("clk", "foot", "gnd", w=4.0)
    b.inverter("dyn", "y")
    b.nmos_pass("dyn", "z", "c")
    results = classify_all(b.build(), clocks=frozenset({"clk"}))
    dyn_c = next(c for c in results if "dyn" in c.ccc.channel_nets)
    assert dyn_c.family is CircuitFamily.DYNAMIC
    assert "dyn" in dyn_c.dynamic_nodes
