"""Unit tests for repro.recognition.latches."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.ccc import extract_cccs
from repro.recognition.families import classify_ccc
from repro.recognition.latches import find_storage_nodes


def storage_of(cell, clocks=frozenset()):
    flat = flatten(cell)
    cccs = extract_cccs(flat)
    classified = [classify_ccc(c, clocks) for c in cccs]
    return find_storage_nodes(flat, cccs, classified, clocks)


def test_sram_cell_cross_coupled_storage():
    b = CellBuilder("bit", ports=["bl", "bl_b", "wl"])
    s, s_b = b.sram_cell("bl", "bl_b", "wl")
    nodes = storage_of(b.build())
    cross = [n for n in nodes if n.kind == "cross_coupled"]
    assert {n.net for n in cross} == {s, s_b}
    for n in cross:
        assert n.static
        assert n.partner in {s, s_b} - {n.net}
        assert n.write_devices  # the access transistors
        assert "wl" in n.enables


def test_transparent_latch_storage_node_static():
    """The staticized latch's storage node is recognized as *static*
    storage with clock-gated write devices.  Because the feedback
    transmission gate channel-connects the storage node to the feedback
    inverter, the whole front end is one CCC and the loop is seen as
    cross-coupled storage (store <-> q) -- electrically accurate: the
    restoring loop is exactly what staticizes the node."""
    b = CellBuilder("lat", ports=["d", "q", "clk", "clk_b"])
    store = b.transparent_latch("d", "q", "clk", "clk_b")
    nodes = storage_of(b.build(), clocks=frozenset({"clk", "clk_b"}))
    target = next(n for n in nodes if n.net == store)
    assert target.static
    assert target.write_devices  # the input (and feedback) pass gates
    assert {"clk", "clk_b"} & target.enables


def test_dynamic_latch_storage_node():
    """Pass gate into an inverter with no feedback: dynamic storage."""
    b = CellBuilder("dynlat", ports=["d", "q", "clk", "clk_b"])
    b.transmission_gate("d", "store", "clk", "clk_b")
    b.inverter("store", "q")
    nodes = storage_of(b.build(), clocks=frozenset({"clk", "clk_b"}))
    target = next(n for n in nodes if n.net == "store")
    assert not target.static
    assert target.kind == "pass_written"


def test_latch_input_port_not_storage():
    b = CellBuilder("dynlat", ports=["d", "q", "clk", "clk_b"])
    b.transmission_gate("d", "store", "clk", "clk_b")
    b.inverter("store", "q")
    nodes = storage_of(b.build(), clocks=frozenset({"clk", "clk_b"}))
    assert all(n.net != "d" for n in nodes)


def test_strongly_driven_net_not_pass_storage():
    """A net with a real gate driver that also feeds a mux is not storage."""
    b = CellBuilder("c", ports=["a", "s", "y", "z"])
    b.inverter("a", "mid")        # strong driver of mid
    b.nmos_pass("mid", "z", "s")  # mid also routes through a pass device
    b.inverter("mid", "y")
    nodes = storage_of(b.build())
    assert all(n.net != "mid" for n in nodes)


def test_combinational_design_has_no_storage():
    b = CellBuilder("comb", ports=["a", "b", "y"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "y")
    assert storage_of(b.build()) == []


def test_dcvsl_not_reported_as_storage():
    b = CellBuilder("dcvsl", ports=["a", "a_b", "t", "f"])
    b.dcvsl(["a"], ["a_b"], "t", "f")
    b.inverter("t", "to")  # give outputs gate loads
    b.inverter("f", "fo")
    nodes = storage_of(b.build())
    assert all(n.net not in ("t", "f") for n in nodes)
