"""Unit tests for repro.recognition.direction."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.direction import FlowDirection, infer_pass_flow
from repro.recognition.recognizer import recognize


def flows_for(build, ports):
    b = CellBuilder("dut", ports=ports)
    build(b)
    return infer_pass_flow(recognize(flatten(b.build())))


def test_single_mux_flow():
    """Port inputs are sources; the mux output is forward... unless both
    sources can reach it, which for a mux they can (shared node)."""
    def build(b):
        b.nmos_pass("in0", "out", "s0")
        b.nmos_pass("in1", "out", "s1")
        b.inverter("out", "y")

    (flow,) = flows_for(build, ["in0", "in1", "s0", "s1", "y"])
    assert flow.direction("in0") is FlowDirection.SOURCE
    assert flow.direction("in1") is FlowDirection.SOURCE
    # Both sources reach the shared output: conservatively bidirectional.
    assert flow.direction("out") is FlowDirection.BIDIRECTIONAL


def test_single_source_chain_is_forward():
    def build(b):
        b.nmos_pass("d", "m1", "en0")
        b.nmos_pass("m1", "m2", "en1")
        b.inverter("m2", "y")

    (flow,) = flows_for(build, ["d", "en0", "en1", "y"])
    assert flow.direction("d") is FlowDirection.SOURCE
    assert flow.direction("m1") is FlowDirection.FORWARD
    assert flow.direction("m2") is FlowDirection.FORWARD


def test_gate_driven_source_recognized():
    """A pass network fed by an inverter output: the inverter's output
    would merge into the CCC, so feed it through a port instead and use
    a separate restoring stage reading the far end."""
    def build(b):
        b.transmission_gate("din", "store", "clk", "clk_b")
        b.inverter("store", "q")

    (flow,) = flows_for(build, ["din", "clk", "clk_b", "q"])
    assert flow.direction("din") is FlowDirection.SOURCE
    assert flow.direction("store") is FlowDirection.FORWARD


def test_isolated_segment():
    def build(b):
        b.nmos_pass("float_a", "float_b", "en")  # neither side driven
        b.inverter("float_b", "y")

    (flow,) = flows_for(build, ["en", "y"])
    assert flow.direction("float_a") is FlowDirection.ISOLATED
    assert flow.direction("float_b") is FlowDirection.ISOLATED


def test_no_pass_networks_no_flows():
    def build(b):
        b.nand(["a", "bb"], "y")

    assert flows_for(build, ["a", "bb", "y"]) == []
