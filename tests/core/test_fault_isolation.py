"""Injected-fault suite: no check or stage may kill a campaign run.

Covers the fault-isolation contract end to end: crashing / hanging /
worker-killing checks in serial, ``parallel=2``, and inside a full
campaign; stage-level ERROR degradation; the structured trace; and the
triage dedupe/waiver regressions.
"""

import json
import os
import time

import pytest

from repro.checks.base import Check, Severity
from repro.checks.beta import BetaRatioCheck, DeviceSizeCheck
from repro.checks.driver import make_context
from repro.checks.registry import run_battery
from repro.core.campaign import CbvCampaign, CbvReport, DesignBundle
from repro.core.report import render_report, render_trace, report_to_dict
from repro.core.stages import FlowStage, StageStatus
from repro.core.trace import CampaignTrace
from repro.core.triage import DesignerQueue, QueueItem
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.perf import DesignCache
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


# Module-level check classes: they must be picklable for the pool tests.

class BoomCheck(Check):
    """Raises unconditionally."""

    name = "boom"

    def run(self, ctx):
        raise RuntimeError("kaboom")


class SlothCheck(Check):
    """Hangs well past any reasonable test budget."""

    name = "sloth"

    def run(self, ctx):
        time.sleep(2.0)
        return []


class WorkerKillerCheck(Check):
    """Hard-kills its process: simulates a segfaulting tool."""

    name = "worker_killer"

    def run(self, ctx):
        os._exit(3)


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


@pytest.fixture(scope="module")
def ctx(tech):
    b = CellBuilder("dut", ports=["a", "b", "y", "q", "clk", "clk_b"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    return make_context(flatten(b.build()), tech,
                        clock=TwoPhaseClock(period_s=6.25e-9),
                        clock_hints=["clk", "clk_b"])


def make_bundle(tech, **overrides):
    b = CellBuilder("dp", ports=["a", "b", "c", "y", "q", "clk", "clk_b"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "and_ab")
    b.nor(["and_ab", "c"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    defaults = dict(
        name="dp",
        cell=b.build(),
        technology=tech,
        clock=TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9),
        clock_hints=("clk", "clk_b"),
        rtl_intent={"y": lambda a, b, c: not ((a and b) or c)},
        rtl_inputs={"y": ("a", "b", "c")},
    )
    defaults.update(overrides)
    return DesignBundle(**defaults)


CRASHY = (BetaRatioCheck, BoomCheck, DeviceSizeCheck)


def shapes(findings):
    return [(f.check, f.subject, f.severity, f.message) for f in findings]


# ---- battery crash isolation -------------------------------------------------


def test_serial_raising_check_becomes_crash_finding(ctx):
    result = run_battery(ctx, checks=CRASHY)
    crash = result.of_check("boom")
    assert len(crash) == 1
    assert crash[0].severity is Severity.VIOLATION
    assert crash[0].subject == "check:boom"
    assert "RuntimeError: kaboom" in crash[0].message
    assert "Traceback" in crash[0].detail and "kaboom" in crash[0].detail
    assert result.crashes.keys() == {"boom"}
    # The healthy neighbours still ran in full.
    assert result.of_check("beta_ratio") and result.of_check("device_size")
    # The crash sits in the crashed check's registry slot.
    order = [f.check for f in result.findings]
    assert order.index("boom") > order.index("beta_ratio")
    assert order.index("boom") < order.index("device_size")


def test_parallel_crash_findings_match_serial_order(ctx):
    serial = run_battery(ctx, checks=CRASHY)
    par = run_battery(ctx, checks=CRASHY, parallel=2)
    assert shapes(par.findings) == shapes(serial.findings)
    assert par.crashes.keys() == {"boom"}
    assert par.queues.stats().violations == serial.queues.stats().violations


def test_serial_timeout_becomes_crash_finding(ctx):
    start = time.perf_counter()
    result = run_battery(ctx, checks=(SlothCheck, BetaRatioCheck),
                         timeout_s=0.1)
    assert time.perf_counter() - start < 1.5  # did not wait out the hang
    crash = result.of_check("sloth")
    assert len(crash) == 1
    assert crash[0].severity is Severity.VIOLATION
    assert "timed out" in crash[0].message
    assert result.of_check("beta_ratio")


def test_parallel_timeout_becomes_crash_finding(ctx):
    result = run_battery(ctx, checks=(SlothCheck, BetaRatioCheck),
                         parallel=2, timeout_s=0.3)
    crash = result.of_check("sloth")
    assert len(crash) == 1 and "timed out" in crash[0].message
    assert result.of_check("beta_ratio")
    assert "sloth" in result.crashes


def test_worker_death_is_isolated_and_attributed(ctx):
    result = run_battery(
        ctx, checks=(BetaRatioCheck, WorkerKillerCheck, DeviceSizeCheck),
        parallel=2, retries=1)
    crash = result.of_check("worker_killer")
    assert len(crash) == 1
    assert crash[0].severity is Severity.VIOLATION
    assert "worker" in crash[0].message
    # The innocent checks are byte-identical to a serial run without the killer.
    clean = run_battery(ctx, checks=(BetaRatioCheck, DeviceSizeCheck))
    assert result.of_check("beta_ratio") == clean.of_check("beta_ratio")
    assert result.of_check("device_size") == clean.of_check("device_size")


def test_battery_rejects_bad_knobs(ctx):
    with pytest.raises(ValueError):
        run_battery(ctx, timeout_s=0.0)
    with pytest.raises(ValueError):
        run_battery(ctx, retries=-1)


# ---- campaign degradation ----------------------------------------------------


def test_campaign_survives_crashing_check(tech):
    report = CbvCampaign(make_bundle(tech)).run(checks=CRASHY)
    circuit = report.stage(FlowStage.CIRCUIT_VERIFICATION)
    assert circuit.status is StageStatus.FAIL
    assert circuit.metrics["check_crashes"] == 1.0
    # The crash is a queue violation: the design cannot tape out on a
    # broken tool's silence.
    assert not report.queue.tapeout_clean()
    assert any(i.source == "boom" and i.subject == "check:boom"
               for i in report.queue.open_violations())
    # Timing still ran.
    assert report.stage(FlowStage.TIMING_VERIFICATION).status is StageStatus.PASS
    assert report.trace.of("check_crash")


def test_campaign_parallel_crash_matches_serial(tech):
    serial = CbvCampaign(make_bundle(tech)).run(checks=CRASHY)
    par = CbvCampaign(make_bundle(tech)).run(checks=CRASHY, parallel=2)
    assert ([i.identity() for i in par.queue.items]
            == [i.identity() for i in serial.queue.items])
    assert ([(s.stage, s.status) for s in par.stages]
            == [(s.stage, s.status) for s in serial.stages])


def test_campaign_stage_error_degrades_not_dies(tech, monkeypatch):
    def bad_macrocell(*args, **kwargs):
        raise RuntimeError("placer exploded")

    monkeypatch.setattr("repro.core.campaign.generate_macrocell",
                        bad_macrocell)
    report = CbvCampaign(make_bundle(tech)).run()
    layout = report.stage(FlowStage.LAYOUT)
    assert layout.status is StageStatus.ERROR
    assert not layout.ok()
    assert "placer exploded" in layout.summary
    assert any("placer exploded" in line for line in layout.details)
    # Extraction fell back to wireload; everything downstream still ran.
    extraction = report.stage(FlowStage.EXTRACTION)
    assert extraction.status is StageStatus.PASS
    assert "wireload fallback" in extraction.summary
    for flow in (FlowStage.LOGIC_VERIFICATION,
                 FlowStage.CIRCUIT_VERIFICATION,
                 FlowStage.TIMING_VERIFICATION):
        assert report.stage(flow).status is not StageStatus.SKIPPED
    assert not report.ok()
    assert report.errored_stages() == [layout]
    # The trace carries the stage crash with its traceback.
    errors = [e for e in report.trace.crashes() if e.name == "layout"]
    assert errors and "placer exploded" in errors[0].detail
    assert "ERR!" in render_report(report)


def test_campaign_skips_true_dependents_after_recognition_error(
        tech, monkeypatch):
    def bad_recognize(*args, **kwargs):
        raise ValueError("recognizer choked")

    monkeypatch.setattr("repro.core.campaign.recognize", bad_recognize)
    report = CbvCampaign(make_bundle(tech)).run()
    assert report.stage(FlowStage.RECOGNITION).status is StageStatus.ERROR
    # Layout/extraction only need the flat netlist: they still run.
    assert report.stage(FlowStage.LAYOUT).status is StageStatus.PASS
    assert report.stage(FlowStage.EXTRACTION).status is StageStatus.PASS
    # True dependents of recognition are skipped, with the reason named.
    for flow in (FlowStage.LOGIC_VERIFICATION,
                 FlowStage.CIRCUIT_VERIFICATION,
                 FlowStage.TIMING_VERIFICATION):
        result = report.stage(flow)
        assert result.status is StageStatus.SKIPPED
        assert "missing upstream artifact" in result.summary
    assert not report.ok()
    assert report.trace.of("stage_skipped")


# ---- CbvReport.stage default -------------------------------------------------


def test_report_stage_default_and_error_message():
    report = CbvReport(bundle_name="empty")
    assert report.stage(FlowStage.TIMING_VERIFICATION, default=None) is None
    sentinel = object()
    assert report.stage(FlowStage.LAYOUT, default=sentinel) is sentinel
    with pytest.raises(KeyError) as err:
        report.stage(FlowStage.TIMING_VERIFICATION)
    assert "stages that ran: none" in str(err.value)


def test_report_stage_error_names_ran_stages(tech):
    report = CbvCampaign(make_bundle(tech)).run()
    with pytest.raises(KeyError) as err:
        report.stage(FlowStage.BEHAVIORAL_RTL)
    assert "schematic" in str(err.value)


# ---- structured trace --------------------------------------------------------


def test_campaign_trace_is_well_formed_jsonl(tech):
    report = CbvCampaign(make_bundle(tech)).run()
    text = report.trace.to_jsonl()
    lines = [line for line in text.splitlines() if line]
    records = [json.loads(line) for line in lines]
    assert records[0]["event"] == "campaign_start"
    assert records[-1]["event"] == "campaign_end"
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert all(r["t_s"] >= 0 for r in records)
    starts = [r for r in records if r["event"] == "stage_start"]
    ends = [r for r in records if r["event"] == "stage_end"]
    assert len(starts) == len(ends) == 7
    assert all(e.get("wall_s", 0.0) >= 0.0 for e in ends)
    # The battery's own events are in there too.
    assert any(r["event"] == "battery_start" for r in records)
    assert any(r["event"] == "check_end" for r in records)
    # Stage metrics (incl. perf counters) ride on the stage_end events.
    rec_end = next(e for e in ends if e["name"] == "recognition")
    assert rec_end["counters"]["cccs"] >= 1
    # Round trip.
    rebuilt = CampaignTrace.from_jsonl(text)
    assert [e.to_dict() for e in rebuilt.events] == records
    assert render_trace(report.trace)


def test_trace_serialized_into_report_dict(tech):
    report = CbvCampaign(make_bundle(tech)).run()
    data = report_to_dict(report)
    assert data["trace"] == report.trace.to_dicts()
    json.dumps(data)  # fully JSON-serializable


# ---- make_context routing + cache --------------------------------------------


def test_campaign_routes_through_make_context(tech, monkeypatch):
    calls = []
    import repro.core.campaign as campaign_mod
    real = campaign_mod.make_context

    def spy(*args, **kwargs):
        calls.append(kwargs)
        return real(*args, **kwargs)

    monkeypatch.setattr("repro.core.campaign.make_context", spy)
    cache = DesignCache()
    report = CbvCampaign(make_bundle(tech)).run(cache=cache)
    assert report.ok(), render_report(report)
    assert len(calls) == 1
    assert calls[0]["cache"] is cache
    assert calls[0]["design"] is report.design
    # Recognition went through the cache exactly once.
    assert cache.misses >= 1
    assert cache.recognized(report.flat, clock_hints=("clk", "clk_b")) \
        is report.design  # now a hit
    assert cache.hits >= 1


def test_campaign_parallel_battery_matches_serial(tech):
    serial = CbvCampaign(make_bundle(tech)).run()
    par = CbvCampaign(make_bundle(tech)).run(parallel=2, cache=DesignCache())
    assert ([i.identity() for i in par.queue.items]
            == [i.identity() for i in serial.queue.items])
    assert par.ok() == serial.ok()


# ---- triage regressions ------------------------------------------------------


def test_duplicate_findings_collapse_with_count():
    from repro.checks.base import Finding
    queue = DesignerQueue()
    f = Finding(check="coupling", subject="n1",
                severity=Severity.VIOLATION, message="droop 0.5 V")
    queue.add_findings([f, f, f])
    assert len(queue.items) == 1
    assert queue.items[0].count == 3
    # A different message under the same key stays its own item.
    other = Finding(check="coupling", subject="n1",
                    severity=Severity.VIOLATION, message="droop 0.9 V")
    queue.add_findings([other])
    assert len(queue.items) == 2


def test_waive_signs_off_exactly_one_open_item():
    queue = DesignerQueue()
    queue.items.append(QueueItem("coupling", "n1", Severity.VIOLATION, "m1"))
    queue.items.append(QueueItem("coupling", "n1", Severity.VIOLATION, "m2"))
    assert queue.waive("coupling", "n1", "shielded") == 1
    assert [i.waived for i in queue.items] == [True, False]
    assert not queue.tapeout_clean()
    assert queue.waive("coupling", "n1", "also shielded") == 1
    assert queue.tapeout_clean()
    with pytest.raises(KeyError, match="already waived"):
        queue.waive("coupling", "n1", "third time")


def test_waive_all_matching_is_explicit():
    queue = DesignerQueue()
    queue.items.append(QueueItem("coupling", "n1", Severity.VIOLATION, "m1"))
    queue.items.append(QueueItem("coupling", "n1", Severity.VIOLATION, "m2"))
    assert queue.waive("coupling", "n1", "bulk waiver",
                       all_matching=True) == 2
    assert queue.tapeout_clean()


def test_timing_duplicates_deduplicate():
    from repro.timing.analyzer import TimingPath
    queue = DesignerQueue()
    path = TimingPath(endpoint="q", nets=["a", "q"], arrival_s=1e-9,
                      slack_s=-0.5e-9)
    queue.add_timing([path, path], [])
    assert len(queue.items) == 1
    assert queue.items[0].count == 2
