"""Unit tests for repro.core.feasibility: the Figure-2 bottom-to-top
implementation studies, on the paper-natural example (static ripple
adder vs domino adder for the same RTL function)."""

import pytest

from repro.core.feasibility import compare_implementations, render_study
from repro.designs.adders import domino_carry_adder, ripple_carry_adder
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


@pytest.fixture(scope="module")
def study():
    tech = strongarm_technology()
    clock = TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9)
    rows = compare_implementations(
        {
            "static_ripple": ripple_carry_adder(4),
            "domino_carry": domino_carry_adder(4),
        },
        tech, clock,
    )
    return {row.name: row for row in rows}


def test_study_covers_both_candidates(study):
    assert set(study) == {"static_ripple", "domino_carry"}
    for row in study.values():
        assert row.transistors > 0
        assert row.area_estimate_um2 > 0
        assert row.min_cycle_s > 0
        assert row.dynamic_power_w > 0
        assert row.leakage_power_w > 0


def test_study_sees_the_style_difference(study):
    """The study's whole point: the implementations differ measurably."""
    static = study["static_ripple"]
    domino = study["domino_carry"]
    assert static.dynamic_nodes == 0
    assert domino.dynamic_nodes == 4
    # The domino adder burns clock power the static one does not; at the
    # same function its dynamic power is higher.
    assert domino.dynamic_power_w > static.dynamic_power_w
    # Neither candidate arrives broken.
    assert static.violations == 0
    assert domino.violations == 0


def test_study_frequencies_plausible(study):
    for row in study.values():
        assert 10 < row.max_frequency_mhz() < 10000


def test_render_study(study):
    text = render_study(list(study.values()))
    assert "static_ripple" in text
    assert "domino_carry" in text
    assert "min cyc ns" in text


def test_compare_validation():
    tech = strongarm_technology()
    with pytest.raises(ValueError):
        compare_implementations({}, tech, TwoPhaseClock(period_s=1e-9))
