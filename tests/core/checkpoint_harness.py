"""Subprocess harness for the kill-and-resume acceptance test.

Run as ``python checkpoint_harness.py <mode> <store_dir> <out_path>``:

``kill``
    Run the campaign against ``store_dir`` with a hostile check appended
    that SIGKILLs the process mid-battery -- after every earlier stage
    has durably checkpointed, before the circuit stage can.  The process
    therefore never exits normally (the driver asserts on the -9).
``resume``
    Resume from ``store_dir`` with the *normal* check list, write the
    canonical report JSON to ``out_path``, and print one trace-event
    name per stdout line.
``cold``
    Same design, no store at all -- the reference run.

The design, clocks, and RTL intent live here (module level) so all
three subprocess invocations hash identical lambda code objects.
"""

import os
import signal
import sys

from repro.checks.base import Check
from repro.checks.registry import ALL_CHECKS
from repro.core.campaign import CbvCampaign, DesignBundle
from repro.core.report import report_to_json
from repro.netlist.builder import CellBuilder
from repro.process.technology import strongarm_technology
from repro.store import ArtifactStore
from repro.timing.clocking import TwoPhaseClock


def make_bundle() -> DesignBundle:
    b = CellBuilder("dp", ports=["a", "b", "c", "y", "q", "clk", "clk_b"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "and_ab")
    b.nor(["and_ab", "c"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    return DesignBundle(
        name="dp",
        cell=b.build(),
        technology=strongarm_technology(),
        clock=TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9),
        clock_hints=("clk", "clk_b"),
        rtl_intent={"y": lambda a, b, c: not ((a and b) or c)},
        rtl_inputs={"y": ("a", "b", "c")},
    )


class KillerCheck(Check):
    """Simulates a machine crash partway through the check battery."""

    name = "killer"

    def run(self, ctx):
        os.kill(os.getpid(), signal.SIGKILL)


def main() -> int:
    mode, store_dir, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
    bundle = make_bundle()
    if mode == "kill":
        store = ArtifactStore(store_dir)
        # killer last: the battery genuinely starts before the lights go out
        CbvCampaign(bundle).run(store=store,
                                checks=ALL_CHECKS + (KillerCheck,))
        print("survived a SIGKILL?!")
        return 3
    if mode == "resume":
        report = CbvCampaign(bundle).run(store=ArtifactStore(store_dir),
                                         resume=True)
    elif mode == "cold":
        report = CbvCampaign(bundle).run()
    else:
        print(f"unknown mode {mode!r}")
        return 2
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(report_to_json(report, canonical=True))
    for event in report.trace.events:
        print(event.event)
    return 0


if __name__ == "__main__":
    sys.exit(main())
