"""Checkpoint/resume acceptance tests.

The contract (DESIGN.md "Checkpoint contract"): a resumed campaign's
canonical report is byte-identical to a cold run's; corrupt blobs
degrade to re-execution with a ``checkpoint.corrupt`` trace event; and a
SIGKILL mid-battery loses at most the in-flight stage.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.core.campaign import CbvCampaign, DesignBundle
from repro.core.report import report_to_json
from repro.core.stages import FlowStage, StageStatus
from repro.netlist.builder import CellBuilder
from repro.process.technology import strongarm_technology
from repro.store import ArtifactStore, stage_keys
from repro.timing.clocking import TwoPhaseClock

HARNESS = Path(__file__).with_name("checkpoint_harness.py")
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def make_bundle(**overrides):
    b = CellBuilder("dp", ports=["a", "b", "c", "y", "q", "clk", "clk_b"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "and_ab")
    b.nor(["and_ab", "c"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    defaults = dict(
        name="dp",
        cell=b.build(),
        technology=strongarm_technology(),
        clock=TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9),
        clock_hints=("clk", "clk_b"),
        rtl_intent={"y": lambda a, b, c: not ((a and b) or c)},
        rtl_inputs={"y": ("a", "b", "c")},
    )
    defaults.update(overrides)
    return DesignBundle(**defaults)


def canonical(report) -> str:
    return report_to_json(report, canonical=True)


def hits(report) -> list[str]:
    return [e.name for e in report.trace.events if e.event == "checkpoint.hit"]


# -- in-process resume ------------------------------------------------------


def test_resume_is_byte_identical_to_cold_run(tmp_path):
    cold = CbvCampaign(make_bundle()).run()
    store = ArtifactStore(tmp_path / "store")
    first = CbvCampaign(make_bundle()).run(store=store)
    resumed = CbvCampaign(make_bundle()).run(store=store, resume=True)

    assert canonical(first) == canonical(cold)
    assert canonical(resumed) == canonical(cold)
    # every stage with a verdict replayed: all seven (logic has RTL intent)
    assert len(hits(resumed)) == 7
    assert store.counters()["store_corrupt"] == 0
    # a resumed run re-executes nothing, so it writes nothing
    assert not [e for e in resumed.trace.events
                if e.event == "checkpoint.write"]


def test_resume_restores_downstream_artifacts(tmp_path):
    """Replayed stages must leave the report as populated as execution
    would: flat netlist, recognized design, and timing report."""
    store = ArtifactStore(tmp_path / "store")
    CbvCampaign(make_bundle()).run(store=store)
    resumed = CbvCampaign(make_bundle()).run(store=store, resume=True)
    assert resumed.flat is not None
    assert resumed.design is not None
    assert resumed.timing is not None
    assert resumed.ok()


def test_corrupt_checkpoint_degrades_to_rerun(tmp_path):
    bundle = make_bundle()
    store = ArtifactStore(tmp_path / "store")
    cold = CbvCampaign(bundle).run(store=store)

    # run() defaults checks=ALL_CHECKS; replicate for the circuit key
    from repro.checks.registry import ALL_CHECKS
    keys = stage_keys(bundle, checks=ALL_CHECKS, timeout_s=None)
    blob = store._path(keys[FlowStage.CIRCUIT_VERIFICATION])
    raw = blob.read_bytes()
    blob.write_bytes(raw[: len(raw) // 2])  # torn write

    resumed = CbvCampaign(make_bundle()).run(store=store, resume=True)
    corrupt = [e for e in resumed.trace.events
               if e.event == "checkpoint.corrupt"]
    assert corrupt and corrupt[0].name == "circuit_verification"
    assert list(store.quarantine_dir.iterdir())
    # the stage re-ran and re-checkpointed
    assert [e.name for e in resumed.trace.events
            if e.event == "checkpoint.write"] == ["circuit_verification"]
    assert canonical(resumed) == canonical(cold)


def test_skipped_stage_is_never_checkpointed(tmp_path):
    bundle = make_bundle(rtl_intent={}, rtl_inputs={})
    store = ArtifactStore(tmp_path / "store")
    CbvCampaign(bundle).run(store=store)
    resumed = CbvCampaign(make_bundle(rtl_intent={}, rtl_inputs={})).run(
        store=store, resume=True)
    assert resumed.stage(FlowStage.LOGIC_VERIFICATION).status \
        is StageStatus.SKIPPED
    assert "logic_verification" not in hits(resumed)
    assert len(hits(resumed)) == 6


def test_design_edit_invalidates_only_affected_stages(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    CbvCampaign(make_bundle()).run(store=store)

    cell = make_bundle().cell
    cell.transistors[0].w_um *= 2
    resumed = CbvCampaign(make_bundle(cell=cell)).run(store=store,
                                                      resume=True)
    # geometry is an input of every stage: nothing replays, all re-run
    assert hits(resumed) == []
    assert canonical(resumed) == canonical(
        CbvCampaign(make_bundle(cell=cell)).run())


# -- kill -9 mid-battery, then resume --------------------------------------


def run_harness(mode: str, store_dir, out_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    return subprocess.run(
        [sys.executable, str(HARNESS), mode, str(store_dir), str(out_path)],
        capture_output=True, text=True, env=env, timeout=300)


def test_sigkill_mid_battery_then_resume_matches_cold(tmp_path):
    store_dir = tmp_path / "store"

    killed = run_harness("kill", store_dir, tmp_path / "unused.json")
    assert killed.returncode == -signal.SIGKILL, killed.stdout + killed.stderr
    # the kill landed mid-battery: earlier stages checkpointed, the
    # battery's own stage did not
    survived = ArtifactStore(store_dir).keys()
    assert len(survived) >= 4

    resumed = run_harness("resume", store_dir, tmp_path / "resumed.json")
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    events = resumed.stdout.split()
    assert "checkpoint.hit" in events
    assert "checkpoint.corrupt" not in events

    cold = run_harness("cold", store_dir, tmp_path / "cold.json")
    assert cold.returncode == 0, cold.stdout + cold.stderr

    resumed_json = (tmp_path / "resumed.json").read_text()
    cold_json = (tmp_path / "cold.json").read_text()
    assert resumed_json == cold_json
