"""Tests for worker-stamped trace events and deterministic merging."""

from repro.core.campaign import CbvReport
from repro.core.report import report_to_dict
from repro.core.trace import CampaignTrace, TraceEvent


def test_single_process_serialization_is_unchanged():
    trace = CampaignTrace()
    trace.emit("stage_start", name="schematic")
    d = trace.to_dicts()[0]
    assert "worker" not in d  # empty worker id stays off the wire
    assert TraceEvent.from_dict(d).worker == ""


def test_worker_id_stamps_every_event_and_round_trips():
    trace = CampaignTrace(worker_id="w3")
    trace.emit("job_start", name="dp:prepare")
    trace.emit("job_end", name="dp:prepare", status="ok")
    assert all(e.worker == "w3" for e in trace.events)
    dicts = trace.to_dicts()
    assert all(d["worker"] == "w3" for d in dicts)
    restored = CampaignTrace.from_dicts(dicts)
    # Compare the wire form: to_dict rounds clock readings, so the
    # serialized stream (not raw float identity) is the invariant.
    assert restored.to_dicts() == dicts


def test_replay_restamps_worker_seq_and_clock():
    src = CampaignTrace(worker_id="w1")
    src.emit("check_end", name="charge_sharing", status="ok", wall_s=0.5,
             counters={"findings": 2.0})
    dst = CampaignTrace(worker_id="w2")
    dst.emit("battery_start")
    dst.replay(src.to_dicts())
    replayed = dst.events[1]
    assert replayed.worker == "w2" and replayed.seq == 1
    # Content survives; only the identity stamps are local.
    assert replayed.name == "charge_sharing"
    assert replayed.wall_s == 0.5
    assert replayed.counters == {"findings": 2.0}


def test_merge_orders_by_worker_then_seq_regardless_of_input_order():
    fleet = CampaignTrace(worker_id="fleet")
    fleet.emit("fleet_start")
    w0 = CampaignTrace(worker_id="w0")
    w0.emit("job_start", name="a")
    w0.emit("job_end", name="a")
    w1 = CampaignTrace(worker_id="w1")
    w1.emit("job_start", name="b")

    forward = CampaignTrace.merge([fleet, w0, w1])
    # One source as raw dicts, sources shuffled: same merged log.
    backward = CampaignTrace.merge([w1.to_dicts(), fleet, w0])
    assert forward.to_dicts() == backward.to_dicts()
    keys = [(e.worker, e.seq) for e in forward.events]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)
    assert [e.worker for e in forward.events] == ["fleet", "w0", "w0", "w1"]


def test_canonical_report_strips_worker_ids_and_worker_counts():
    trace = CampaignTrace(worker_id="w7")
    trace.emit("battery_start",
               counters={"checks": 17.0, "workers": 4.0})
    trace.emit("check_end", name="erc", status="ok", wall_s=0.1)
    report = CbvReport(bundle_name="dp", trace=trace)

    full = report_to_dict(report)["trace"]
    assert full[0]["worker"] == "w7"
    assert full[0]["counters"]["workers"] == 4.0

    canonical = report_to_dict(report, canonical=True)["trace"]
    for event in canonical:
        assert "worker" not in event
        assert "wall_s" not in event and "seq" not in event
    # The shard/process count is run mechanics, not a verdict.
    assert canonical[0]["counters"] == {"checks": 17.0}
