"""Unit tests for the JSON report export."""

import json

from repro.core.campaign import CbvCampaign, DesignBundle
from repro.core.report import report_to_dict, report_to_json
from repro.netlist.builder import CellBuilder
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


def make_report():
    b = CellBuilder("jdut", ports=["a", "bb", "y", "q", "clk", "clk_b"])
    b.nand(["a", "bb"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    bundle = DesignBundle(
        name="jdut",
        cell=b.build(),
        technology=strongarm_technology(),
        clock=TwoPhaseClock(period_s=6.25e-9),
        clock_hints=("clk", "clk_b"),
        use_layout=False,
    )
    return CbvCampaign(bundle).run()


def test_report_dict_shape():
    report = make_report()
    data = report_to_dict(report)
    assert data["design"] == "jdut"
    assert isinstance(data["ok"], bool)
    stages = {s["stage"] for s in data["stages"]}
    assert "timing_verification" in stages
    assert "circuit_verification" in stages
    for stage in data["stages"]:
        assert set(stage) == {"stage", "status", "summary", "metrics",
                              "details"}


def test_report_json_round_trips():
    report = make_report()
    text = report_to_json(report)
    parsed = json.loads(text)
    assert parsed == json.loads(report_to_json(report))
    assert parsed["tapeout_clean"] == report.queue.tapeout_clean()


def test_queue_items_serialized():
    report = make_report()
    data = report_to_dict(report)
    for item in data["queue"]:
        assert item["severity"] in ("filtered", "violation")
        assert isinstance(item["waived"], bool)
