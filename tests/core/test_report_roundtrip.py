"""``report_from_dict`` is the exact inverse of ``report_to_dict``.

Checkpoint/resume leans on this: a replayed stage's result is exactly
what the cold run would have produced, so the serialized report must
survive a dict round trip for *every* stage status -- including ERROR
stages whose tracebacks ride in ``details`` and in trace-event
``detail`` fields.
"""

import json

import pytest

from repro.checks.base import Severity
from repro.core.campaign import CbvCampaign, CbvReport, DesignBundle
from repro.core.report import report_from_dict, report_to_dict, report_to_json
from repro.core.stages import FlowStage, StageResult, StageStatus
from repro.core.trace import TraceEvent
from repro.core.triage import QueueItem
from repro.netlist.builder import CellBuilder
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock

FAKE_TRACEBACK = (
    "Traceback (most recent call last):\n"
    '  File "checks/driver.py", line 99, in run\n'
    "    raise RuntimeError('extractor died')\n"
    "RuntimeError: extractor died\n"
)


def synthetic_report(status: StageStatus) -> CbvReport:
    """A hand-built report exercising one stage status plus the common
    trimmings (metrics, details, queue waivers, trace events).

    Trace timestamps are pre-rounded to 6 decimals because ``to_dict``
    rounds them; the inverse can only be exact for values the forward
    direction did not truncate.
    """
    report = CbvReport(bundle_name=f"synth-{status.value}")
    detail = [FAKE_TRACEBACK] if status is StageStatus.ERROR else ["note a", "note b"]
    report.stages.append(StageResult(
        stage=FlowStage.SCHEMATIC, status=StageStatus.PASS,
        summary="flattened", metrics={"nets": 12.0, "transistors": 8.0},
    ))
    report.stages.append(StageResult(
        stage=FlowStage.CIRCUIT_VERIFICATION, status=status,
        summary=f"synthetic {status.value}",
        metrics={"findings": 3.0}, details=detail,
    ))
    report.queue.items.append(QueueItem(
        source="beta_ratio", subject="top/inv1", severity=Severity.VIOLATION,
        message="ratio out of band", count=2,
    ))
    report.queue.items.append(QueueItem(
        source="charge_share", subject="top/dyn3", severity=Severity.FILTERED,
        message="shared node below threshold", waived=True,
        waive_reason="signed off 1997-03-01", count=1,
    ))
    events = [
        TraceEvent(seq=0, t_s=0.0, event="campaign_start",
                   name=report.bundle_name),
        TraceEvent(seq=1, t_s=0.00125, event="stage_end", name="schematic",
                   status="pass", wall_s=0.001, counters={"nets": 12.0}),
        TraceEvent(seq=2, t_s=0.002,
                   event="stage_end", name="circuit_verification",
                   status=status.value, wall_s=0.0005,
                   detail=FAKE_TRACEBACK if status is StageStatus.ERROR else ""),
        TraceEvent(seq=3, t_s=0.002375, event="campaign_end",
                   name=report.bundle_name,
                   counters={"stages": 2.0, "cache_hits": 5.0}),
    ]
    report.trace.events = events
    return report


@pytest.mark.parametrize("status", list(StageStatus))
def test_roundtrip_exact_for_every_status(status):
    report = synthetic_report(status)
    restored = report_from_dict(report_to_dict(report))
    assert restored == report
    # and the JSON text re-serializes identically
    assert report_to_json(restored) == report_to_json(report)


def test_roundtrip_restores_error_traceback():
    report = synthetic_report(StageStatus.ERROR)
    restored = report_from_dict(report_to_dict(report))
    stage = restored.stage(FlowStage.CIRCUIT_VERIFICATION)
    assert stage.status is StageStatus.ERROR
    assert FAKE_TRACEBACK in stage.details
    end = [e for e in restored.trace.events if e.event == "stage_end"
           and e.name == "circuit_verification"]
    assert end and end[0].detail == FAKE_TRACEBACK


def test_roundtrip_recomputes_rather_than_trusts_verdicts():
    report = synthetic_report(StageStatus.FAIL)
    data = report_to_dict(report)
    data["ok"] = True            # tampered
    data["tapeout_clean"] = True
    restored = report_from_dict(data)
    assert restored.ok() is False
    assert restored.queue.tapeout_clean() is False


def test_real_campaign_report_roundtrips_at_dict_level():
    """A live report's timestamps are not pre-rounded, so the guarantee
    there is dict-level: to_dict(from_dict(to_dict(r))) == to_dict(r)."""
    b = CellBuilder("rt", ports=["a", "bb", "y", "q", "clk", "clk_b"])
    b.nand(["a", "bb"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    bundle = DesignBundle(
        name="rt", cell=b.build(), technology=strongarm_technology(),
        clock=TwoPhaseClock(period_s=6.25e-9), clock_hints=("clk", "clk_b"),
        use_layout=False,
    )
    report = CbvCampaign(bundle).run()
    data = report_to_dict(report)
    again = report_to_dict(report_from_dict(data))
    assert json.dumps(again, sort_keys=True) == json.dumps(data, sort_keys=True)

    canon = report_to_dict(report, canonical=True)
    canon_again = report_to_dict(report_from_dict(canon), canonical=True)
    assert json.dumps(canon_again, sort_keys=True) == \
        json.dumps(canon, sort_keys=True)


def test_flat_design_timing_come_back_none():
    report = synthetic_report(StageStatus.PASS)
    restored = report_from_dict(report_to_dict(report))
    assert restored.flat is None
    assert restored.design is None
    assert restored.timing is None
