"""Unit tests for repro.core: the full CBV flow."""

import pytest

from repro.checks.base import Severity
from repro.core.campaign import CbvCampaign, DesignBundle
from repro.core.report import render_report
from repro.core.stages import FlowStage, StageStatus
from repro.core.triage import DesignerQueue, QueueItem
from repro.netlist.builder import CellBuilder
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def small_datapath_cell():
    b = CellBuilder("dp", ports=["a", "b", "c", "y", "q", "clk", "clk_b"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "and_ab")
    b.nor(["and_ab", "c"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    return b.build()


def make_bundle(tech, **overrides):
    defaults = dict(
        name="dp",
        cell=small_datapath_cell(),
        technology=tech,
        clock=TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9),
        clock_hints=("clk", "clk_b"),
        rtl_intent={"y": lambda a, b, c: not ((a and b) or c)},
        rtl_inputs={"y": ("a", "b", "c")},
    )
    defaults.update(overrides)
    return DesignBundle(**defaults)


def test_full_campaign_clean_design(tech):
    report = CbvCampaign(make_bundle(tech)).run()
    assert report.ok(), render_report(report)
    for stage in (FlowStage.SCHEMATIC, FlowStage.RECOGNITION,
                  FlowStage.LAYOUT, FlowStage.EXTRACTION,
                  FlowStage.LOGIC_VERIFICATION,
                  FlowStage.CIRCUIT_VERIFICATION,
                  FlowStage.TIMING_VERIFICATION):
        assert report.stage(stage).status is not StageStatus.FAIL
    assert report.stage(FlowStage.LOGIC_VERIFICATION).metrics["outputs_checked"] == 1
    assert report.timing is not None
    assert report.timing.min_cycle_time_s < 6.25e-9  # meets 160 MHz easily


def test_campaign_catches_wrong_logic(tech):
    bundle = make_bundle(
        tech,
        rtl_intent={"y": lambda a, b, c: not (a and b and c)},  # wrong intent
        rtl_inputs={"y": ("a", "b", "c")},
    )
    report = CbvCampaign(bundle).run()
    logic = report.stage(FlowStage.LOGIC_VERIFICATION)
    assert logic.status is StageStatus.FAIL
    assert logic.details  # counterexample recorded


def test_campaign_functional_sim_leg(tech):
    """Functional vectors ride the logic stage through the vector engine
    and surface the solve/skip perf counters in the stage metrics."""
    from repro.perf import DesignCache

    bundle = make_bundle(
        tech,
        functional_vectors=(
            {"a": 1, "b": 1, "c": 0, "clk": 0, "clk_b": 1},
            {"clk": 1, "clk_b": 0},   # latch opens: q follows y = 0
            {"clk": 0, "clk_b": 1},   # latch closes: q holds
        ),
        functional_probes=("y", "q"),
    )
    cache = DesignCache()
    report = CbvCampaign(bundle).run(cache=cache,
                                     until=FlowStage.LOGIC_VERIFICATION)
    logic = report.stage(FlowStage.LOGIC_VERIFICATION)
    assert logic.status is StageStatus.PASS, logic.details
    m = logic.metrics
    assert m["sim_steps"] == 3 and m["sim_events"] > 0
    assert m["solve_count"] + m["skip_count"] == m["naive_net_solves"]
    assert m["solve_count"] > 0
    # The vector engine's packed tables routed through the session cache.
    assert cache.misses >= 1


def test_campaign_functional_probe_x_fails(tech):
    bundle = make_bundle(
        tech,
        rtl_intent={}, rtl_inputs={},
        # Clock never driven: the latch output q must stay unknown.
        functional_vectors=({"a": 1, "b": 0, "c": 0},),
        functional_probes=("q",),
        sim_engine="reference",
    )
    report = CbvCampaign(bundle).run(until=FlowStage.LOGIC_VERIFICATION)
    logic = report.stage(FlowStage.LOGIC_VERIFICATION)
    assert logic.status is StageStatus.FAIL
    assert any("probe q" in d for d in logic.details)


def test_campaign_catches_electrical_defect(tech):
    """Seed a sub-minimum device: circuit verification must fail and the
    queue must carry the violation."""
    cell = small_datapath_cell()
    bad = next(t for t in cell.transistors if t.polarity == "nmos")
    bad.w_um = 0.1  # below manufacturable minimum
    bundle = make_bundle(tech, cell=cell)
    report = CbvCampaign(bundle).run()
    assert report.stage(FlowStage.CIRCUIT_VERIFICATION).status is StageStatus.FAIL
    assert not report.queue.tapeout_clean()
    assert any(i.source == "device_size" for i in report.queue.open_violations())


def test_campaign_catches_timing_failure(tech):
    bundle = make_bundle(tech, clock=TwoPhaseClock(period_s=30e-12))
    report = CbvCampaign(bundle).run()
    assert report.stage(FlowStage.TIMING_VERIFICATION).status is StageStatus.FAIL
    assert any(i.source == "timing.setup" for i in report.queue.open_violations())


def test_campaign_wireload_mode(tech):
    report = CbvCampaign(make_bundle(tech, use_layout=False)).run()
    assert report.stage(FlowStage.LAYOUT).status is StageStatus.SKIPPED
    assert report.stage(FlowStage.EXTRACTION).status is StageStatus.PASS


def test_render_report_contains_stages(tech):
    text = render_report(CbvCampaign(make_bundle(tech)).run())
    assert "CBV campaign: dp" in text
    assert "timing_verification" in text
    assert "designer queue" in text


def test_triage_queue_waivers():
    queue = DesignerQueue()
    queue.items.append(QueueItem(source="coupling", subject="n1",
                                 severity=Severity.VIOLATION, message="m"))
    queue.items.append(QueueItem(source="latch", subject="s1",
                                 severity=Severity.FILTERED, message="m"))
    assert not queue.tapeout_clean()
    with pytest.raises(ValueError):
        queue.waive("coupling", "n1", "   ")
    queue.waive("coupling", "n1", "shielded by routing plan rev B")
    assert queue.tapeout_clean()  # only FILTERED remains
    assert len(queue.open_items()) == 1
    with pytest.raises(KeyError):
        queue.waive("nosuch", "x", "reason")


def test_queue_priority_order():
    queue = DesignerQueue()
    queue.items.append(QueueItem("b_check", "s2", Severity.FILTERED, "m"))
    queue.items.append(QueueItem("a_check", "s1", Severity.VIOLATION, "m"))
    ordered = queue.open_items()
    assert ordered[0].severity is Severity.VIOLATION
