"""Unit tests for repro.shadow: mixed RTL + circuit simulation."""

import pytest

from repro.designs.adders import ripple_carry_adder
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.rtl.constructs import two_phase_register, xadd
from repro.rtl.module import RtlModule
from repro.rtl.signals import Signal
from repro.rtl.simulator import PhaseSimulator
from repro.shadow.binding import ShadowBinding, bind_bus
from repro.shadow.shadowsim import ShadowSimulator
from repro.switchsim.engine import SwitchSimulator


def test_binding_validation():
    sig = Signal("s", width=4)
    binding = ShadowBinding()
    binding.drive("p0", sig, 0)
    with pytest.raises(ValueError):
        binding.drive("p0", sig, 1)  # duplicate port
    with pytest.raises(IndexError):
        binding.compare("n", sig, 9)
    with pytest.raises(ValueError):
        bind_bus(ShadowBinding(), Signal("t", 2), ["a", "b", "c"])


def make_counter_with_and_shadow(mismatched=False):
    """RTL: a counter whose two LSBs feed an AND; circuit: the same AND
    (nand+inv) shadowing it -- or a NOR circuit for the seeded-bug case."""
    m = RtlModule("top")
    count = two_phase_register(m, "count", 4,
                               lambda: xadd(count.get(), 1, 4), reset=0)
    and_out = m.signal("and_out", 1, reset=0)

    @m.comb
    def _and():
        value = count.get()
        if value is not None and not count.is_x():
            and_out.set((value & 1) & ((value >> 1) & 1))

    rtl = PhaseSimulator(m)

    b = CellBuilder("blk", ports=["a", "b", "y"])
    if mismatched:
        b.nor(["a", "b"], "n1")  # WRONG circuit: designer "creativity" gone bad
    else:
        b.nand(["a", "b"], "n1")
    b.inverter("n1", "y")
    circuit = SwitchSimulator(flatten(b.build()))

    binding = ShadowBinding()
    binding.drive("a", count, 0)
    binding.drive("b", count, 1)
    binding.compare("y", and_out, 0)
    return ShadowSimulator(rtl, circuit, binding)


def test_shadow_agreement_on_correct_circuit():
    shadow = make_counter_with_and_shadow()
    report = shadow.cycle(16)
    assert report.clean()
    assert report.compared == 32  # 2 phases x 16 cycles
    assert report.agreement_rate() == 1.0


def test_shadow_catches_seeded_functional_bug():
    shadow = make_counter_with_and_shadow(mismatched=True)
    report = shadow.cycle(16)
    assert not report.clean()
    first = report.mismatches[0]
    assert first.net == "y"
    # NOR vs AND agree only on the 11 input; expect many mismatches.
    assert len(report.mismatches) > 10


def test_shadow_x_counted_as_unknown_by_default():
    """Until the RTL counter leaves X... here RTL starts defined but the
    comparison signal may be X one phase; use an RTL-side X."""
    m = RtlModule("top")
    d = m.signal("d", 1)  # stays X forever
    rtl = PhaseSimulator(m)
    b = CellBuilder("blk", ports=["a", "y"])
    b.inverter("a", "y")
    circuit = SwitchSimulator(flatten(b.build()))
    binding = ShadowBinding().drive("a", d).compare("y", d)
    shadow = ShadowSimulator(rtl, circuit, binding)
    report = shadow.cycle(2)
    assert report.unknowns == report.compared
    assert report.clean()


def test_shadow_full_adder_block():
    """Shadow a real datapath block: the 4-bit static adder against an
    RTL add, with random-ish operands from a register."""
    width = 4
    m = RtlModule("alu")
    a = two_phase_register(m, "a", width, lambda: xadd(a.get(), 3, width), reset=1)
    bb = two_phase_register(m, "b", width, lambda: xadd(bb.get(), 7, width), reset=2)
    total = m.signal("sum", width, reset=0)
    carry = m.signal("carry", 1, reset=0)

    @m.comb
    def _add():
        if not a.is_x() and not bb.is_x():
            full = a.get() + bb.get()
            total.set(full & ((1 << width) - 1))
            carry.set((full >> width) & 1)

    rtl = PhaseSimulator(m)
    circuit = SwitchSimulator(flatten(ripple_carry_adder(width)))
    binding = ShadowBinding()
    bind_bus(binding, a, [f"a{i}" for i in range(width)], "drive")
    bind_bus(binding, bb, [f"b{i}" for i in range(width)], "drive")
    bind_bus(binding, total, [f"s{i}" for i in range(width)], "compare")
    binding.compare("cout", carry, 0)
    # cin is a circuit port the RTL has no signal for: tie it low.
    zero = Signal("zero", 1, reset=0)
    binding.drive("cin", zero, 0)

    shadow = ShadowSimulator(rtl, circuit, binding)
    report = shadow.cycle(12)
    assert report.clean()
    assert report.agreements > 0
