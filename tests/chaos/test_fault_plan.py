"""FaultPlan / FaultInjector unit behavior.

The whole chaos contract rests on the plan being a pure function of
``(seed, hook, token)``: every test of "the campaign survives schedule
S" is only meaningful if S is the same schedule on every run, every
process, and every platform.
"""

import pickle

import pytest

from repro.chaos import HOOK_KINDS, HOOKS, FaultInjector, FaultPlan
from repro.chaos.plan import apply_process_fault


def test_draw_is_a_pure_function_of_seed_hook_token():
    plan = FaultPlan.make(99, rates={h: 0.5 for h in HOOKS})
    again = FaultPlan.make(99, rates={h: 0.5 for h in HOOKS})
    for hook in HOOKS:
        for token in ("a", "b", "key:0", "key:1", "42"):
            assert plan.draw(hook, token) == again.draw(hook, token)


def test_different_seeds_give_different_schedules():
    a = FaultPlan.make(1, rates={"store.put": 0.5})
    b = FaultPlan.make(2, rates={"store.put": 0.5})
    tokens = [str(i) for i in range(64)]
    assert ([a.draw("store.put", t) for t in tokens]
            != [b.draw("store.put", t) for t in tokens])


def test_rate_zero_never_fires_and_rate_one_always_fires():
    silent = FaultPlan.make(7, rates={})
    loud = FaultPlan.make(7, rates={"store.put": 1.0},
                          kinds={"store.put": ("enospc",)})
    for i in range(100):
        assert silent.draw("store.put", str(i)) is None
        assert loud.draw("store.put", str(i)) == "enospc"


def test_kinds_restriction_limits_the_menu():
    plan = FaultPlan.make(5, rates={"store.get": 1.0},
                          kinds={"store.get": ("truncate",)})
    assert {plan.draw("store.get", str(i)) for i in range(20)} == {"truncate"}
    free = FaultPlan.make(5, rates={"store.get": 1.0})
    assert {free.draw("store.get", str(i))
            for i in range(50)} == set(HOOK_KINDS["store.get"])


def test_unknown_hook_is_rejected_everywhere():
    with pytest.raises(ValueError, match="unknown chaos hook"):
        FaultPlan.make(1, rates={"store.teleport": 0.5})
    with pytest.raises(ValueError, match="unknown chaos hook"):
        FaultPlan.make(1, rates={}, kinds={"store.teleport": ("eio",)})
    plan = FaultPlan.make(1, rates={"store.put": 0.5})
    with pytest.raises(ValueError, match="unknown chaos hook"):
        plan.draw("store.teleport", "x")


def test_invalid_rate_and_kind_are_rejected():
    with pytest.raises(ValueError):
        FaultPlan.make(1, rates={"store.put": 1.5})
    with pytest.raises(ValueError):
        FaultPlan.make(1, rates={"store.put": -0.1})
    with pytest.raises(ValueError, match="non-empty subset"):
        FaultPlan.make(1, rates={}, kinds={"store.put": ("sigstop",)})
    with pytest.raises(ValueError, match="non-empty subset"):
        FaultPlan.make(1, rates={}, kinds={"store.put": ()})


def test_plan_pickles_by_value():
    plan = FaultPlan.make(11, rates={"worker.job_start": 0.25},
                          kinds={"worker.job_start": ("sigstop",)},
                          latency_s=0.01, clock_jump_s=30.0, max_per_hook=2)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    for i in range(32):
        assert (clone.draw("worker.job_start", str(i))
                == plan.draw("worker.job_start", str(i)))


def test_injector_budget_caps_injections_per_hook():
    plan = FaultPlan.make(3, rates={"store.put": 1.0},
                          kinds={"store.put": ("eio",)}, max_per_hook=2)
    inj = FaultInjector(plan)
    fired = [inj.fire("store.put") for _ in range(6)]
    assert fired == ["eio", "eio", None, None, None, None]
    assert inj.counters() == {"chaos_store_put": 2}


def test_injector_default_token_is_the_per_hook_call_index():
    plan = FaultPlan.make(17, rates={"store.put": 0.5}, max_per_hook=100)
    by_index = FaultInjector(plan)
    explicit = FaultInjector(plan)
    assert ([by_index.fire("store.put") for i in range(20)]
            == [explicit.fire("store.put", token=str(i)) for i in range(20)])


def test_injector_counters_only_name_what_fired():
    plan = FaultPlan.make(1, rates={})
    inj = FaultInjector(plan)
    for hook in HOOKS:
        assert inj.fire(hook, token="t") is None
    assert inj.counters() == {}


def test_apply_process_fault_ignores_none_and_unknown():
    # Callers pipe FaultInjector.fire results straight through, so the
    # no-fault case (and a kind this process cannot apply) must be a
    # silent no-op, never a crash.
    apply_process_fault(None)
    apply_process_fault("latency")
