"""Chaos acceptance: survivable fault schedules are invisible in reports.

The contract under test (the tentpole of the chaos harness): a
campaign run against a :class:`ChaosStore` drawing a *survivable*
fault schedule must produce canonical report JSON byte-identical to a
fault-free run -- faults may cost retries, quarantines, re-runs, and
even all durability (sticky ENOSPC), but never a different conclusion.
"""

from functools import lru_cache

from repro.chaos import ChaosStore, FaultPlan
from repro.core.campaign import CbvCampaign
from repro.core.report import report_to_json
from repro.fleet.suite import alpha_slice_bundle
from repro.process.technology import strongarm_technology
from repro.scenarios import FuzzSpec, ScenarioCampaign

#: Pinned schedule known (and asserted below) to actually inject: the
#: test must fail loudly if a refactor silently stops faults firing.
MIXED_PLAN = FaultPlan.make(2026, rates={
    "store.put": 0.4, "store.get": 0.4, "store.lock": 0.3,
    "store.latency": 0.5}, latency_s=0.001, max_per_hook=6)

FUZZ = FuzzSpec(name="chaos-fuzz",
                target_ref="repro.scenarios.targets:adder4_shadow",
                campaign_seed=2026, seeds=8, cycles=4)


def bundle():
    return alpha_slice_bundle(strongarm_technology())


@lru_cache(maxsize=1)
def campaign_baseline() -> str:
    return report_to_json(CbvCampaign(bundle()).run(), canonical=True)


@lru_cache(maxsize=1)
def scenario_baseline() -> str:
    return ScenarioCampaign(FUZZ, shards=2).run().to_json(canonical=True)


def chaos_store(root, plan, **kw):
    kw.setdefault("lock_stale_s", 0.2)
    kw.setdefault("lock_timeout_s", 5.0)
    kw.setdefault("write_backoff_s", 0.005)
    return ChaosStore(root, plan, **kw)


def test_mixed_store_faults_are_survived_byte_identically(tmp_path):
    store = chaos_store(tmp_path / "store", MIXED_PLAN)
    report = CbvCampaign(bundle()).run(store=store, resume=True)
    assert sum(store.injector.counters().values()) > 0  # schedule fired
    assert report_to_json(report, canonical=True) == campaign_baseline()

    # Resume through the same schedule: surviving checkpoints replay,
    # corrupted ones quarantine and re-run, and the report still
    # matches byte for byte.
    resumed_store = chaos_store(tmp_path / "store", MIXED_PLAN)
    resumed = CbvCampaign(bundle()).run(store=resumed_store, resume=True)
    assert report_to_json(resumed, canonical=True) == campaign_baseline()
    events = {e.event for e in resumed.trace.events}
    assert "checkpoint.hit" in events  # it genuinely resumed


def test_enospc_degraded_campaign_still_concludes_identically(tmp_path):
    plan = FaultPlan.make(7, rates={"store.put": 1.0},
                          kinds={"store.put": ("enospc",)}, max_per_hook=99)
    store = chaos_store(tmp_path / "store", plan, write_retries=1)
    report = CbvCampaign(bundle()).run(store=store, resume=True)

    assert store.degraded
    degraded = [e for e in report.trace.events if e.event == "store.degraded"]
    assert len(degraded) == 1  # announced exactly once, then quiet
    # Un-checkpointed, but the conclusions are untouched.
    assert report_to_json(report, canonical=True) == campaign_baseline()
    assert store.counters()["store_writes"] == 0


def test_scenario_campaign_survives_store_faults(tmp_path):
    store = chaos_store(tmp_path / "store", MIXED_PLAN)
    report = ScenarioCampaign(FUZZ, shards=2).run(store=store, resume=True)
    assert report.to_json(canonical=True) == scenario_baseline()

    resumed_store = chaos_store(tmp_path / "store", MIXED_PLAN)
    resumed = ScenarioCampaign(FUZZ, shards=2).run(store=resumed_store,
                                                   resume=True)
    assert resumed.to_json(canonical=True) == scenario_baseline()


def test_scenario_campaign_survives_full_disk(tmp_path):
    plan = FaultPlan.make(7, rates={"store.put": 1.0},
                          kinds={"store.put": ("enospc",)}, max_per_hook=99)
    store = chaos_store(tmp_path / "store", plan, write_retries=1)
    report = ScenarioCampaign(FUZZ, shards=2).run(store=store, resume=True)
    assert store.degraded
    assert report.to_json(canonical=True) == scenario_baseline()
