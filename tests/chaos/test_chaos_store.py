"""ChaosStore injection behavior against the hardened ArtifactStore.

Each test drives one fault class at rate 1.0 (with the kind menu
narrowed, so the schedule is certain regardless of seed) and asserts
the *hardening* response: retries rescue transient EIO, sticky ENOSPC
degrades instead of crashing, corrupted blobs quarantine and miss
instead of returning garbage, and torn locks are broken by the
staleness logic.
"""

import hashlib

import pytest

from repro.chaos import ChaosStore, FaultPlan
from repro.store import CorruptArtifact, StoreMiss, StoreWriteError


def plan_for(hook, kind, *, rate=1.0, max_per_hook=100, **kw):
    return FaultPlan.make(42, rates={hook: rate}, kinds={hook: (kind,)},
                          max_per_hook=max_per_hook, **kw)


def key(name: str) -> str:
    """Store keys must be hex digests; derive one from a label."""
    return hashlib.sha256(name.encode()).hexdigest()


def test_transient_eio_is_rescued_by_retry(tmp_path):
    # Budget of exactly one fault: the first write attempt raises EIO,
    # the in-lock retry must land the blob.
    store = ChaosStore(tmp_path, plan_for("store.put", "eio", max_per_hook=1),
                       write_retries=2, write_backoff_s=0.001)
    assert store.put(key("k1"), {"v": 1}) is not None
    assert store.get(key("k1"))[0] == {"v": 1}
    c = store.counters()
    assert c["store_writes_retried"] == 1
    assert c["store_writes_failed"] == 0
    assert c["store_degraded"] == 0


def test_sticky_enospc_degrades_instead_of_crashing_forever(tmp_path):
    store = ChaosStore(tmp_path, plan_for("store.put", "enospc"),
                       write_retries=1, write_backoff_s=0.001)
    with pytest.raises(StoreWriteError, match="write failed after 2"):
        store.put(key("k1"), {"v": 1})
    assert store.degraded
    # Degraded mode: later writes are skipped (None), never attempted.
    assert store.put(key("k2"), {"v": 2}) is None
    assert store.put(key("k3"), {"v": 3}) is None
    c = store.counters()
    assert c["store_degraded"] == 1
    assert c["store_writes_failed"] == 1
    assert c["store_writes_skipped"] == 2
    with pytest.raises(StoreMiss):
        store.get(key("k2"))


def test_exhausted_eio_fails_the_write_but_not_the_store(tmp_path):
    store = ChaosStore(tmp_path, plan_for("store.put", "eio"),
                       write_retries=1, write_backoff_s=0.001)
    with pytest.raises(StoreWriteError):
        store.put(key("k1"), {"v": 1})
    # EIO is not the full-disk signal: the store stays undegraded and
    # the next key gets its own retry budget.
    assert not store.degraded


@pytest.mark.parametrize("kind", ["truncate", "bitflip"])
def test_corrupted_blob_quarantines_and_misses(tmp_path, kind):
    clean = FaultPlan.make(42, rates={})
    writer = ChaosStore(tmp_path, clean)
    writer.put(key("k1"), {"v": 1})

    reader = ChaosStore(tmp_path, plan_for("store.get", kind, max_per_hook=1))
    with pytest.raises(CorruptArtifact):
        reader.get(key("k1"))
    # The mangled blob moved to quarantine; the key now misses cleanly.
    assert [p.name for p in reader.quarantine_dir.iterdir()]
    with pytest.raises(StoreMiss):
        reader.get(key("k1"))
    assert reader.counters()["store_corrupt"] == 1


def test_torn_lock_is_broken_by_the_staleness_logic(tmp_path):
    store = ChaosStore(tmp_path, plan_for("store.lock", "corrupt_lock"),
                       lock_stale_s=0.1, lock_timeout_s=5.0)
    # Every claim first drops a garbage lock (unreadable payload, no
    # live owner); the observation-window staleness logic must break it
    # and the write must land.
    assert store.put(key("k1"), {"v": 1}) is not None
    assert store.get(key("k1"))[0] == {"v": 1}
    assert store.counters()["store_write_contended"] >= 1


def test_latency_faults_slow_but_never_break(tmp_path):
    store = ChaosStore(
        tmp_path,
        FaultPlan.make(42, rates={"store.latency": 1.0}, latency_s=0.001,
                       max_per_hook=100))
    assert store.put(key("k1"), {"v": 1}) is not None
    assert store.get(key("k1"))[0] == {"v": 1}
    assert store.injector.counters()["chaos_store_latency"] >= 2


def test_fault_schedule_is_identical_across_store_instances(tmp_path):
    plan = FaultPlan.make(7, rates={"store.put": 0.5, "store.get": 0.5},
                          max_per_hook=100)
    logs = []
    for run in range(2):
        store = ChaosStore(tmp_path / str(run), plan,
                           write_retries=3, write_backoff_s=0.001)
        log = []
        for i in range(8):
            k = key(f"key{i}")
            try:
                store.put(k, {"v": i})
                log.append(("put", k, "ok"))
            except StoreWriteError:
                log.append(("put", k, "fail"))
            try:
                store.get(k)
                log.append(("get", k, "ok"))
            except (StoreMiss, CorruptArtifact) as exc:
                log.append(("get", k, type(exc).__name__))
        logs.append((log, store.injector.counters()))
    assert logs[0] == logs[1]
