"""Integration: every design-library generator survives the full CBV flow.

This is the repository's own dogfooding: the workloads built for the
benchmarks are themselves pushed through recognition, extraction,
checks, and timing, asserting per-design expectations (the right number
of dynamic nodes, storage elements, clocks, and a tapeout-capable queue
after legitimate waivers).
"""

import pytest

from repro.core.campaign import CbvCampaign, DesignBundle
from repro.core.stages import FlowStage, StageStatus
from repro.designs.cam import cam_array
from repro.designs.dcvsl import dcvsl_xor
from repro.designs.latch_zoo import jamb_latch, pulsed_latch, sr_nand_latch
from repro.designs.manchester import manchester_carry_chain
from repro.designs.muxes import pass_mux_tree
from repro.designs.regfile import register_file
from repro.designs.sram import sram_array
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def run_flow(cell, tech, hints=(), use_layout=False):
    bundle = DesignBundle(
        name=cell.name,
        cell=cell,
        technology=tech,
        clock=TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9),
        clock_hints=tuple(hints),
        use_layout=use_layout,
    )
    return CbvCampaign(bundle).run()


def test_sram_array_through_flow(tech):
    report = run_flow(sram_array(rows=2, cols=2), tech)
    rec = report.stage(FlowStage.RECOGNITION)
    assert rec.metrics["storage"] == 8
    assert report.stage(FlowStage.TIMING_VERIFICATION).metrics["min_cycle_s"] >= 0


def test_cam_array_through_flow(tech):
    report = run_flow(cam_array(entries=2, width=2), tech, hints=["clk"])
    rec = report.stage(FlowStage.RECOGNITION)
    assert rec.metrics["dynamic_nodes"] == 2   # two match lines
    assert rec.metrics["storage"] == 8         # 2 entries x 2 bits x 2 nodes
    assert rec.metrics["clocks"] >= 1


def test_register_file_through_flow(tech):
    report = run_flow(register_file(entries=2, width=2), tech,
                      hints=["we0", "we_b0", "we1", "we_b1"])
    rec = report.stage(FlowStage.RECOGNITION)
    assert rec.metrics["storage"] >= 4  # one per entry per bit at least


def test_mux_tree_through_flow_with_layout(tech):
    report = run_flow(pass_mux_tree(depth=2), tech, use_layout=True)
    assert report.stage(FlowStage.LAYOUT).status is StageStatus.PASS
    assert report.stage(FlowStage.EXTRACTION).metrics["nets"] > 0


def test_manchester_through_flow(tech):
    report = run_flow(manchester_carry_chain(width=4), tech)
    # Pass-heavy structure: flow completes without crashing; the carry
    # nodes are pass-written dynamic storage candidates.
    assert report.stage(FlowStage.CIRCUIT_VERIFICATION).metrics["findings"] > 0


def test_dcvsl_through_flow(tech):
    report = run_flow(dcvsl_xor(), tech)
    assert report.design is not None
    assert report.design.dcvsl_pairs == [] or report.design.dcvsl_pairs
    # The x-coupled pair must not be misreported as a timing race storm.
    assert len(report.timing.races) <= 2


@pytest.mark.parametrize("make_cell,hints", [
    (jamb_latch, ()),
    (sr_nand_latch, ()),
    (pulsed_latch, ("en",)),
])
def test_latch_zoo_through_flow(tech, make_cell, hints):
    report = run_flow(make_cell(), tech, hints=hints)
    rec = report.stage(FlowStage.RECOGNITION)
    assert rec.metrics["storage"] >= 1
    # The flow must never crash on creative state elements; violations
    # are allowed (the jamb latch's ratioed write is genuinely marginal)
    # but they must be *reported*, not dropped.
    assert report.stage(FlowStage.CIRCUIT_VERIFICATION).metrics["findings"] > 0


def test_waiver_workflow_to_tapeout(tech):
    """A design with a known-acceptable finding reaches tapeout via the
    waiver path, never by deletion."""
    report = run_flow(jamb_latch(), tech)
    queue = report.queue
    if queue.tapeout_clean():
        pytest.skip("flow found nothing to waive on this calibration")
    for item in list(queue.open_violations()):
        queue.waive(item.source, item.subject,
                    "jamb write ratio reviewed against corners; sized per "
                    "team standard JL-3")
    assert queue.tapeout_clean()
    assert all(i.waive_reason for i in queue.items if i.waived)
