"""Integration tests: the tools must agree with each other.

The CBV methodology only works if its layers are mutually consistent:
the recognizer's extracted functions must match what the switch-level
simulator computes, STA's bounds must bracket the transient simulator,
and the equivalence checker must agree with exhaustive simulation.
"""

import pytest

from repro.designs.adders import adder_reference, ripple_carry_adder
from repro.equivalence.combinational import check_gate_vs_function
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.recognition.recognizer import recognize
from repro.spice.circuit import PwlSource
from repro.spice.netlist_bridge import circuit_from_netlist
from repro.spice.transient import transient
from repro.spice.waveforms import crossing_time
from repro.switchsim.engine import SwitchSimulator
from repro.switchsim.values import Logic


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def test_recognizer_vs_switchsim_on_complex_gate(tech):
    """The AOI21's recognized truth table matches switch simulation on
    all 8 input combinations."""
    b = CellBuilder("aoi", ports=["a", "bb", "c", "y"])
    b.aoi21("a", "bb", "c", "y")
    flat = flatten(b.build())
    design = recognize(flat)
    gate = design.gates["y"]
    sim = SwitchSimulator(flat)
    for i in range(8):
        assignment = {"a": bool(i & 1), "bb": bool(i & 2), "c": bool(i & 4)}
        sim.step(**{k: int(v) for k, v in assignment.items()})
        predicted = gate.evaluate({k: assignment[k] for k in gate.inputs})
        assert sim.value("y") is Logic.from_bool(predicted), assignment


def test_equivalence_vs_exhaustive_simulation(tech):
    """BDD equivalence and exhaustive switch simulation give the same
    verdict on the 2-bit adder -- both for the correct circuit and for a
    seeded-bug variant."""
    width = 2
    inputs = [f"a{i}" for i in range(width)] + \
             [f"b{i}" for i in range(width)] + ["cin"]

    def sum_intent(bit):
        def fn(**kw):
            a = sum((1 << i) for i in range(width) if kw[f"a{i}"])
            bb = sum((1 << i) for i in range(width) if kw[f"b{i}"])
            return bool((adder_reference(a, bb, int(kw["cin"]), width)[0] >> bit) & 1)
        return fn

    good = ripple_carry_adder(width)
    bad = ripple_carry_adder(width)
    # Seed a wiring bug: swap one NAND input on the s1 cone.
    victim = next(t for t in bad.transistors if t.gate == "cin")
    victim.gate = "a0"

    def bdd_verdict(design, bit):
        try:
            return check_gate_vs_function(design, f"s{bit}", sum_intent(bit),
                                          inputs).equivalent
        except ValueError:
            # The bug broke complementarity: the cone is no longer even a
            # recognizable gate network -- certainly not equivalent.
            return False

    for cell, expect_equal in ((good, True), (bad, False)):
        flat = flatten(cell)
        design = recognize(flat)
        bdd_verdicts = [bdd_verdict(design, bit) for bit in range(width)]
        # Exhaustive simulation verdict.
        sim = SwitchSimulator(flat)
        sim_ok = True
        for a in range(1 << width):
            for bb in range(1 << width):
                for cin in (0, 1):
                    drives = {"cin": cin}
                    for i in range(width):
                        drives[f"a{i}"] = (a >> i) & 1
                        drives[f"b{i}"] = (bb >> i) & 1
                    sim.step(**drives)
                    expected_s = adder_reference(a, bb, cin, width)[0]
                    for bit in range(width):
                        value = sim.value(f"s{bit}")
                        if value is Logic.X or \
                                (value is Logic.ONE) != bool((expected_s >> bit) & 1):
                            sim_ok = False
        assert all(bdd_verdicts) == expect_equal
        assert sim_ok == expect_equal


def test_sta_bounds_bracket_transient_on_gates(tech):
    """For a spread of single gates, the STA [d_min, d_max] window must
    contain plausibility: d_max above the SLOW-corner transient delay."""
    from repro.extraction.annotate import annotate
    from repro.extraction.caps import Parasitics
    from repro.timing.delay import ArcDelayCalculator
    from repro.timing.graph import build_timing_graph

    cases = [
        ("inv", lambda b: b.inverter("a", "y", wn=2.0, wp=4.0), 10e-15),
        ("nand3", lambda b: b.nand(["a", "x1", "x2"], "y"), 20e-15),
        ("nor2", lambda b: b.nor(["a", "x1"], "y"), 15e-15),
    ]
    for name, build, load in cases:
        ports = ["a", "x1", "x2", "y"]
        b = CellBuilder(name, ports=ports)
        build(b)
        b.cap("y", "gnd", load)
        flat = flatten(b.build())

        design = recognize(flat)
        parasitics = Parasitics()
        fast = annotate(flat, parasitics, tech, Corner.FAST)
        slow = annotate(flat, parasitics, tech, Corner.SLOW)
        graph = build_timing_graph(design, ArcDelayCalculator(fast, slow))
        arc = next(a for a in graph.arcs if a.src == "a" and a.dst == "y")

        corner = Corner.SLOW
        vdd = tech.vdd_at(corner)
        stim = {"a": PwlSource.step(0.0, vdd, 0.2e-9, 40e-12)}
        # Side inputs held so 'a' controls the output.
        gate = design.gates["y"]
        for side in gate.inputs:
            if side != "a":
                # For NAND hold others high; for NOR hold low.
                stim[side] = PwlSource.dc(vdd if name.startswith("nand") else 0.0)
        circuit = circuit_from_netlist(flat, tech, corner=corner, stimulus=stim)
        v_y0 = vdd if gate.evaluate(
            {k: (k != "a") if name.startswith("nand") else False
             for k in gate.inputs}) else 0.0
        result = transient(circuit, t_stop=6e-9, dt=4e-12, v_init={"y": v_y0})
        t_in = crossing_time(result.wave("a"), vdd / 2, rising=True)
        t_out = crossing_time(result.wave("y"), vdd / 2, after=t_in)
        assert t_out is not None, name
        golden = t_out - t_in
        assert arc.d_max > golden, (name, arc.d_max, golden)
        assert arc.d_max < 8 * golden, (name, arc.d_max, golden)


def test_spice_vs_switchsim_steady_state(tech):
    """Transient end-state agrees with switch-level logic on a chain."""
    b = CellBuilder("chain", ports=["a", "y"])
    b.nand(["a", "mid1"], "n_out")  # feedback-free: mid1 from inverter
    b.inverter("a", "mid1")
    b.inverter("n_out", "y")
    flat = flatten(b.build())
    vdd = tech.vdd_v

    for a_val in (0, 1):
        sim = SwitchSimulator(flat)
        sim.step(a=a_val)
        expected = sim.value("y")
        circuit = circuit_from_netlist(
            flat, tech, stimulus={"a": PwlSource.dc(vdd * a_val)})
        result = transient(circuit, t_stop=4e-9, dt=5e-12)
        final = result.final("y")
        if expected is Logic.ONE:
            assert final > 0.9 * vdd
        else:
            assert final < 0.1 * vdd
