"""Coverage for small public surfaces not exercised elsewhere:
strict-X shadow policy, error branches, and report describers."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.netlist.spice_io import format_value
from repro.process.technology import strongarm_technology
from repro.rtl.module import RtlModule
from repro.rtl.signals import Signal
from repro.rtl.simulator import PhaseSimulator, SimulationError
from repro.shadow.binding import ShadowBinding
from repro.shadow.shadowsim import ShadowSimulator
from repro.switchsim.engine import SwitchSimulator


def test_format_value_scales():
    assert format_value(2e-6, unit_scale=1e-6) == "2"
    assert format_value(0.5) == "0.5"


def test_cpus_needed_requires_cycles():
    sim = PhaseSimulator(RtlModule("empty"))
    with pytest.raises(SimulationError):
        sim.cpus_needed()


def test_shadow_strict_x_promotes_unknowns():
    """With strict_x, a circuit stuck at X against definite RTL values
    is a mismatch (post-reset discipline)."""
    m = RtlModule("top")
    d = m.signal("d", 1, reset=1)
    rtl = PhaseSimulator(m)

    b = CellBuilder("blk", ports=["a", "y"])
    b.inverter("a", "y")
    circuit = SwitchSimulator(flatten(b.build()))
    # Compare y against d but never drive a: y stays X forever.
    binding = ShadowBinding().compare("y", d)
    lax = ShadowSimulator(rtl, circuit, binding, strict_x=False)
    report = lax.cycle(2)
    assert report.clean()
    assert report.unknowns == report.compared

    m2 = RtlModule("top")
    d2 = m2.signal("d", 1, reset=1)
    rtl2 = PhaseSimulator(m2)
    circuit2 = SwitchSimulator(flatten(b.build()))
    strict = ShadowSimulator(rtl2, circuit2,
                             ShadowBinding().compare("y", d2), strict_x=True)
    report2 = strict.cycle(2)
    assert not report2.clean()


def test_sizing_result_describe():
    from repro.recognition.recognizer import recognize
    from repro.timing.sizing import size_path

    tech = strongarm_technology()
    b = CellBuilder("c", ports=["a", "y"])
    b.inverter("a", "s0", wn=1.0, wp=2.5)
    b.inverter("s0", "y", wn=1.0, wp=2.5)
    b.cap("y", "gnd", 100e-15)
    flat = flatten(b.build())
    result = size_path(flat, recognize(flat), tech, ["a", "s0", "y"],
                       c_load_f=100e-15)
    text = result.describe()
    assert "sized 2 stage(s)" in text
    assert "x1.00" in text  # the anchor stage


def test_timing_run_exposes_corner_designs():
    from repro.process.corners import Corner
    from repro.timing.clocking import TwoPhaseClock
    from repro.timing.driver import analyze_design

    tech = strongarm_technology()
    b = CellBuilder("c", ports=["a", "y"])
    b.inverter("a", "y")
    run = analyze_design(flatten(b.build()), tech,
                         TwoPhaseClock(period_s=6.25e-9))
    assert run.fast.corner is Corner.FAST
    assert run.slow.corner is Corner.SLOW
    assert run.design.flat is run.fast.flat


def test_stage_result_ok_semantics():
    from repro.core.stages import FlowStage, StageResult, StageStatus

    for status, expected in ((StageStatus.PASS, True),
                             (StageStatus.ATTENTION, True),
                             (StageStatus.SKIPPED, True),
                             (StageStatus.FAIL, False)):
        result = StageResult(stage=FlowStage.SCHEMATIC, status=status,
                             summary="x")
        assert result.ok() is expected


def test_standby_describe_mentions_assignments():
    from repro.power.standby import optimize_lengthening, strongarm_regions

    tech = strongarm_technology()
    result = optimize_lengthening(strongarm_regions(), tech)
    text = result.describe()
    assert "standby leakage" in text
    assert "icache" in text
