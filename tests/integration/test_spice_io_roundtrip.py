"""Integration: every design generator survives a SPICE write/parse
round trip with its recognition inventory intact.

The interchange path (schematic database -> SPICE deck -> back) must not
lose electrical meaning: same device count, same recognized families,
same dynamic-node and storage counts.
"""

import pytest

from repro.designs.adders import domino_carry_adder, ripple_carry_adder
from repro.designs.cam import cam_array
from repro.designs.dcvsl import dcvsl_xor
from repro.designs.latch_zoo import jamb_latch, pulsed_latch, sr_nand_latch
from repro.designs.manchester import manchester_carry_chain
from repro.designs.muxes import pass_mux_tree
from repro.designs.regfile import register_file
from repro.designs.sram import sram_array
from repro.netlist.flatten import flatten
from repro.netlist.spice_io import parse_spice, write_spice
from repro.recognition.recognizer import recognize

GENERATORS = [
    ("ripple4", lambda: ripple_carry_adder(4), ()),
    ("domino4", lambda: domino_carry_adder(4), ()),
    ("manchester4", lambda: manchester_carry_chain(4), ()),
    ("dcvsl", dcvsl_xor, ()),
    ("sram", lambda: sram_array(2, 2), ()),
    ("cam", lambda: cam_array(2, 2), ("clk",)),
    ("regfile", lambda: register_file(2, 2), ()),
    ("mux", lambda: pass_mux_tree(2), ()),
    ("jamb", jamb_latch, ()),
    ("sr", sr_nand_latch, ()),
    ("pulsed", pulsed_latch, ("en",)),
]


@pytest.mark.parametrize("name,generator,hints", GENERATORS,
                         ids=[g[0] for g in GENERATORS])
def test_roundtrip_preserves_recognition(name, generator, hints):
    original = generator()
    text = write_spice(original)
    reparsed = parse_spice(text, top=original.name)

    flat_a = flatten(original)
    flat_b = flatten(reparsed)
    assert flat_a.device_count() == flat_b.device_count()
    assert len(flat_a.nets) == len(flat_b.nets)

    design_a = recognize(flat_a, clock_hints=hints)
    design_b = recognize(flat_b, clock_hints=hints)
    assert design_a.family_histogram() == design_b.family_histogram()
    assert len(design_a.dynamic_nodes) == len(design_b.dynamic_nodes)
    assert len(design_a.storage) == len(design_b.storage)
    assert set(design_a.clocks) == set(design_b.clocks)


def test_roundtrip_preserves_sizes_and_lengthening():
    cell = sram_array(2, 2, l_add_um=0.045)
    reparsed = parse_spice(write_spice(cell, l_min_um=0.35), top=cell.name)
    flat_a, flat_b = flatten(cell), flatten(reparsed)
    # The writer folds l_add into drawn L; total effective length per
    # device must survive.
    for ta, tb in zip(sorted(flat_a.transistors, key=lambda t: t.name),
                      sorted(flat_b.transistors, key=lambda t: t.name)):
        assert ta.w_um == pytest.approx(tb.w_um)
        assert ta.effective_length(0.35) == pytest.approx(
            tb.effective_length(0.35))


def test_writer_refuses_unresolvable_lengthening():
    cell = sram_array(1, 1, l_add_um=0.045)
    with pytest.raises(ValueError, match="l_min_um"):
        write_spice(cell)
