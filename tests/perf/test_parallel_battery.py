"""Parallel battery: identical findings, registry order, timing data."""

import pytest

from repro.checks.driver import make_context
from repro.checks.registry import ALL_CHECKS, run_battery
from repro.designs.adders import domino_carry_adder
from repro.designs.latch_zoo import jamb_latch
from repro.netlist.flatten import flatten
from repro.perf import DesignCache
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock


@pytest.fixture(scope="module")
def ctx():
    return make_context(
        flatten(domino_carry_adder(4)),
        strongarm_technology(),
        clock=TwoPhaseClock(period_s=6.25e-9),
        cache=DesignCache(),
    )


def test_parallel_findings_byte_identical(ctx):
    serial = run_battery(ctx)
    par = run_battery(ctx, parallel=4)
    assert par.findings == serial.findings
    assert par.per_check == serial.per_check
    assert list(par.per_check_seconds) == list(serial.per_check_seconds)
    assert par.queues.stats() == serial.queues.stats()


def test_parallel_on_sequential_design():
    ctx = make_context(flatten(jamb_latch()), strongarm_technology(),
                       clock=TwoPhaseClock(period_s=6.25e-9))
    assert run_battery(ctx, parallel=2).findings == run_battery(ctx).findings


def test_parallel_one_stays_serial(ctx):
    # parallel=1 must not spin up a pool; result is still complete.
    result = run_battery(ctx, parallel=1)
    assert set(result.per_check_seconds) == {c().name for c in ALL_CHECKS}


def test_parallel_rejects_nonpositive(ctx):
    with pytest.raises(ValueError):
        run_battery(ctx, parallel=0)


def test_per_check_seconds_populated(ctx):
    result = run_battery(ctx)
    assert set(result.per_check_seconds) == {c().name for c in ALL_CHECKS}
    assert all(s >= 0.0 for s in result.per_check_seconds.values())
    assert result.total_seconds() == pytest.approx(
        sum(result.per_check_seconds.values()))


def test_subset_battery_parallel(ctx):
    checks = ALL_CHECKS[:5]
    serial = run_battery(ctx, checks=checks)
    par = run_battery(ctx, checks=checks, parallel=3)
    assert par.findings == serial.findings
