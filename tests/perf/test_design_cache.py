"""Tests for the session DesignCache and counter aggregation."""

from repro.designs.adders import domino_carry_adder
from repro.netlist.flatten import flatten
from repro.perf import DesignCache, collect_counters
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology


def _flat(width=2):
    return flatten(domino_carry_adder(width))


def test_recognized_is_cached_by_identity():
    cache = DesignCache()
    flat = _flat()
    d1 = cache.recognized(flat)
    d2 = cache.recognized(flat)
    assert d1 is d2
    assert cache.hits == 1 and cache.misses == 1
    # A different netlist object (same contents) is a different key.
    other = _flat()
    d3 = cache.recognized(other)
    assert d3 is not d1
    assert cache.misses == 2


def test_recognized_keyed_by_clock_hints():
    cache = DesignCache()
    flat = _flat()
    plain = cache.recognized(flat)
    hinted = cache.recognized(flat, clock_hints=("clk",))
    assert hinted is not plain
    assert cache.recognized(flat, clock_hints=["clk"]) is hinted


def test_parasitics_and_annotated_cached():
    cache = DesignCache()
    flat = _flat()
    tech = strongarm_technology()
    p = cache.parasitics(flat, tech)
    assert cache.parasitics(flat, tech) is p
    a_typ = cache.annotated(flat, p, tech, Corner.TYPICAL)
    assert cache.annotated(flat, p, tech, Corner.TYPICAL) is a_typ
    assert cache.annotated(flat, p, tech, Corner.FAST) is not a_typ


def test_cccs_of_net_matches_linear_scan():
    from repro.recognition.ccc import ccc_of_net

    cache = DesignCache()
    flat = _flat(4)
    design = cache.recognized(flat)
    for net in flat.nets:
        assert cache.cccs_of_net(flat, net) == ccc_of_net(design.cccs, net)


def test_shared_memo_spans_designs():
    """The second topologically-equal design classifies via the memo."""
    cache = DesignCache()
    cache.recognized(_flat())
    misses_after_first = cache.memo.classify_misses
    cache.recognized(_flat())
    assert cache.memo.classify_misses == misses_after_first
    assert cache.memo.classify_hits > 0


def test_switch_tables_cached_and_fingerprint_invalidated():
    cache = DesignCache()
    flat = _flat()
    t1 = cache.switch_tables(flat)
    assert cache.switch_tables(flat) is t1
    assert cache.hits == 1 and cache.misses == 1
    # A different l_min is a different artifact.
    t2 = cache.switch_tables(flat, l_min_um=0.5)
    assert t2 is not t1
    # In-place geometry mutation (a sizing loop) must force a rebuild
    # even though the netlist object identity is unchanged.  Geometry
    # edits don't rewire, so the mutator declares them explicitly.
    flat.transistors[0].w_um *= 2.0
    flat.note_mutation()
    t3 = cache.switch_tables(flat)
    assert t3 is not t1
    assert t3.matches(flat, 0.35)
    # The rebuilt tables drive the vector engine on the mutated design.
    from repro.switchsim import SwitchSimulator, VectorSwitchSimulator

    vec = SwitchSimulator(flat, engine="vector", tables=t3)
    assert isinstance(vec, VectorSwitchSimulator)


def test_collect_counters_merges_and_coerces():
    class Src:
        def counters(self):
            return {"b": 2}

    merged = collect_counters({"a": 1}, None, Src(), {"a": 3.5})
    assert merged == {"a": 3.5, "b": 2.0}
    assert all(isinstance(v, float) for v in merged.values())


def test_counters_include_memo():
    cache = DesignCache()
    cache.recognized(_flat())
    counters = cache.counters()
    assert counters["cache_misses"] == 1
    assert "classify_misses" in counters
