"""Unit tests for repro.spice: RC physics, MOSFET switching, waveforms."""

import math

import pytest

from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.spice.circuit import Circuit, PwlSource
from repro.spice.transient import transient
from repro.spice.waveforms import crossing_time, delay_between, slew_time


def test_pwl_source_interpolation():
    src = PwlSource([(0.0, 0.0), (1e-9, 0.0), (2e-9, 1.5)])
    assert src.value(-1.0) == 0.0
    assert src.value(0.5e-9) == 0.0
    assert src.value(1.5e-9) == pytest.approx(0.75)
    assert src.value(5e-9) == 1.5
    with pytest.raises(ValueError):
        PwlSource([(1.0, 0.0), (0.0, 1.0)])


def test_rc_charging_matches_analytic():
    """A driven RC: v(t) = V(1 - exp(-t/RC)), within integrator error."""
    circuit = Circuit()
    circuit.vsource("in", PwlSource.step(0.0, 1.0, t_edge=0.0, t_rise=1e-15))
    circuit.resistor("in", "out", 1000.0)
    circuit.capacitor("out", "gnd", 1e-12)  # tau = 1 ns
    result = transient(circuit, t_stop=5e-9, dt=5e-12)
    wave = result.wave("out")
    for t_check in (0.5e-9, 1e-9, 2e-9):
        expected = 1.0 - math.exp(-t_check / 1e-9)
        assert wave.at(t_check) == pytest.approx(expected, abs=0.02)


def test_rc_time_constant_via_crossing():
    circuit = Circuit()
    circuit.vsource("in", PwlSource.step(0.0, 1.0, 0.0, 1e-15))
    circuit.resistor("in", "out", 2000.0)
    circuit.capacitor("out", "gnd", 1e-12)  # tau = 2 ns
    result = transient(circuit, t_stop=10e-9, dt=10e-12)
    t63 = crossing_time(result.wave("out"), 0.632, rising=True)
    assert t63 == pytest.approx(2e-9, rel=0.05)


def test_resistive_divider_dc():
    circuit = Circuit()
    circuit.vsource("top", 3.0)
    circuit.resistor("top", "mid", 1000.0)
    circuit.resistor("mid", "gnd", 2000.0)
    result = transient(circuit, t_stop=1e-9, dt=1e-11)
    assert result.final("mid") == pytest.approx(2.0, rel=1e-3)


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def inverter_circuit(tech, w_n=4.0, w_p=8.0, c_load=20e-15):
    circuit = Circuit()
    vdd = tech.vdd_v
    circuit.vsource("vdd", vdd)
    circuit.vsource("a", PwlSource.step(0.0, vdd, t_edge=0.2e-9, t_rise=50e-12))
    circuit.mosfet("mn", tech.nmos_model(), "a", "y", "gnd", w_um=w_n)
    circuit.mosfet("mp", tech.pmos_model(), "a", "y", "vdd", w_um=w_p)
    circuit.capacitor("y", "gnd", c_load)
    return circuit


def test_inverter_switches(tech):
    circuit = inverter_circuit(tech)
    result = transient(circuit, t_stop=3e-9, dt=2e-12,
                       v_init={"y": tech.vdd_v})
    wave = result.wave("y")
    # Before the input edge the output is high; after, it falls.
    assert wave.at(0.1e-9) > 0.9 * tech.vdd_v
    assert result.final("y") < 0.05 * tech.vdd_v


def test_inverter_delay_scales_with_load(tech):
    def fall_delay(c_load):
        circuit = inverter_circuit(tech, c_load=c_load)
        result = transient(circuit, t_stop=4e-9, dt=2e-12,
                           v_init={"y": tech.vdd_v})
        return delay_between(result.wave("a"), result.wave("y"),
                             threshold=tech.vdd_v / 2,
                             cause_rising=True, effect_rising=False)

    d_small = fall_delay(10e-15)
    d_big = fall_delay(40e-15)
    assert d_small is not None and d_big is not None
    assert d_big > 2.0 * d_small  # roughly linear in C


def test_inverter_delay_scales_with_width(tech):
    def fall_delay(w_n):
        circuit = inverter_circuit(tech, w_n=w_n, c_load=30e-15)
        result = transient(circuit, t_stop=4e-9, dt=2e-12,
                           v_init={"y": tech.vdd_v})
        return delay_between(result.wave("a"), result.wave("y"),
                             threshold=tech.vdd_v / 2,
                             cause_rising=True, effect_rising=False)

    # 4x width would be ~4x faster if not input-slew limited; demand >2x.
    assert fall_delay(8.0) < fall_delay(2.0) / 2.0


def test_slow_corner_is_slower(tech):
    def delay_at(corner):
        circuit = Circuit()
        vdd = tech.vdd_at(corner)
        circuit.vsource("vdd", vdd)
        circuit.vsource("a", PwlSource.step(0.0, vdd, 0.2e-9, 50e-12))
        circuit.mosfet("mn", tech.nmos_model(corner), "a", "y", "gnd", w_um=4.0)
        circuit.mosfet("mp", tech.pmos_model(corner), "a", "y", "vdd", w_um=8.0)
        circuit.capacitor("y", "gnd", 20e-15)
        result = transient(circuit, t_stop=4e-9, dt=2e-12, v_init={"y": vdd})
        return delay_between(result.wave("a"), result.wave("y"), vdd / 2,
                             cause_rising=True, effect_rising=False)

    assert delay_at(Corner.SLOW) > delay_at(Corner.FAST) * 1.3


def test_slew_measurement(tech):
    circuit = inverter_circuit(tech, c_load=30e-15)
    result = transient(circuit, t_stop=4e-9, dt=2e-12, v_init={"y": tech.vdd_v})
    fall = slew_time(result.wave("y"), v_low=0.1 * tech.vdd_v,
                     v_high=0.9 * tech.vdd_v, rising=False)
    assert fall is not None and fall > 0


def test_crossing_occurrence_and_direction():
    import numpy as np

    from repro.spice.waveforms import Waveform
    t = np.linspace(0, 4, 401)
    v = np.sin(t * math.pi)  # crosses 0.5 up at ~1/6, down at ~5/6, up at ~13/6...
    w = Waveform(times=t, values=v)
    up1 = crossing_time(w, 0.5, rising=True)
    down1 = crossing_time(w, 0.5, rising=False)
    up2 = crossing_time(w, 0.5, rising=True, occurrence=2)
    assert up1 == pytest.approx(1 / 6, abs=0.02)
    assert down1 == pytest.approx(5 / 6, abs=0.02)
    assert up2 == pytest.approx(13 / 6, abs=0.02)
