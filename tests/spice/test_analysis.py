"""Unit tests for repro.spice.analysis: VTC, trip points, noise margins."""

import pytest

from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.spice.analysis import inverter_vtc


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


@pytest.fixture(scope="module")
def balanced_vtc(tech):
    # wp/wn ~ mobility ratio: a roughly centered inverter.
    return inverter_vtc(tech, wn=2.0, wp=5.0, points=31)


def test_vtc_endpoints_rail_to_rail(tech, balanced_vtc):
    vdd = tech.vdd_v
    assert balanced_vtc.vout[0] > 0.95 * vdd
    assert balanced_vtc.vout[-1] < 0.05 * vdd


def test_vtc_monotone_falling(balanced_vtc):
    diffs = balanced_vtc.vout[1:] - balanced_vtc.vout[:-1]
    assert (diffs <= 1e-6).all()


def test_trip_point_near_center(tech, balanced_vtc):
    trip = balanced_vtc.trip_point()
    assert 0.35 * tech.vdd_v < trip < 0.65 * tech.vdd_v


def test_skew_moves_trip_point(tech):
    weak_p = inverter_vtc(tech, wn=6.0, wp=1.0, points=31)
    weak_n = inverter_vtc(tech, wn=0.6, wp=10.0, points=31)
    assert weak_p.trip_point() < weak_n.trip_point()


def test_noise_margins_positive_and_bounded(tech, balanced_vtc):
    nml, nmh = balanced_vtc.noise_margins()
    vdd = tech.vdd_v
    assert 0.0 < nml < vdd
    assert 0.0 < nmh < vdd
    # A restoring CMOS inverter gives healthy margins on both sides.
    assert nml > 0.15 * vdd
    assert nmh > 0.15 * vdd


def test_gain_exceeds_unity_in_transition(tech, balanced_vtc):
    trip = balanced_vtc.trip_point()
    assert balanced_vtc.gain_at(trip) > 1.0
    assert balanced_vtc.gain_at(0.02) < 0.5  # flat near the rails


def test_check_settings_margin_is_defensible(tech, balanced_vtc):
    """The 25%-of-VDD noise-margin assumption baked into the check
    battery must be supported by actual inverter physics."""
    from repro.checks.base import CheckSettings

    nml, nmh = balanced_vtc.noise_margins()
    assumed = CheckSettings().noise_margin_fraction * tech.vdd_v
    assert assumed <= max(nml, nmh) * 1.5  # not wildly optimistic
    assert assumed >= min(nml, nmh) * 0.3  # not uselessly tiny
