"""Unit tests for repro.spice.netlist_bridge: end-to-end netlist-driven
transient runs, including the charge-sharing physics that motivates the
section-4.2 dynamic checks."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.spice.circuit import PwlSource
from repro.spice.netlist_bridge import circuit_from_netlist
from repro.spice.transient import transient
from repro.spice.waveforms import delay_between


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def test_netlist_inverter_transient(tech):
    b = CellBuilder("inv", ports=["a", "y"])
    b.inverter("a", "y")
    flat = flatten(b.build())
    vdd = tech.vdd_v
    circuit = circuit_from_netlist(
        flat, tech,
        stimulus={"a": PwlSource.step(0.0, vdd, 0.2e-9, 50e-12)},
    )
    result = transient(circuit, t_stop=3e-9, dt=2e-12, v_init={"y": vdd})
    assert result.final("y") < 0.1 * vdd


def test_netlist_nand_chain_delay(tech):
    b = CellBuilder("chain", ports=["a", "b", "y"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "y")
    flat = flatten(b.build())
    vdd = tech.vdd_v
    circuit = circuit_from_netlist(
        flat, tech,
        stimulus={
            "a": PwlSource.step(0.0, vdd, 0.3e-9, 50e-12),
            "b": PwlSource.dc(vdd),
        },
    )
    result = transient(circuit, t_stop=4e-9, dt=2e-12,
                       v_init={"n1": vdd, "y": 0.0})
    # a rising -> n1 falls -> y rises.
    d = delay_between(result.wave("a"), result.wave("y"), vdd / 2,
                      cause_rising=True, effect_rising=True)
    assert d is not None and 0 < d < 1e-9
    assert result.final("y") > 0.9 * vdd


def test_domino_charge_sharing_droop(tech):
    """The Figure-3 physics: with the keeper removed, opening the top
    evaluate device against a discharged internal node steals charge
    from the dynamic node, drooping it."""
    vdd = tech.vdd_v
    b = CellBuilder("dom", ports=["clk", "a", "b", "y"])
    b.domino_gate("clk", ["a", "b"], "y", keeper=False, dyn_net="dyn")
    flat = flatten(b.build())
    internal = next(n for n in flat.nets if n.startswith("ev_"))
    # Exaggerate the internal-node capacitance to make the droop clear.
    b.cap(internal, "gnd", 10e-15)
    flat = flatten(b.build())

    def run(a_wave):
        circuit = circuit_from_netlist(
            flat, tech,
            stimulus={
                "clk": PwlSource.dc(vdd),       # evaluate phase
                "a": a_wave,
                "b": PwlSource.dc(0.0),         # bottom device off
            },
        )
        # Start: dyn precharged high, internal node discharged.
        return transient(circuit, t_stop=2e-9, dt=2e-12,
                         v_init={"dyn": vdd, internal: 0.0})

    quiet = run(PwlSource.dc(0.0))
    droop_quiet = vdd - quiet.wave("dyn").min_after(0.0)
    shared = run(PwlSource.step(0.0, vdd, 0.2e-9, 50e-12))
    droop_shared = vdd - shared.wave("dyn").min_after(0.0)
    assert droop_shared > droop_quiet + 0.05  # visible charge-share droop
    # But not a full discharge (b stays off).
    assert shared.wave("dyn").min_after(0.0) > 0.3 * vdd


def test_keeper_fights_leakage_droop(tech):
    """With the keeper present, the same disturbance recovers."""
    vdd = tech.vdd_v
    b = CellBuilder("dom", ports=["clk", "a", "b", "y"])
    b.domino_gate("clk", ["a", "b"], "y", keeper=True, dyn_net="dyn")
    flat = flatten(b.build())
    internal = next(n for n in flat.nets if n.startswith("ev_"))
    circuit = circuit_from_netlist(
        flat, tech,
        stimulus={
            "clk": PwlSource.dc(vdd),
            "a": PwlSource.step(0.0, vdd, 0.2e-9, 50e-12),
            "b": PwlSource.dc(0.0),
        },
    )
    result = transient(circuit, t_stop=5e-9, dt=2e-12,
                       v_init={"dyn": vdd, internal: 0.0, "y": 0.0})
    # Keeper restores the dynamic node by the end of the window.
    assert result.final("dyn") > 0.85 * vdd
