"""Unit tests for repro.extraction.caps."""

import pytest

from repro.extraction.caps import Bound, Coupling, NetParasitics, Parasitics


def test_bound_construction_and_validation():
    b = Bound.from_tolerance(100.0, 0.2)
    assert b.lo == pytest.approx(80.0)
    assert b.hi == pytest.approx(120.0)
    with pytest.raises(ValueError):
        Bound(2.0, 1.0, 3.0)
    with pytest.raises(ValueError):
        Bound.from_tolerance(-1.0, 0.1)


def test_bound_arithmetic():
    a = Bound(1.0, 2.0, 3.0)
    b = Bound(10.0, 20.0, 30.0)
    s = a + b
    assert (s.lo, s.nominal, s.hi) == (11.0, 22.0, 33.0)
    d = a.scaled(2.0)
    assert (d.lo, d.nominal, d.hi) == (2.0, 4.0, 6.0)
    with pytest.raises(ValueError):
        a.scaled(-1.0)


def test_coupling_miller_bounds():
    c = Coupling("aggr", Bound.from_tolerance(10e-15, 0.2))
    assert c.effective_max(2.0) == pytest.approx(24e-15)  # 1.2 * 2
    assert c.effective_min(0.0) == 0.0
    assert c.effective_min(1.0) == pytest.approx(8e-15)


def test_net_parasitics_cap_range():
    p = NetParasitics(net="v")
    p.cap_ground = Bound.from_tolerance(100e-15, 0.2)
    p.couplings.append(Coupling("a", Bound.from_tolerance(20e-15, 0.2)))
    # Max: 120 ground + 2 * 24 coupling; min: 80 ground + 0.
    assert p.cap_max() == pytest.approx(120e-15 + 48e-15)
    assert p.cap_min() == pytest.approx(80e-15)
    assert p.cap_nominal() == pytest.approx(120e-15)
    assert p.cap_max() > p.cap_nominal() > p.cap_min()


def test_parasitics_symmetric_coupling():
    par = Parasitics()
    par.add_coupling("x", "y", Bound.from_tolerance(5e-15, 0.2))
    assert par.of("x").coupling_to("y") is not None
    assert par.of("y").coupling_to("x") is not None
    assert par.of("x").coupling_to("z") is None


def test_coupling_ratio():
    par = Parasitics()
    p = par.of("v")
    p.cap_ground = Bound.from_tolerance(75e-15, 0.0)
    par.add_coupling("v", "a", Bound.from_tolerance(25e-15, 0.0))
    assert par.coupling_ratio("v") == pytest.approx(0.25)
    assert par.coupling_ratio("unknown") == 0.0
