"""Unit tests for repro.extraction.extract, wireload, and annotate."""

import pytest

from repro.extraction.annotate import annotate
from repro.extraction.extract import extract_macrocell
from repro.extraction.wireload import WireloadModel
from repro.layout.macrocell import generate_macrocell
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology


def two_gate_flat():
    b = CellBuilder("dut", ports=["a", "b", "c", "y"])
    b.nand(["a", "b"], "n1")
    b.nand(["n1", "c"], "y")
    return flatten(b.build())


def test_extract_macrocell_produces_bounded_parasitics():
    tech = strongarm_technology()
    flat = two_gate_flat()
    mc = generate_macrocell("dut", flat.transistors, l_min_um=tech.l_min_um)
    par = extract_macrocell(mc, tech.wires)
    n1 = par.of("n1")
    assert n1.cap_ground.nominal > 0
    assert n1.cap_ground.lo < n1.cap_ground.nominal < n1.cap_ground.hi
    assert n1.resistance.nominal > 0
    assert n1.wire_length_um > 0


def test_wireload_model_deterministic_and_fanout_sensitive():
    tech = strongarm_technology()
    flat = two_gate_flat()
    model = WireloadModel(seed=7)
    par1 = model.extract(flat, tech.wires)
    par2 = WireloadModel(seed=7).extract(flat, tech.wires)
    assert par1.of("n1").cap_ground.nominal == par2.of("n1").cap_ground.nominal
    # n1 has more pins than c (drives a gate + two drains) -> longer wire.
    assert par1.of("n1").wire_length_um != par1.of("c").wire_length_um


def test_wireload_couplings_are_symmetric():
    tech = strongarm_technology()
    flat = two_gate_flat()
    par = WireloadModel(coupling_fraction=0.3).extract(flat, tech.wires)
    for name, p in par.nets.items():
        for c in p.couplings:
            back = par.of(c.other_net).coupling_to(name)
            assert back is not None


def test_annotate_merges_device_caps():
    tech = strongarm_technology()
    flat = two_gate_flat()
    par = WireloadModel().extract(flat, tech.wires)
    design = annotate(flat, par, tech, Corner.TYPICAL)
    n1 = design.load("n1")
    # n1 drives two gates of the second NAND: gate cap present.
    assert n1.gate_cap_f > 0
    # n1 is the drain node of the first NAND: junction cap present.
    assert n1.junction_cap_f > 0
    assert n1.total_max() > n1.total_nominal() > n1.total_min()
    assert n1.total_nominal() > n1.wire.cap_nominal()


def test_annotate_explicit_capacitor():
    tech = strongarm_technology()
    b = CellBuilder("c", ports=["a", "y"])
    b.inverter("a", "y")
    b.cap("y", "gnd", 50e-15)
    flat = flatten(b.build())
    par = WireloadModel().extract(flat, tech.wires)
    design = annotate(flat, par, tech)
    assert design.load("y").extra_cap_f == pytest.approx(50e-15)


def test_corner_changes_caps():
    tech = strongarm_technology()
    flat = two_gate_flat()
    par = WireloadModel().extract(flat, tech.wires)
    typ = annotate(flat, par, tech, Corner.TYPICAL).load("n1").gate_cap_f
    slow = annotate(flat, par, tech, Corner.SLOW).load("n1").gate_cap_f
    assert slow > typ  # SLOW corner has a larger cap factor


def test_channel_lengthening_raises_gate_cap():
    tech = strongarm_technology()
    b = CellBuilder("c", ports=["a", "y"])
    b.inverter("a", "y", l_add=0.09)
    flat = flatten(b.build())
    par = WireloadModel().extract(flat, tech.wires)
    long_cap = annotate(flat, par, tech).load("a").gate_cap_f

    b2 = CellBuilder("c", ports=["a", "y"])
    b2.inverter("a", "y")
    flat2 = flatten(b2.build())
    par2 = WireloadModel().extract(flat2, tech.wires)
    short_cap = annotate(flat2, par2, tech).load("a").gate_cap_f
    assert long_cap > short_cap
