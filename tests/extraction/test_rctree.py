"""Unit tests for repro.extraction.rctree."""

import pytest

from repro.extraction.rctree import RCTree, ladder_tap_names, uniform_ladder


def test_tree_construction_and_validation():
    t = RCTree(root="drv")
    t.add_node("a", "drv", resistance=100.0, cap=1e-15)
    t.add_node("b", "a", resistance=200.0, cap=2e-15)
    with pytest.raises(ValueError):
        t.add_node("a", "drv", 1.0, 1e-15)  # duplicate
    with pytest.raises(KeyError):
        t.add_node("c", "zz", 1.0, 1e-15)  # unknown parent
    with pytest.raises(ValueError):
        t.add_node("c", "b", -1.0, 1e-15)


def test_elmore_two_segment_line():
    """Hand-computed Elmore on a 2-node line."""
    t = RCTree(root="r")
    t.add_node("n1", "r", resistance=100.0, cap=1e-15)
    t.add_node("n2", "n1", resistance=100.0, cap=1e-15)
    # delay(n2) = R1*(C1+C2) + R2*C2 = 100*2e-15 + 100*1e-15 = 3e-13
    assert t.elmore_delay("n2") == pytest.approx(3e-13)
    # delay(n1) = R1*(C1+C2) = 2e-13
    assert t.elmore_delay("n1") == pytest.approx(2e-13)


def test_driver_resistance_sees_total_cap():
    t = RCTree(root="r")
    t.add_node("n1", "r", resistance=0.0, cap=10e-15)
    assert t.elmore_delay("n1", driver_resistance=1000.0) == pytest.approx(1e-11)


def test_branching_tree_downstream_cap():
    t = RCTree(root="r")
    t.add_node("trunk", "r", 50.0, 1e-15)
    t.add_node("left", "trunk", 100.0, 2e-15)
    t.add_node("right", "trunk", 100.0, 3e-15)
    assert t.downstream_cap("trunk") == pytest.approx(6e-15)
    # A side branch's cap loads the shared trunk but not the other branch's R.
    d_left = t.elmore_delay("left")
    assert d_left == pytest.approx(50.0 * 6e-15 + 100.0 * 2e-15)


def test_worst_elmore_is_farthest_on_uniform_line():
    t = uniform_ladder(10, total_resistance=1000.0, total_cap=100e-15)
    node, delay = t.worst_elmore()
    assert node == "n10"
    assert delay > 0
    # Distributed line Elmore ~ RC/2 * (1 + 1/N): for N=10 ~ 0.55 RC
    rc = 1000.0 * 100e-15
    assert delay == pytest.approx(0.55 * rc, rel=0.01)


def test_uniform_ladder_total_cap_preserved():
    t = uniform_ladder(7, 700.0, 7e-14)
    assert t.total_cap() == pytest.approx(7e-14)
    assert t.resistance_to("n7") == pytest.approx(700.0)


def test_ladder_validation():
    with pytest.raises(ValueError):
        uniform_ladder(0, 1.0, 1.0)


def test_ladder_tap_names():
    assert ladder_tap_names(10, 1) == ["n10"]
    assert ladder_tap_names(10, 2) == ["n5", "n10"]
    assert ladder_tap_names(8, 4) == ["n2", "n4", "n6", "n8"]
    with pytest.raises(ValueError):
        ladder_tap_names(4, 5)


def test_add_cap_at_tap():
    t = uniform_ladder(4, 400.0, 4e-15)
    before = t.elmore_delay("n4")
    t.add_cap("n2", 10e-15)
    after = t.elmore_delay("n4")
    assert after > before
