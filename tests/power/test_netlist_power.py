"""Unit tests for repro.power.netlist_power."""

import pytest

from repro.designs.sram import sram_array
from repro.extraction.annotate import annotate
from repro.extraction.wireload import WireloadModel
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.power.netlist_power import (
    block_power_report,
    netlist_leakage_power,
)
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.recognition.recognizer import recognize


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def test_leakage_honours_per_instance_lengthening(tech):
    base = flatten(sram_array(rows=2, cols=2))
    lengthened = flatten(sram_array(rows=2, cols=2, l_add_um=0.045))
    leak_base = netlist_leakage_power(base, tech)
    leak_long = netlist_leakage_power(lengthened, tech)
    assert leak_base > 2.0 * leak_long


def test_leakage_scales_with_array_size(tech):
    small = netlist_leakage_power(flatten(sram_array(2, 2)), tech)
    big = netlist_leakage_power(flatten(sram_array(4, 4)), tech)
    assert big == pytest.approx(4 * small, rel=0.01)


def test_leakage_corner_sensitivity(tech):
    flat = flatten(sram_array(2, 2))
    fast = netlist_leakage_power(flat, tech, Corner.FAST)
    typ = netlist_leakage_power(flat, tech, Corner.TYPICAL)
    assert fast > 5 * typ


def test_block_power_report(tech):
    b = CellBuilder("blk", ports=["clk", "a", "y"])
    b.domino_gate("clk", ["a"], "y")
    flat = flatten(b.build())
    design = recognize(flat)
    par = WireloadModel().extract(flat, tech.wires)
    annotated = annotate(flat, par, tech)
    report = block_power_report("blk", annotated, design, 160e6)
    assert report.dynamic_w > 0
    assert report.clock_w > 0
    assert report.total_w() == pytest.approx(report.dynamic_w + report.leakage_w)
    assert 0 < report.clock_fraction() < 1
    # At 160 MHz a handful of gates: dynamic dominates leakage by orders.
    assert report.dynamic_w > 10 * report.leakage_w
