"""Unit tests for repro.power: cascade, leakage, standby, dynamic."""

import pytest

from repro.power.activity import ActivityModel
from repro.power.cascade import (
    alpha_21064_chip,
    cascade_table,
    power_cascade,
    strongarm_chip,
)
from repro.power.dynamic import chip_dynamic_power, netlist_dynamic_power
from repro.power.leakage import Region, region_leakage_w, total_leakage_w
from repro.power.standby import (
    STANDBY_BUDGET_W,
    optimize_lengthening,
    strongarm_regions,
)
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


# ---- chip models & cascade (Table 1) ----------------------------------------


def test_alpha_chip_lands_on_published_power():
    assert alpha_21064_chip().power_w() == pytest.approx(26.0, rel=1e-6)


def test_strongarm_chip_lands_near_published_power():
    # Paper: "close to the realized value of 450mW"; the factor walk
    # gives 0.5 W.
    assert 0.4 < strongarm_chip().power_w() < 0.55


def test_cascade_factors_match_table1():
    steps = power_cascade(alpha_21064_chip(), strongarm_chip())
    labels = [s.label for s in steps[1:]]
    assert labels == ["VDD reduction", "Reduce functions", "Scale process",
                      "Clock load", "Clock rate"]
    factors = {s.label: s.factor for s in steps[1:]}
    assert factors["VDD reduction"] == pytest.approx(5.29, abs=0.01)
    assert factors["Reduce functions"] == pytest.approx(3.0)
    assert factors["Scale process"] == pytest.approx(2.0)
    assert factors["Clock load"] == pytest.approx(1.3)
    assert factors["Clock rate"] == pytest.approx(1.25)


def test_cascade_running_powers_match_table1():
    steps = power_cascade(alpha_21064_chip(), strongarm_chip())
    powers = [s.power_w for s in steps]
    # 26W -> 4.9W -> 1.6W -> 0.8W -> 0.6W -> 0.5W
    assert powers[0] == pytest.approx(26.0, rel=1e-6)
    assert powers[1] == pytest.approx(4.9, abs=0.1)
    assert powers[2] == pytest.approx(1.6, abs=0.1)
    assert powers[3] == pytest.approx(0.8, abs=0.05)
    assert powers[4] == pytest.approx(0.6, abs=0.05)
    assert powers[5] == pytest.approx(0.5, abs=0.05)


def test_cascade_is_exact_decomposition():
    steps = power_cascade(alpha_21064_chip(), strongarm_chip())
    assert steps[-1].power_w == pytest.approx(strongarm_chip().power_w())
    product = 1.0
    for s in steps[1:]:
        product *= s.factor
    assert alpha_21064_chip().power_w() / product == pytest.approx(
        strongarm_chip().power_w())


def test_cascade_table_rendering():
    text = cascade_table(power_cascade(alpha_21064_chip(), strongarm_chip()))
    assert "VDD reduction" in text
    assert "26.0W" in text


# ---- leakage & standby --------------------------------------------------------


def test_region_leakage_grows_with_width(tech):
    small = Region("r", nmos_width_um=1e5, pmos_width_um=1e5)
    big = Region("r", nmos_width_um=1e6, pmos_width_um=1e6)
    assert region_leakage_w(big, tech) == pytest.approx(
        10 * region_leakage_w(small, tech), rel=1e-6)


def test_lengthening_cuts_region_leakage(tech):
    base = Region("r", nmos_width_um=1e6, pmos_width_um=1e6)
    l45 = Region("r", nmos_width_um=1e6, pmos_width_um=1e6, l_add_um=0.045)
    l90 = Region("r", nmos_width_um=1e6, pmos_width_um=1e6, l_add_um=0.09)
    p0 = region_leakage_w(base, tech)
    p45 = region_leakage_w(l45, tech)
    p90 = region_leakage_w(l90, tech)
    assert p0 > 2 * p45 > 2 * p90  # strong exponential knob


def test_strongarm_standby_story(tech):
    """The full section-3 narrative: over budget at the fast corner with
    minimum channels, under budget after lengthening the arrays."""
    regions = strongarm_regions()
    baseline = total_leakage_w(regions, tech, Corner.FAST)
    assert baseline > STANDBY_BUDGET_W  # the problem is real
    result = optimize_lengthening(regions, tech)
    assert result.met
    assert result.leakage_w <= STANDBY_BUDGET_W
    # The caches got lengthened; the speed-critical core did not.
    assert result.assignments["icache"] in (0.045, 0.09)
    assert result.assignments["dcache"] in (0.045, 0.09)
    assert result.assignments["core"] == 0.0


def test_standby_normal_operation_unaffected(tech):
    """Paper: leakage 'is not large enough to cause a problem for normal
    operation' -- typical-corner leakage is a tiny fraction of the
    ~0.5 W operating power."""
    leak = total_leakage_w(strongarm_regions(), tech, Corner.TYPICAL)
    assert leak < 0.01 * 0.45


def test_impossible_budget_reported_honestly(tech):
    result = optimize_lengthening(strongarm_regions(), tech, budget_w=1e-6)
    assert not result.met
    assert result.leakage_w > 1e-6


# ---- dynamic power ---------------------------------------------------------------


def test_chip_dynamic_power_formula():
    assert chip_dynamic_power(1e-9, 2.0, 100e6) == pytest.approx(0.4)
    with pytest.raises(ValueError):
        chip_dynamic_power(-1, 1, 1)


def test_netlist_dynamic_power_clock_vs_data(tech):
    from repro.extraction.annotate import annotate
    from repro.extraction.wireload import WireloadModel
    from repro.netlist.builder import CellBuilder
    from repro.netlist.flatten import flatten
    from repro.recognition.recognizer import recognize

    b = CellBuilder("d", ports=["clk", "a", "y"])
    b.domino_gate("clk", ["a"], "y")
    flat = flatten(b.build())
    design = recognize(flat)
    par = WireloadModel().extract(flat, tech.wires)
    annotated = annotate(flat, par, tech)
    power = netlist_dynamic_power(annotated, design, frequency_hz=160e6)
    assert power["clock"] > 0
    assert power["data"] > 0
    assert power["total"] == pytest.approx(power["clock"] + power["data"])
    # Clock nets toggle every cycle; per-farad they dominate data nets.
    gated = netlist_dynamic_power(
        annotated, design, 160e6,
        activity=ActivityModel().with_gating(0.25))
    assert gated["clock"] == pytest.approx(0.25 * power["clock"])
    assert gated["data"] == pytest.approx(power["data"])


def test_activity_model_validation():
    with pytest.raises(ValueError):
        ActivityModel(default_data_activity=2.0)
    model = ActivityModel(overrides={"hot": 0.9})
    assert model.factor("hot") == 0.9
    assert model.factor("cold") == 0.15
    assert model.factor("phi", is_clock=True) == 1.0
