"""Unit tests for repro.netlist.views (paper Figure 1)."""

import pytest

from repro.netlist.views import DesignViews, HierarchyView, overlap_matrix, view_alignment


def make_views():
    """The Figure-1 picture: three RTL boxes vs three schematic boxes with
    irregular overlap (S1 spans RTL1+RTL2, etc.)."""
    leaves = [f"f{i}" for i in range(12)]
    rtl = HierarchyView("rtl")
    rtl.add_group("RTL1", leaves[0:4])
    rtl.add_group("RTL2", leaves[4:8])
    rtl.add_group("RTL3", leaves[8:12])
    sch = HierarchyView("schematic")
    sch.add_group("S1", leaves[0:3] + leaves[4:6])   # spans RTL1 and RTL2
    sch.add_group("S2", leaves[3:4] + leaves[6:8])   # spans RTL1 and RTL2
    sch.add_group("S3", leaves[8:12])                # matches RTL3 exactly
    return rtl, sch


def test_disjoint_groups_enforced():
    v = HierarchyView("x")
    v.add_group("a", ["l1", "l2"])
    with pytest.raises(ValueError):
        v.add_group("b", ["l2", "l3"])


def test_group_of():
    v = HierarchyView("x")
    v.add_group("a", ["l1"])
    assert v.group_of("l1") == "a"
    with pytest.raises(KeyError):
        v.group_of("zz")


def test_design_views_universe_check():
    rtl, sch = make_views()
    DesignViews(rtl=rtl, schematic=sch)  # ok
    small = HierarchyView("schematic")
    small.add_group("S1", ["f0"])
    with pytest.raises(ValueError):
        DesignViews(rtl=rtl, schematic=small)


def test_overlap_matrix_structure():
    rtl, sch = make_views()
    m = overlap_matrix(rtl, sch)
    assert m[("RTL1", "S1")] == 3
    assert m[("RTL1", "S2")] == 1
    assert m[("RTL2", "S1")] == 2
    assert m[("RTL2", "S2")] == 2
    assert m[("RTL3", "S3")] == 4
    assert ("RTL3", "S1") not in m
    # Total overlap equals the leaf count.
    assert sum(m.values()) == 12


def test_alignment_report():
    rtl, sch = make_views()
    rep = view_alignment(rtl, sch)
    assert rep.span == {"RTL1": 2, "RTL2": 2, "RTL3": 1}
    assert rep.mean_span == pytest.approx(5 / 3)
    assert rep.aligned_fraction == pytest.approx(1 / 3)  # only RTL3 matches
    assert 0 < rep.mean_best_jaccard < 1


def test_perfectly_aligned_views():
    v1 = HierarchyView("a")
    v1.add_group("g1", ["x", "y"])
    v2 = HierarchyView("b")
    v2.add_group("h1", ["x", "y"])
    rep = view_alignment(v1, v2)
    assert rep.aligned_fraction == 1.0
    assert rep.mean_best_jaccard == 1.0
    assert rep.mean_span == 1.0


def test_alignment_empty_view_rejected():
    with pytest.raises(ValueError):
        view_alignment(HierarchyView("a"), HierarchyView("b"))
