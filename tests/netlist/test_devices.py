"""Unit tests for repro.netlist.devices."""

import pytest

from repro.netlist.devices import Capacitor, Resistor, Transistor


def test_transistor_validation():
    with pytest.raises(ValueError):
        Transistor("m1", "diode", "g", "d", "s", w_um=1.0)
    with pytest.raises(ValueError):
        Transistor("m1", "nmos", "g", "d", "s", w_um=0.0)
    with pytest.raises(ValueError):
        Transistor("m1", "nmos", "g", "d", "s", w_um=1.0, l_add_um=-0.1)


def test_effective_length_resolution():
    t = Transistor("m1", "nmos", "g", "d", "s", w_um=2.0)
    assert t.effective_length(0.35) == 0.35
    t2 = Transistor("m2", "nmos", "g", "d", "s", w_um=2.0, l_um=0.5, l_add_um=0.045)
    assert t2.effective_length(0.35) == pytest.approx(0.545)
    t3 = Transistor("m3", "nmos", "g", "d", "s", w_um=2.0, l_add_um=0.09)
    assert t3.effective_length(0.35) == pytest.approx(0.44)


def test_terminal_helpers():
    t = Transistor("m1", "nmos", "g", "d", "s", w_um=2.0)
    assert t.terminals() == ("g", "d", "s")
    assert t.channel_terminals() == ("d", "s")
    assert t.other_channel_terminal("d") == "s"
    assert t.other_channel_terminal("s") == "d"
    with pytest.raises(ValueError):
        t.other_channel_terminal("g")


def test_transistor_renamed():
    t = Transistor("m1", "pmos", "a", "b", "vdd", w_um=3.0)
    r = t.renamed("u1.", {"a": "u1.a", "b": "top_b", "vdd": "vdd"})
    assert r.name == "u1.m1"
    assert r.gate == "u1.a"
    assert r.drain == "top_b"
    assert r.source == "vdd"
    assert t.name == "m1"  # original untouched


def test_capacitor_and_resistor_validation():
    with pytest.raises(ValueError):
        Capacitor("c1", "a", "b", cap_f=-1e-15)
    with pytest.raises(ValueError):
        Resistor("r1", "a", "b", res_ohm=-5.0)
    c = Capacitor("c1", "a", "b", 1e-15).renamed("x.", {"a": "x.a"})
    assert c.name == "x.c1" and c.a == "x.a" and c.b == "b"
