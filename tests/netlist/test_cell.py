"""Unit tests for repro.netlist.cell."""

import pytest

from repro.netlist.cell import Cell
from repro.netlist.devices import Capacitor, Transistor


def make_inv() -> Cell:
    inv = Cell(name="inv", ports=["a", "y", "vdd", "gnd"])
    inv.add(Transistor("mn", "nmos", "a", "y", "gnd", w_um=2.0))
    inv.add(Transistor("mp", "pmos", "a", "y", "vdd", w_um=4.0))
    return inv


def test_add_rejects_duplicates():
    cell = make_inv()
    with pytest.raises(ValueError):
        cell.add(Transistor("mn", "nmos", "a", "y", "gnd", w_um=1.0))
    with pytest.raises(ValueError):
        cell.add(Capacitor("mn", "a", "y", 1e-15))


def test_instantiate_checks_ports():
    inv = make_inv()
    top = Cell(name="top", ports=["in", "out", "vdd", "gnd"])
    top.instantiate("u1", inv, a="in", y="out")
    with pytest.raises(ValueError):
        top.instantiate("u1", inv, a="in", y="out")  # duplicate name
    with pytest.raises(ValueError):
        top.instantiate("u2", inv, nosuch="in")  # unknown port


def test_local_nets():
    inv = make_inv()
    assert inv.local_nets() == {"a", "y", "vdd", "gnd"}


def test_transistor_count_recursive():
    inv = make_inv()
    top = Cell(name="top", ports=["in", "out"])
    top.instantiate("u1", inv, a="in", y="mid")
    top.instantiate("u2", inv, a="mid", y="out")
    top.add(Transistor("mx", "nmos", "en", "out", "gnd", w_um=1.0))
    assert top.transistor_count(recursive=False) == 1
    assert top.transistor_count() == 5


def test_all_cells_and_name_clash_detection():
    inv = make_inv()
    top = Cell(name="top", ports=[])
    top.instantiate("u1", inv, a="x", y="y")
    cells = top.all_cells()
    assert set(cells) == {"top", "inv"}

    impostor = Cell(name="inv", ports=["a", "y"])
    top.instantiate("u2", impostor, a="p", y="q")
    with pytest.raises(ValueError):
        top.all_cells()


def test_find_transistor():
    inv = make_inv()
    assert inv.find_transistor("mp").polarity == "pmos"
    with pytest.raises(KeyError):
        inv.find_transistor("zz")
