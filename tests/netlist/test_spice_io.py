"""Unit tests for repro.netlist.spice_io."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.cell import Cell
from repro.netlist.flatten import flatten
from repro.netlist.spice_io import parse_spice, parse_value, write_spice


def test_parse_value_suffixes():
    assert parse_value("1.5") == 1.5
    assert parse_value("2u") == pytest.approx(2e-6)
    assert parse_value("100n") == pytest.approx(1e-7)
    assert parse_value("3p") == pytest.approx(3e-12)
    assert parse_value("4f") == pytest.approx(4e-15)
    assert parse_value("2k") == pytest.approx(2e3)
    assert parse_value("1meg") == pytest.approx(1e6)
    assert parse_value("1e-15") == pytest.approx(1e-15)
    with pytest.raises(ValueError):
        parse_value("abc")


def test_parse_flat_mosfets():
    text = """
* an inverter
Mn1 y a gnd gnd nmos W=2u L=0.35u
Mp1 y a vdd vdd pmos W=4u L=0.35u
Cload y gnd 10f
"""
    cell = parse_spice(text)
    assert cell.name == "main"
    assert len(cell.transistors) == 2
    n = cell.find_transistor("n1")
    assert n.polarity == "nmos" and n.w_um == pytest.approx(2.0)
    assert n.l_um == pytest.approx(0.35)
    assert cell.capacitors[0].cap_f == pytest.approx(1e-14)


def test_parse_subckt_hierarchy():
    text = """
.subckt inv a y vdd gnd
Mn y a gnd gnd nch W=2u L=0.35u
Mp y a vdd vdd pch W=4u L=0.35u
.ends

.subckt buf in out vdd gnd
Xu1 in mid vdd gnd inv
Xu2 mid out vdd gnd inv
.ends
.end
"""
    cell = parse_spice(text)
    assert cell.name == "buf"
    assert cell.transistor_count() == 4
    flat = flatten(cell)
    assert "mid" in flat.nets


def test_parse_continuation_lines():
    text = """
Mn1 y a gnd gnd nmos
+ W=2u L=0.35u
"""
    cell = parse_spice(text)
    assert cell.transistors[0].w_um == pytest.approx(2.0)


def test_parse_errors():
    with pytest.raises(ValueError):
        parse_spice("Mn1 y a gnd\n")  # too few tokens
    with pytest.raises(ValueError):
        parse_spice("Qx a b c model\n")  # unknown element
    with pytest.raises(ValueError):
        parse_spice(".subckt a p\nMn y g gnd gnd nmos W=1u L=1u\n")  # unclosed
    with pytest.raises(ValueError):
        parse_spice("Xu1 a b nowhere\n")  # unknown subckt


def test_parse_errors_carry_line_numbers():
    deck = "* header comment\n\nMok y a gnd gnd nmos W=1u L=1u\nMbad y a gnd\n"
    with pytest.raises(ValueError, match=r"^line 4: malformed MOSFET"):
        parse_spice(deck)

    with pytest.raises(ValueError, match=r"^line 2: unrecognized SPICE"):
        parse_spice("* ok\nQx a b c model\n")

    # the unclosed-.subckt diagnostic points at the .subckt line itself
    with pytest.raises(ValueError, match=r"^line 3: \.subckt 'a' never closed"):
        parse_spice("* one\n* two\n.subckt a p\nMn y g gnd gnd nmos W=1u\n")

    # unknown-subckt resolution happens after the whole deck is read, but
    # still names the instance's source line
    deck = (".subckt inv a y\nMn y a gnd gnd nmos W=1u\n.ends\n"
            "Xu1 a b nowhere\n")
    with pytest.raises(ValueError, match=r"^line 4: instance 'u1'"):
        parse_spice(deck)

    # port-count mismatch names the X line too
    deck = (".subckt inv a y\nMn y a gnd gnd nmos W=1u\n.ends\n"
            "Xu1 a b c inv\n")
    with pytest.raises(ValueError, match=r"^line 4: instance 'u1' of 'inv'"):
        parse_spice(deck)


def test_parse_error_line_number_points_at_statement_start():
    # a fault inside a continuation is charged to the line the statement
    # started on
    deck = "* c\nMn1 y a gnd gnd nmos\n+ W=banana L=1u\n"
    with pytest.raises(ValueError, match=r"^line 2: cannot parse SPICE"):
        parse_spice(deck)


def test_parse_error_nested_subckt_names_both_lines():
    deck = ".subckt outer a\n.subckt inner b\n"
    with pytest.raises(ValueError, match=r"^line 2: nested .* line 1"):
        parse_spice(deck)


def test_parse_error_bad_element_value_has_line():
    with pytest.raises(ValueError, match=r"^line 1: cannot parse SPICE"):
        parse_spice("Cload y gnd banana\n")
    with pytest.raises(ValueError, match=r"^line 1: malformed capacitor"):
        parse_spice("Cload y gnd\n")
    with pytest.raises(ValueError, match=r"^line 1: malformed resistor"):
        parse_spice("Rw y gnd\n")
    with pytest.raises(ValueError, match=r"^line 2: \.ends without"):
        parse_spice("* nothing open\n.ends\n")
    with pytest.raises(ValueError, match=r"^line 1: cannot infer polarity"):
        parse_spice("Mn1 y a gnd gnd zzz W=1u L=1u\n")
    # duplicate element names surface with the second definition's line
    with pytest.raises(ValueError, match=r"^line 2: .*duplicate"):
        parse_spice("Mn1 y a gnd gnd nmos W=1u\nMn1 y a gnd gnd nmos W=1u\n")


def test_roundtrip_write_then_parse():
    b = CellBuilder("nand2", ports=["a", "b", "y"])
    b.nand(["a", "b"], "y", wn=5.0, wp=3.0)
    nand = b.build()
    top = Cell(name="pair", ports=["a", "b", "y1", "y2", "vdd", "gnd"])
    top.instantiate("g1", nand, a="a", b="b", y="y1", vdd="vdd", gnd="gnd")
    top.instantiate("g2", nand, a="y1", b="b", y="y2", vdd="vdd", gnd="gnd")

    text = write_spice(top)
    reparsed = parse_spice(text, top="pair")
    assert reparsed.transistor_count() == top.transistor_count()

    f1, f2 = flatten(top), flatten(reparsed)
    assert {t.name for t in f1.transistors} == {t.name for t in f2.transistors}
    for t1 in f1.transistors:
        t2 = f2.transistor(t1.name)
        assert t1.polarity == t2.polarity
        assert t1.w_um == pytest.approx(t2.w_um)
        assert (t1.gate, t1.drain, t1.source) == (t2.gate, t2.drain, t2.source)


def test_writer_emits_children_first():
    inv_b = CellBuilder("inv", ports=["a", "y"])
    inv_b.inverter("a", "y")
    top = Cell(name="t", ports=["a", "y"])
    top.instantiate("u1", inv_b.build(), a="a", y="y")
    text = write_spice(top)
    assert text.index(".subckt inv") < text.index(".subckt t")
