"""Unit tests for repro.netlist.erc."""

from repro.designs.adders import domino_carry_adder
from repro.netlist.builder import CellBuilder
from repro.netlist.erc import erc_clean, run_erc
from repro.netlist.flatten import flatten


def rules_of(violations):
    return {v.rule for v in violations}


def test_clean_inverter():
    b = CellBuilder("inv", ports=["a", "y"])
    b.inverter("a", "y")
    assert erc_clean(flatten(b.build()))


def test_clean_full_designs():
    assert erc_clean(flatten(domino_carry_adder(4)))


def test_floating_gate_detected():
    b = CellBuilder("bad", ports=["a", "y"])
    b.inverter("a", "y")
    b.nmos("nowhere", "y", "gnd", w=2.0)  # gate net driven by nothing
    violations = run_erc(flatten(b.build()))
    assert "floating_gate" in rules_of(violations)
    # The same net also shows as undriven.
    assert "undriven_net" in rules_of(violations)


def test_dangling_channel_detected():
    b = CellBuilder("bad", ports=["a"])
    b.nmos("a", "stub", "gnd", w=2.0)  # drain goes nowhere
    violations = run_erc(flatten(b.build()))
    assert "dangling_channel" in rules_of(violations)


def test_rail_short_detected():
    b = CellBuilder("bad", ports=[])
    b.nmos("vdd", "vdd", "gnd", w=2.0)  # always-on bridge
    violations = run_erc(flatten(b.build()))
    assert "rail_short" in rules_of(violations)


def test_gate_between_rails_is_not_a_short():
    """An ordinary off device across the rails gated by a signal is just
    half of a gate; only permanently-on bridges are shorts."""
    b = CellBuilder("ok", ports=["en"])
    b.nmos("en", "vdd", "gnd", w=2.0)  # questionable but not a DC short
    violations = run_erc(flatten(b.build()))
    assert "rail_short" not in rules_of(violations)


def test_self_loop_detected():
    b = CellBuilder("bad", ports=["a", "y"])
    b.inverter("a", "y")
    b.nmos("a", "y", "y", w=5.0)  # both channel terminals on y
    violations = run_erc(flatten(b.build()))
    assert "self_loop" in rules_of(violations)


def test_decap_gate_to_rail_is_clean():
    """A MOS decap (gate to vdd, channel shorted on gnd) trips only the
    self-loop note, not floating-gate rules."""
    b = CellBuilder("decap", ports=[])
    b.nmos("vdd", "gnd", "gnd", w=20.0)
    violations = run_erc(flatten(b.build()))
    assert "floating_gate" not in rules_of(violations)
    assert "undriven_net" not in rules_of(violations)


def test_port_driven_inputs_are_not_undriven():
    b = CellBuilder("ok", ports=["a", "y"])
    b.nand(["a", "a"], "y")
    assert erc_clean(flatten(b.build()))
