"""Unit tests for repro.netlist.builder."""

import pytest

from repro.netlist.builder import CellBuilder


def test_rails_added_automatically():
    b = CellBuilder("g", ports=["a", "y"])
    assert "vdd" in b.cell.ports and "gnd" in b.cell.ports


def test_rails_opt_out():
    b = CellBuilder("g", ports=["a"], add_rails=False)
    assert b.cell.ports == ["a"]


def test_inverter_template():
    b = CellBuilder("inv", ports=["a", "y"])
    b.inverter("a", "y", wn=2.0, wp=5.0)
    cell = b.build()
    assert len(cell.transistors) == 2
    n = next(t for t in cell.transistors if t.polarity == "nmos")
    p = next(t for t in cell.transistors if t.polarity == "pmos")
    assert n.w_um == 2.0 and n.source == "gnd"
    assert p.w_um == 5.0 and p.source == "vdd"


def test_nand_structure():
    b = CellBuilder("nand3", ports=["a", "b", "c", "y"])
    b.nand(["a", "b", "c"], "y", wn=6.0, wp=4.0)
    cell = b.build()
    nmos = [t for t in cell.transistors if t.polarity == "nmos"]
    pmos = [t for t in cell.transistors if t.polarity == "pmos"]
    assert len(nmos) == 3 and len(pmos) == 3
    # Series N stack: exactly one N device touches gnd; all P touch vdd.
    assert sum(1 for t in nmos if "gnd" in t.channel_terminals()) == 1
    assert all("vdd" in t.channel_terminals() for t in pmos)


def test_nor_structure():
    b = CellBuilder("nor2", ports=["a", "b", "y"])
    b.nor(["a", "b"], "y")
    cell = b.build()
    nmos = [t for t in cell.transistors if t.polarity == "nmos"]
    pmos = [t for t in cell.transistors if t.polarity == "pmos"]
    assert all("gnd" in t.channel_terminals() for t in nmos)
    assert sum(1 for t in pmos if "vdd" in t.channel_terminals()) == 1


def test_empty_gate_rejected():
    b = CellBuilder("bad", ports=["y"])
    with pytest.raises(ValueError):
        b.nand([], "y")
    with pytest.raises(ValueError):
        b.nor([], "y")


def test_domino_gate_has_precharge_foot_keeper_and_output_inverter():
    b = CellBuilder("dom", ports=["clk", "a", "b", "y"])
    dyn = b.domino_gate("clk", ["a", "b"], "y")
    cell = b.build()
    # Precharge: PMOS gated by clk touching the dynamic node and vdd.
    pre = [t for t in cell.transistors
           if t.polarity == "pmos" and t.gate == "clk"
           and dyn in t.channel_terminals() and "vdd" in t.channel_terminals()]
    assert len(pre) == 1
    # Foot: NMOS gated by clk reaching gnd.
    foot = [t for t in cell.transistors
            if t.polarity == "nmos" and t.gate == "clk"
            and "gnd" in t.channel_terminals()]
    assert len(foot) == 1
    # Keeper: PMOS gated by the output, holding dyn high.
    keep = [t for t in cell.transistors
            if t.polarity == "pmos" and t.gate == "y"
            and dyn in t.channel_terminals()]
    assert len(keep) == 1
    # Output inverter driven by dyn.
    out_inv = [t for t in cell.transistors if t.gate == dyn]
    assert len(out_inv) == 2


def test_domino_gate_keeperless():
    b = CellBuilder("dom", ports=["clk", "a", "y"])
    dyn = b.domino_gate("clk", ["a"], "y", keeper=False)
    cell = b.build()
    keep = [t for t in cell.transistors
            if t.polarity == "pmos" and t.gate == "y" and dyn in t.channel_terminals()]
    assert not keep


def test_dual_rail_domino_two_dynamic_nodes():
    b = CellBuilder("dr", ports=["clk", "a", "a_b", "t", "f"])
    dyn_t, dyn_f = b.dual_rail_domino("clk", ["a"], ["a_b"], "t", "f")
    assert dyn_t != dyn_f
    # Per rail: precharge + evaluate + foot + output inverter (2) + keeper = 6.
    assert b.build().transistor_count() == 12


def test_dcvsl_cross_coupled_loads():
    b = CellBuilder("dcvsl", ports=["a", "b", "a_b", "b_b", "t", "f"])
    b.dcvsl(["a", "b"], ["a_b", "b_b"], "t", "f")
    cell = b.build()
    pmos = [t for t in cell.transistors if t.polarity == "pmos"]
    assert len(pmos) == 2
    gates = {t.gate for t in pmos}
    drains = {t.drain for t in pmos}
    assert gates == {"t", "f"} and drains == {"t", "f"}


def test_transparent_latch_storage_node():
    b = CellBuilder("lat", ports=["d", "q", "clk", "clk_b"])
    store = b.transparent_latch("d", "q", "clk", "clk_b")
    cell = b.build()
    assert any(store in t.channel_terminals() for t in cell.transistors)
    assert cell.transistor_count() == 8  # tgate(2) + inv(2) + fb inv(2) + fb tgate(2)


def test_sram_cell_lengthening_applied_to_all_devices():
    b = CellBuilder("bit", ports=["bl", "bl_b", "wl"])
    b.sram_cell("bl", "bl_b", "wl", l_add=0.045)
    cell = b.build()
    assert cell.transistor_count() == 6
    assert all(t.l_add_um == 0.045 for t in cell.transistors)


def test_fresh_net_names_unique():
    b = CellBuilder("x", ports=[])
    names = {b.net() for _ in range(100)}
    assert len(names) == 100
