"""Unit tests for repro.netlist.flatten."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.cell import Cell
from repro.netlist.devices import Transistor
from repro.netlist.flatten import flatten


def inverter_cell(name="inv"):
    b = CellBuilder(name, ports=["a", "y"])
    b.inverter("a", "y")
    return b.build()


def test_flatten_leaf_cell():
    flat = flatten(inverter_cell())
    assert flat.device_count() == 2
    assert set(flat.nets) >= {"a", "y", "vdd", "gnd"}
    assert flat.nets["a"].gate_pins()
    assert flat.nets["vdd"].is_supply and flat.nets["gnd"].is_ground


def test_flatten_two_level_hierarchy_names():
    inv = inverter_cell()
    top = Cell(name="buf", ports=["in", "out", "vdd", "gnd"])
    top.instantiate("u1", inv, a="in", y="mid")
    top.instantiate("u2", inv, a="mid", y="out")
    flat = flatten(top)
    names = {t.name for t in flat.transistors}
    assert any(n.startswith("u1.") for n in names)
    assert any(n.startswith("u2.") for n in names)
    # "mid" is a top-level local net, shared by both instances.
    assert "mid" in flat.nets
    assert len(flat.nets["mid"].pins) == 4  # 2 drains + 2 gate pins... (1 gate pin per device of u2)


def test_flatten_mid_net_pin_accounting():
    inv = inverter_cell()
    top = Cell(name="buf", ports=["in", "out"])
    top.instantiate("u1", inv, a="in", y="mid")
    top.instantiate("u2", inv, a="mid", y="out")
    flat = flatten(top)
    mid = flat.nets["mid"]
    assert len(mid.channel_pins()) == 2  # u1's two drains
    assert len(mid.gate_pins()) == 2  # u2's two gates


def test_rail_aliases_merge():
    cell = Cell(name="t", ports=[])
    cell.add(Transistor("m1", "nmos", "a", "y", "VSS", w_um=1.0))
    cell.add(Transistor("m2", "nmos", "b", "y", "gnd!", w_um=1.0))
    cell.add(Transistor("m3", "pmos", "a", "y", "VCC", w_um=1.0))
    flat = flatten(cell)
    assert "gnd" in flat.nets and "vdd" in flat.nets
    assert len(flat.nets["gnd"].channel_pins()) == 2
    assert len(flat.nets["vdd"].channel_pins()) == 1


def test_unconnected_non_rail_port_rejected():
    inv = inverter_cell()
    top = Cell(name="t", ports=[])
    top.instantiate("u1", inv, a="in")  # 'y' left dangling
    with pytest.raises(ValueError, match="unconnected"):
        flatten(top)


def test_rails_connect_implicitly():
    inv = inverter_cell()
    top = Cell(name="t", ports=["in", "out"])
    top.instantiate("u1", inv, a="in", y="out")  # vdd/gnd not mapped
    flat = flatten(top)
    assert len(flat.nets["vdd"].pins) == 1
    assert len(flat.nets["gnd"].pins) == 1


def test_ports_marked_on_nets():
    flat = flatten(inverter_cell())
    assert flat.nets["a"].is_port
    assert flat.nets["y"].is_port


def test_local_nets_get_hierarchical_names():
    b = CellBuilder("nand2", ports=["a", "b", "y"])
    b.nand(["a", "b"], "y")
    nand = b.build()
    top = Cell(name="t", ports=["a", "b", "y"])
    top.instantiate("g", nand, a="a", b="b", y="y")
    flat = flatten(top)
    internal = [n for n in flat.nets if n.startswith("g.")]
    assert len(internal) == 1  # the series-stack midpoint


def test_rebuild_connectivity_after_mutation():
    flat = flatten(inverter_cell())
    t = flat.transistors[0]
    t.gate = "new_input"
    flat.rebuild_connectivity()
    assert "new_input" in flat.nets
    assert flat.nets["new_input"].gate_pins()


def test_total_width_by_polarity():
    flat = flatten(inverter_cell())
    assert flat.total_width_um("nmos") == pytest.approx(2.0)
    assert flat.total_width_um("pmos") == pytest.approx(4.0)
    assert flat.total_width_um() == pytest.approx(6.0)
