"""Fingerprint invalidation semantics: an edit invalidates exactly the
stages whose declared inputs changed."""

import dataclasses

from repro.core.campaign import DesignBundle
from repro.core.stages import FlowStage
from repro.netlist.builder import CellBuilder
from repro.process.technology import strongarm_technology
from repro.store import (
    STAGE_INPUTS,
    design_fingerprint,
    stage_keys,
)
from repro.store.fingerprint import (
    fingerprint_callable,
    fingerprint_cell_geometry,
    fingerprint_cell_topology,
)
from repro.timing.clocking import TwoPhaseClock


def small_cell():
    b = CellBuilder("dp", ports=["a", "b", "c", "y", "q", "clk", "clk_b"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "and_ab")
    b.nor(["and_ab", "c"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    return b.build()


def make_bundle(**overrides):
    defaults = dict(
        name="dp",
        cell=small_cell(),
        technology=strongarm_technology(),
        clock=TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9),
        clock_hints=("clk", "clk_b"),
        rtl_intent={"y": lambda a, b, c: not ((a and b) or c)},
        rtl_inputs={"y": ("a", "b", "c")},
        use_layout=False,
    )
    defaults.update(overrides)
    return DesignBundle(**defaults)


def changed_stages(base: DesignBundle, edited: DesignBundle) -> set[FlowStage]:
    k0 = stage_keys(base)
    k1 = stage_keys(edited)
    return {stage for stage in k0 if k0[stage] != k1[stage]}


def test_identical_bundles_share_every_key():
    assert changed_stages(make_bundle(), make_bundle()) == set()


def test_every_executed_stage_has_declared_inputs():
    # BEHAVIORAL_RTL is the paper's upstream input, not a stage the
    # campaign executes; every stage run() can reach has a dependency set
    assert set(STAGE_INPUTS) == set(FlowStage) - {FlowStage.BEHAVIORAL_RTL}


def test_device_resize_invalidates_everything():
    cell = small_cell()
    cell.transistors[0].w_um *= 2
    assert changed_stages(make_bundle(), make_bundle(cell=cell)) \
        == set(STAGE_INPUTS)


def test_pessimism_tweak_invalidates_timing_only():
    base = make_bundle()
    edited = make_bundle(pessimism=dataclasses.replace(
        base.pessimism, derate_max=base.pessimism.derate_max * 1.01))
    assert changed_stages(base, edited) == {FlowStage.TIMING_VERIFICATION}


def test_rtl_edit_invalidates_logic_only():
    edited = make_bundle(rtl_intent={"y": lambda a, b, c: not (a and b)},
                         rtl_inputs={"y": ("a", "b", "c")})
    assert changed_stages(make_bundle(), edited) \
        == {FlowStage.LOGIC_VERIFICATION}


def test_clock_period_leaves_structure_alone():
    edited = make_bundle(clock=TwoPhaseClock(period_s=5.0e-9,
                                             non_overlap_s=0.1e-9))
    assert changed_stages(make_bundle(), edited) == {
        FlowStage.CIRCUIT_VERIFICATION, FlowStage.TIMING_VERIFICATION}


def test_mode_switch_invalidates_electrical_stages():
    changed = changed_stages(make_bundle(use_layout=False),
                             make_bundle(use_layout=True))
    assert FlowStage.LAYOUT in changed
    assert FlowStage.EXTRACTION in changed
    assert FlowStage.SCHEMATIC not in changed
    assert FlowStage.RECOGNITION not in changed
    assert FlowStage.LOGIC_VERIFICATION not in changed


def test_topology_ignores_device_rename_order_not_structure():
    """Reordering definitions of *distinct* devices changes nothing;
    the topology digest walks cells in sorted order."""
    c1 = small_cell()
    c2 = small_cell()
    c2.transistors.reverse()
    # element order within a cell is declaration order and is part of
    # the netlist's identity (the writer emits it); topology must still
    # treat the same set of devices on the same nets as equal
    assert fingerprint_cell_topology(c1) != "" \
        and fingerprint_cell_geometry(c1) != ""
    # same content, same digests, regardless of Python object identity
    assert fingerprint_cell_topology(c1) == \
        fingerprint_cell_topology(small_cell())
    assert fingerprint_cell_geometry(c1) == \
        fingerprint_cell_geometry(small_cell())


def test_callable_fingerprint_sees_code_not_name():
    f1 = lambda a, b: a and b      # noqa: E731
    f2 = lambda a, b: a and b      # noqa: E731
    f3 = lambda a, b: a or b       # noqa: E731
    assert fingerprint_callable(f1) == fingerprint_callable(f2)
    assert fingerprint_callable(f1) != fingerprint_callable(f3)
    # captured constants matter too
    def make(k):
        return lambda a: a == k
    assert fingerprint_callable(make(1)) != fingerprint_callable(make(2))


def test_combined_fingerprint_changes_with_any_component():
    base = design_fingerprint(make_bundle())
    cell = small_cell()
    cell.transistors[0].w_um *= 2
    edited = design_fingerprint(make_bundle(cell=cell))
    assert base.combined != edited.combined
    assert base.components["topology"] == edited.components["topology"]
    assert base.components["geometry"] != edited.components["geometry"]
