"""Unit tests for ``ArtifactStore.stats()`` and the verdict cache."""

import pytest

from repro.checks.registry import ALL_CHECKS
from repro.fleet.suite import adder8, alpha_slice
from repro.store import ArtifactStore, VerdictIndex, verdict_key

KEY1 = "a" * 16


class TestStoreStats:
    def test_empty_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.stats() == {"entries": 0, "total_bytes": 0,
                                 "quarantine_depth": 0, "degraded": False}

    def test_counts_entries_and_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        p1 = store.put(KEY1, {"x": list(range(50))})
        p2 = store.put("b" * 16, "small")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] == p1.stat().st_size + p2.stat().st_size
        assert stats["degraded"] is False

    def test_quarantine_depth(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put(KEY1, list(range(100)))
        path.write_bytes(path.read_bytes()[:-7])  # torn tail
        with pytest.raises(Exception):
            store.get(KEY1)
        stats = store.stats()
        assert stats["entries"] == 0
        assert stats["quarantine_depth"] == 1


class TestVerdictKey:
    def test_same_bundle_same_key(self):
        checks = tuple(ALL_CHECKS[:3])
        assert (verdict_key(alpha_slice(), checks=checks, timeout_s=2.0)
                == verdict_key(alpha_slice(), checks=checks, timeout_s=2.0))

    def test_different_design_different_key(self):
        assert verdict_key(alpha_slice()) != verdict_key(adder8())

    def test_battery_invocation_is_part_of_the_key(self):
        base = verdict_key(alpha_slice(), checks=tuple(ALL_CHECKS))
        fewer = verdict_key(alpha_slice(), checks=tuple(ALL_CHECKS[:2]))
        timed = verdict_key(alpha_slice(), checks=tuple(ALL_CHECKS),
                            timeout_s=1.0)
        assert len({base, fewer, timed}) == 3


class TestVerdictIndex:
    REPORT = {"design": "d", "ok": True, "tapeout_clean": True,
              "stages": [], "queue": [], "trace": []}

    def test_seal_then_load(self, tmp_path):
        index = VerdictIndex(ArtifactStore(tmp_path / "store"))
        key = verdict_key(adder8())
        assert index.load(key) is None
        assert index.seal(key, dict(self.REPORT), meta={"campaign": "c1"})
        assert index.load(key) == self.REPORT
        assert index.counters() == {"verdict_hits": 1, "verdict_misses": 1,
                                    "verdict_seals": 1,
                                    "verdict_rejected": 0}

    def test_wrong_shape_blob_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        index = VerdictIndex(store)
        key = verdict_key(adder8())
        store.put(key, {"schema": 999, "report": "not-a-dict"})
        assert index.load(key) is None
        assert index.counters()["verdict_rejected"] == 1
        # The bad blob was invalidated: the key is free to reseal.
        assert not store.has(key)
        assert index.seal(key, dict(self.REPORT))
        assert index.load(key) == self.REPORT
