"""Concurrent-writer safety of the artifact store.

The fleet's workers share one store and may race on a key (an expired
lease can make two workers checkpoint the same fingerprinted stage).
The per-key ``O_EXCL`` lock file must serialize them: one writer wins,
losers count ``write_contended`` and either wait or skip, a dead
writer's lock is broken, and the blob on disk is *always* a complete,
verifiable checkpoint -- pinned here by hammering one key from 8
processes.
"""

import json
import multiprocessing
import os

from repro.store import ArtifactStore

KEY = "c" * 16


def test_contended_put_waits_then_skips_duplicate(tmp_path):
    store = ArtifactStore(tmp_path / "store", lock_timeout_s=0.2)
    # Simulate a concurrent writer: the lock is held by a live process
    # (this one), so it is not stale and cannot be broken.
    lock = store._lock_path(KEY)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text(json.dumps({"pid": os.getpid(), "t": 1e18}))

    assert store.put(KEY, "duplicate") is None  # skipped, not interleaved
    assert store.counters()["store_write_contended"] == 1
    assert not store.has(KEY)

    lock.unlink()  # the "other writer" releases
    assert store.put(KEY, "fresh") is not None
    assert store.get(KEY)[0] == "fresh"


def test_dead_writers_lock_is_broken(tmp_path):
    store = ArtifactStore(tmp_path / "store", lock_timeout_s=2.0)
    # A lock owned by a provably dead pid: claim it via a real child
    # process that has already exited.
    child = multiprocessing.get_context("fork").Process(target=lambda: None)
    child.start()
    dead_pid = child.pid
    child.join()
    lock = store._lock_path(KEY)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text(json.dumps({"pid": dead_pid, "t": 1e18}))

    assert store.put(KEY, "recovered") is not None
    assert store.counters()["store_write_contended"] == 1
    assert store.get(KEY)[0] == "recovered"
    assert not lock.exists()


def test_corrupt_lock_payload_with_live_owner_is_not_broken(tmp_path):
    """Regression: a lock whose payload is missing ``"t"`` (or is plain
    garbage) must not read as written-at-epoch-0 and be broken while its
    owner is demonstrably alive."""
    store = ArtifactStore(tmp_path / "store", lock_timeout_s=0.2,
                          lock_stale_s=30.0)
    lock = store._lock_path(KEY)
    lock.parent.mkdir(parents=True, exist_ok=True)
    # Case 1: well-formed JSON, live pid, no "t" field at all.
    lock.write_text(json.dumps({"pid": os.getpid()}))
    assert store.put(KEY, "dupe") is None   # waited, skipped -- no break
    assert lock.exists()                    # the live owner keeps its lock
    assert not store.has(KEY)

    # Case 2: unparseable payload entirely; owner unknowable.  The lock
    # may only be broken after lock_stale_s of *monotonic* observation,
    # which a 0.2 s contended put never reaches.
    lock.write_text("{not json")
    assert store.put(KEY, "dupe2") is None
    assert lock.exists()

    lock.unlink()
    assert store.put(KEY, "fresh") is not None
    assert store.get(KEY)[0] == "fresh"


def test_unknowable_owner_lock_broken_after_monotonic_observation(tmp_path):
    """An ownerless lock (garbage payload) is broken once this process
    has watched the identical file for lock_stale_s monotonic seconds."""
    store = ArtifactStore(tmp_path / "store", lock_timeout_s=1.0,
                          lock_stale_s=0.05)
    lock = store._lock_path(KEY)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text("garbage")
    # First put starts the observation window and (0.05 s < 1.0 s
    # timeout) lives to see it expire: the orphan lock is broken and the
    # write lands.
    assert store.put(KEY, "recovered") is not None
    assert store.get(KEY)[0] == "recovered"
    assert not lock.exists()


def test_lock_observation_resets_when_lock_changes(tmp_path):
    """A lock that is actively re-written (a new claimant) restarts the
    staleness observation -- only an *idle* unknowable lock ages."""
    store = ArtifactStore(tmp_path / "store", lock_stale_s=10.0)
    lock = store._lock_path(KEY)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text("claim-one")
    assert store._lock_is_stale(lock) is False  # window opens
    first = store._lock_watch[str(lock)]
    lock.write_text("claim-two-longer")        # signature changes
    assert store._lock_is_stale(lock) is False
    assert store._lock_watch[str(lock)][0] != first[0]


def _hammer(root, barrier, rounds, payload, out):
    store = ArtifactStore(root, lock_timeout_s=30.0)
    barrier.wait()
    written = skipped = 0
    for _ in range(rounds):
        if store.put(KEY, payload) is None:
            skipped += 1
        else:
            written += 1
    out.put((written, skipped, store.counters()["store_write_contended"]))


def test_eight_processes_hammering_one_key(tmp_path):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(8)
    out = ctx.Queue()
    # A chunky payload so writes take long enough to actually overlap.
    payload = {"blob": list(range(20_000))}
    procs = [ctx.Process(target=_hammer,
                         args=(tmp_path / "store", barrier, 10, payload, out))
             for _ in range(8)]
    for p in procs:
        p.start()
    results = [out.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    written = sum(r[0] for r in results)
    skipped = sum(r[1] for r in results)
    contended = sum(r[2] for r in results)
    assert written + skipped == 8 * 10  # every attempt accounted for
    assert written >= 1
    assert contended >= 1  # the lock actually serialized somebody

    # After the stampede the blob is a complete, verified checkpoint --
    # never a torn interleaving of two writers.
    store = ArtifactStore(tmp_path / "store")
    got, _meta = store.get(KEY)
    assert got == payload
    assert store.counters()["store_corrupt"] == 0
    assert not list(store.tmp_dir.iterdir())  # no in-flight residue
    assert not store._lock_path(KEY).exists()  # nobody left holding it
