"""Unit tests for the crash-safe artifact store."""

import os

import pytest

from repro.store import ArtifactStore, CorruptArtifact, StoreMiss

KEY1 = "a" * 16
KEY2 = "b" * 16


def test_put_get_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    payload = {"findings": [1, 2, 3], "nested": {"x": (4.5, "y")}}
    store.put(KEY1, payload, meta={"stage": "extraction"})
    got, meta = store.get(KEY1)
    assert got == payload
    assert meta == {"stage": "extraction"}
    assert store.counters() == {"store_hits": 1, "store_misses": 0,
                                "store_writes": 1, "store_corrupt": 0,
                                "store_write_contended": 0,
                                "store_writes_retried": 0,
                                "store_writes_failed": 0,
                                "store_writes_skipped": 0,
                                "store_quarantine_swept": 0,
                                "store_degraded": 0}


def test_miss_raises_and_counts(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    with pytest.raises(StoreMiss):
        store.get(KEY1)
    assert store.counters()["store_misses"] == 1
    assert not store.has(KEY1)


def test_overwrite_replaces(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put(KEY1, "old")
    store.put(KEY1, "new")
    payload, _ = store.get(KEY1)
    assert payload == "new"
    assert store.keys() == [KEY1]


def test_invalid_key_rejected(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    for bad in ("", "short", "UPPERCASE0000000", "../../etc/passwd",
                "g" * 16, "a" * 65):
        with pytest.raises(ValueError):
            store.put(bad, 1)


def test_truncated_blob_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    path = store.put(KEY1, list(range(100)))
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 7])  # torn tail
    with pytest.raises(CorruptArtifact):
        store.get(KEY1)
    assert not store.has(KEY1)  # moved aside, not left to re-trip
    assert list(store.quarantine_dir.iterdir())
    assert store.counters()["store_corrupt"] == 1


def test_bitflip_blob_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    path = store.put(KEY1, b"payload-bytes-here")
    raw = bytearray(path.read_bytes())
    raw[-3] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(CorruptArtifact, match="checksum mismatch"):
        store.get(KEY1)


def test_garbage_header_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    path = store.put(KEY1, 42)
    path.write_bytes(b"\x00\x01\x02 not a header")
    with pytest.raises(CorruptArtifact):
        store.get(KEY1)


def test_foreign_key_blob_rejected(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    src = store.put(KEY1, "hello")
    # file a valid blob under the wrong key, as a botched copy would
    dst = store._path(KEY2)
    dst.parent.mkdir(parents=True, exist_ok=True)
    dst.write_bytes(src.read_bytes())
    with pytest.raises(CorruptArtifact, match="foreign key"):
        store.get(KEY2)


def test_quarantine_names_never_collide(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    for _ in range(3):
        path = store.put(KEY1, "x")
        path.write_bytes(b"junk")
        with pytest.raises(CorruptArtifact):
            store.get(KEY1)
    assert len(list(store.quarantine_dir.iterdir())) == 3


def test_invalidate(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    assert store.invalidate(KEY1) is False
    store.put(KEY1, 1)
    assert store.invalidate(KEY1) is True
    assert not store.has(KEY1)
    with pytest.raises(StoreMiss):
        store.get(KEY1)


def test_clear_tmp_removes_stale_inflight_files(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    (store.tmp_dir / "deadbeef.orphan.tmp").write_bytes(b"partial")
    assert store.clear_tmp() == 1
    assert not list(store.tmp_dir.iterdir())


def test_no_tmp_residue_after_put(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put(KEY1, list(range(1000)))
    assert not list(store.tmp_dir.iterdir())


def test_store_survives_reopen(tmp_path):
    ArtifactStore(tmp_path / "store").put(KEY1, {"k": "v"})
    reopened = ArtifactStore(tmp_path / "store")
    payload, _ = reopened.get(KEY1)
    assert payload == {"k": "v"}


def test_atomicity_no_partial_object_on_write_failure(tmp_path):
    """A payload that fails to serialize must leave nothing behind."""
    store = ArtifactStore(tmp_path / "store")
    with pytest.raises(Exception):
        store.put(KEY1, lambda: None)  # lambdas don't pickle
    assert not store.has(KEY1)
    assert not list(store.tmp_dir.iterdir())
