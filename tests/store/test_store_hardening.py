"""Write-path hardening: bounded retries, degraded mode, quarantine cap.

These are the store-side halves of the chaos contract
(:mod:`repro.chaos` supplies the faults; this file drives the same
paths with plain monkeypatched failures so the hardening is pinned
independently of the injection machinery).
"""

import errno
import hashlib

import pytest

from repro.store import ArtifactStore, CorruptArtifact, StoreWriteError


def key(name: str) -> str:
    return hashlib.sha256(name.encode()).hexdigest()


class FlakyStore(ArtifactStore):
    """Fails the first ``fail_first`` locked writes with ``fail_errno``."""

    def __init__(self, root, *, fail_first, fail_errno=errno.EIO, **kw):
        super().__init__(root, **kw)
        self.fail_first = fail_first
        self.fail_errno = fail_errno
        self.attempts = 0

    def _put_locked(self, key, payload, meta, path):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise OSError(self.fail_errno, "flaky disk")
        return super()._put_locked(key, payload, meta, path)


def test_transient_write_faults_are_retried_with_backoff(tmp_path):
    store = FlakyStore(tmp_path, fail_first=2,
                       write_retries=2, write_backoff_s=0.001)
    assert store.put(key("a"), {"v": 1}) is not None
    assert store.get(key("a"))[0] == {"v": 1}
    assert store.writes_retried == 2
    assert store.writes_failed == 0
    assert not store.degraded


def test_exhausted_enospc_sets_sticky_degraded_mode(tmp_path):
    store = FlakyStore(tmp_path, fail_first=99, fail_errno=errno.ENOSPC,
                       write_retries=1, write_backoff_s=0.001)
    with pytest.raises(StoreWriteError, match="after 2 attempt"):
        store.put(key("a"), {"v": 1})
    assert store.degraded
    # Sticky: every later write is skipped without touching the disk.
    before = store.attempts
    assert store.put(key("b"), {"v": 2}) is None
    assert store.attempts == before
    assert store.writes_skipped == 1
    assert store.counters()["store_degraded"] == 1


def test_exhausted_eio_fails_without_degrading(tmp_path):
    store = FlakyStore(tmp_path, fail_first=99, fail_errno=errno.EIO,
                       write_retries=1, write_backoff_s=0.001)
    with pytest.raises(StoreWriteError):
        store.put(key("a"), {"v": 1})
    assert not store.degraded  # only ENOSPC is the systemic signal
    assert store.writes_failed == 1


def test_non_oserror_propagates_without_retry(tmp_path):
    store = ArtifactStore(tmp_path, write_retries=3)
    with pytest.raises(Exception) as exc_info:
        store.put(key("a"), {"f": lambda: None})  # unpicklable payload
    assert not isinstance(exc_info.value, StoreWriteError)
    assert store.writes_retried == 0  # caller bug, not a disk fault


def test_quarantine_growth_is_bounded(tmp_path):
    # Satellite of the chaos harness: repeated corruption of the same
    # (or different) keys must not grow quarantine/ without bound.
    store = ArtifactStore(tmp_path, quarantine_keep=2)
    for i in range(5):
        k = key(f"blob{i}")
        path = store.put(k, {"v": i})
        raw = path.read_bytes()
        path.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        with pytest.raises(CorruptArtifact):
            store.get(k)
    files = [p for p in store.quarantine_dir.iterdir() if p.is_file()]
    assert len(files) <= 2
    assert store.quarantine_swept == 3
    assert store.counters()["store_quarantine_swept"] == 3
