"""Fleet chaos acceptance: hung workers, poison shards, clock jumps.

Three supervision behaviors the SIGKILL death test cannot reach:

* a SIGSTOPped worker is *alive* -- only the heartbeat-age watchdog
  can notice it, kill it, and requeue its job;
* a shard that kills every worker that leases it must be quarantined
  (ERROR-status circuit stage) instead of eating the respawn budget
  and abandoning the design;
* a lease-clock jump must re-arm the leases of provably live workers,
  not hand their jobs out twice.
"""

from fleet_harness import (
    STOP_SENTINEL_ENV,
    KillWorkerAlways,
    StopWorkerOnce,
    dp_bundle,
)

from repro.chaos import FaultPlan
from repro.checks.registry import ALL_CHECKS
from repro.core.campaign import CbvCampaign
from repro.core.report import report_to_json
from repro.core.stages import FlowStage, StageStatus
from repro.fleet import FleetConfig, run_fleet


def test_sigstopped_worker_is_reaped_by_the_watchdog(tmp_path, monkeypatch):
    sentinel = tmp_path / "stop.sentinel"
    monkeypatch.setenv(STOP_SENTINEL_ENV, str(sentinel))
    checks = ALL_CHECKS + (StopWorkerOnce,)
    # lease_s is deliberately long: if the watchdog misses, the frozen
    # worker sits on its lease until the fleet times out, so a pass
    # here proves the heartbeat-age path (not lease expiry) reaped it.
    config = FleetConfig(store_dir=str(tmp_path / "store"), checks=checks,
                         heartbeat_s=0.1, lease_s=60.0, hung_after_s=1.5,
                         fleet_timeout_s=120.0)
    result = run_fleet({"dp": dp_bundle}, workers=2, config=config)

    assert sentinel.exists()  # a worker really froze mid-battery
    assert result.failed == {}
    m = result.metrics
    assert m.workers_hung == 1
    assert m.retries >= 1
    hung = [e for e in result.trace.events if e.event == "worker_hung"]
    assert len(hung) == 1
    assert hung[0].counters["beat_age_s"] >= 1.5

    # With the sentinel present the hostile check is a no-op, so the
    # single-process baseline is directly comparable -- and must match.
    baseline = CbvCampaign(dp_bundle()).run(checks=checks)
    assert (report_to_json(result.reports["dp"], canonical=True)
            == report_to_json(baseline, canonical=True))


def test_poison_shard_degrades_the_design_instead_of_killing_it(tmp_path):
    checks = ALL_CHECKS + (KillWorkerAlways,)
    config = FleetConfig(store_dir=str(tmp_path / "store"), checks=checks,
                         heartbeat_s=0.1, lease_s=10.0, hung_after_s=5.0,
                         max_respawns=8, fleet_timeout_s=180.0)
    result = run_fleet({"dp": dp_bundle}, workers=2, config=config)

    # The design is NOT failed: it ships a degraded report.
    assert result.failed == {}
    assert "dp" in result.reports
    assert result.metrics.poison_shards >= 1
    events = [e.event for e in result.trace.events]
    assert "job_poisoned" in events

    report = result.reports["dp"]
    by_stage = {s.stage: s for s in report.stages}
    circuit = by_stage[FlowStage.CIRCUIT_VERIFICATION]
    assert circuit.status is StageStatus.ERROR
    assert "poison" in circuit.summary.lower()
    # The rest of the flow still concluded around the quarantined shard.
    assert FlowStage.TIMING_VERIFICATION in by_stage
    assert not report.ok()  # degraded is degraded -- never silent


def test_clock_jump_rearms_live_leases_instead_of_requeueing(tmp_path):
    # Seed 8 is pinned: its first scheduler.clock draws fire within the
    # first few supervision ticks, while jobs are leased.
    plan = FaultPlan.make(8, rates={"scheduler.clock": 0.35},
                          clock_jump_s=120.0, max_per_hook=2)
    config = FleetConfig(store_dir=str(tmp_path / "store"),
                         heartbeat_s=0.1, lease_s=20.0, hung_after_s=5.0,
                         fleet_timeout_s=120.0, chaos=plan)
    result = run_fleet({"dp": dp_bundle}, workers=2, config=config)

    assert result.failed == {}
    events = [e.event for e in result.trace.events]
    assert events.count("clock_jump") >= 1
    # The jump expired every outstanding lease by 120 virtual seconds;
    # the holders were provably alive, so the leases re-armed and no
    # job ran twice.
    assert result.metrics.leases_rearmed >= 1
    assert result.metrics.workers_dead == 0
    assert result.metrics.workers_hung == 0

    baseline = CbvCampaign(dp_bundle()).run()
    assert (report_to_json(result.reports["dp"], canonical=True)
            == report_to_json(baseline, canonical=True))
