"""End-to-end fleet acceptance: canonical byte-identity vs single-process.

The fleet's whole contract is that distribution is invisible in the
results: a 2-worker sharded run of the seed suite must serialize -- in
canonical form -- byte-identically to ``CbvCampaign.run()`` in this
process.  These tests also pin the observability surface (metrics,
merged trace, Prometheus rendering) the benchmark and CI lean on.
"""

from repro.core.campaign import CbvCampaign
from repro.core.report import report_to_json
from repro.fleet import (
    SEED_SUITE,
    FleetConfig,
    FleetMetrics,
    render_prometheus,
    run_fleet,
)


def fast_config(tmp_path, **kw):
    kw.setdefault("store_dir", str(tmp_path / "store"))
    kw.setdefault("heartbeat_s", 0.1)
    kw.setdefault("fleet_timeout_s", 120.0)
    return FleetConfig(**kw)


def canonical_baselines():
    return {name: report_to_json(CbvCampaign(factory()).run(),
                                 canonical=True)
            for name, factory in SEED_SUITE.items()}


def test_two_worker_fleet_is_byte_identical_to_single_process(tmp_path):
    result = run_fleet(SEED_SUITE, workers=2, config=fast_config(tmp_path))
    assert result.failed == {}
    assert sorted(result.reports) == sorted(SEED_SUITE)
    for name, baseline in canonical_baselines().items():
        assert report_to_json(result.reports[name],
                              canonical=True) == baseline

    m = result.metrics
    assert m.designs_done == len(SEED_SUITE) and m.designs_failed == 0
    assert m.jobs_by_kind["prepare"] == len(SEED_SUITE)
    assert m.jobs_by_kind["finalize"] == len(SEED_SUITE)
    assert m.jobs_by_kind["battery"] >= len(SEED_SUITE)
    assert m.jobs_done == m.jobs_submitted
    assert m.workers_dead == 0

    events = [e.event for e in result.trace.events]
    assert "fleet_start" in events and "fleet_end" in events
    assert events.count("design_done") == len(SEED_SUITE)
    # Merge order is the stable (worker, seq) identity, so the merged
    # log is reproducible no matter how worker messages raced in.
    keys = [(e.worker, e.seq) for e in result.trace.events]
    assert keys == sorted(keys)
    assert {e.worker for e in result.trace.events} >= {"fleet", "w0", "w1"}


def test_single_worker_fleet_matches_too(tmp_path):
    result = run_fleet(SEED_SUITE, workers=1, config=fast_config(tmp_path))
    assert result.failed == {}
    assert result.metrics.steals == 0  # nobody to steal from
    for name, baseline in canonical_baselines().items():
        assert report_to_json(result.reports[name],
                              canonical=True) == baseline


def test_fleet_reuses_the_checkpoint_store(tmp_path):
    config = fast_config(tmp_path)
    first = run_fleet(SEED_SUITE, workers=2, config=config)
    second = run_fleet(SEED_SUITE, workers=2,
                       config=fast_config(tmp_path))  # same store_dir
    assert second.failed == {}
    for name in SEED_SUITE:
        assert (report_to_json(second.reports[name], canonical=True)
                == report_to_json(first.reports[name], canonical=True))


def test_prometheus_rendering_is_well_formed():
    m = FleetMetrics(workers=2)
    m.record_job("battery", 1.5)
    m.record_job("battery", 0.5)
    m.record_job("prepare", 0.25)
    text = render_prometheus(m)
    assert "# HELP repro_fleet_workers " in text
    assert "# TYPE repro_fleet_steals counter" in text
    assert "repro_fleet_workers 2" in text
    assert 'repro_fleet_stage_wall_seconds{kind="battery"} 2.0' in text
    assert 'repro_fleet_jobs_done_by_kind{kind="prepare"} 1' in text
    assert text.endswith("\n")
    assert m.to_dict()["jobs_by_kind"] == {"battery": 2, "prepare": 1}
