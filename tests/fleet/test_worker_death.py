"""Worker-supervision acceptance: SIGKILL a worker mid-battery.

A hostile check (see :mod:`fleet_harness`) SIGKILLs the first worker
process that runs it, exactly once fleet-wide.  The supervisor must
detect the death, requeue the dead worker's leased job onto a freshly
spawned replacement, and still deliver a merged report canonically
byte-identical to a single-process run of the same check list.
"""

from fleet_harness import SENTINEL_ENV, KillWorkerOnce, dp_bundle

from repro.checks.registry import ALL_CHECKS
from repro.core.campaign import CbvCampaign
from repro.core.report import report_to_json
from repro.fleet import FleetConfig, run_fleet

HOSTILE_CHECKS = ALL_CHECKS + (KillWorkerOnce,)


def test_sigkilled_worker_is_replaced_and_report_matches(tmp_path,
                                                         monkeypatch):
    sentinel = tmp_path / "kill.sentinel"
    monkeypatch.setenv(SENTINEL_ENV, str(sentinel))
    config = FleetConfig(store_dir=str(tmp_path / "store"),
                         checks=HOSTILE_CHECKS,
                         heartbeat_s=0.1, lease_s=10.0,
                         fleet_timeout_s=120.0)
    result = run_fleet({"dp": dp_bundle}, workers=2, config=config)

    # The check fired (and therefore a worker actually died mid-battery).
    assert sentinel.exists()
    assert result.failed == {}
    m = result.metrics
    assert m.workers_dead == 1
    assert m.workers_spawned == 3  # 2 initial + 1 replacement
    assert m.retries >= 1

    events = [e.event for e in result.trace.events]
    assert "worker_dead" in events
    assert "worker_spawn" in events
    assert "job_requeue" in events
    # The replacement got a fresh id (never a reused one), so
    # (worker, seq) identities in the merged log cannot collide even
    # across a respawn.  Whether w2 or the surviving worker ends up
    # *running* the requeued job is a steal-timing race, so assert on
    # the spawn record, not on w2 having recorded events.
    spawned = {e.name for e in result.trace.events
               if e.event == "worker_spawn"}
    assert spawned == {"w0", "w1", "w2"}
    keys = [(e.worker, e.seq) for e in result.trace.events]
    assert len(set(keys)) == len(keys)

    # With the sentinel present the hostile check is a clean no-op, so
    # the single-process baseline is directly comparable -- and the
    # fleet's merged report must match it byte for byte.
    baseline = CbvCampaign(dp_bundle()).run(checks=HOSTILE_CHECKS)
    assert (report_to_json(result.reports["dp"], canonical=True)
            == report_to_json(baseline, canonical=True))
