"""Shared design factory and hostile check for the fleet tests.

Everything here is module-level so fleet workers can unpickle the
bundle factory (and the killer check class) by reference, and so the
in-test single-process baseline hashes the very same RTL-intent lambda
code objects -- the same trick ``tests/core/checkpoint_harness.py``
uses for the kill-and-resume acceptance test.
"""

import os
import signal

from repro.checks.base import Check
from repro.core.campaign import DesignBundle
from repro.netlist.builder import CellBuilder
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock

#: Environment variable naming the kill sentinel file.  Workers inherit
#: it across fork; the first battery that runs :class:`KillWorkerOnce`
#: with no sentinel on disk creates it and SIGKILLs its own process.
SENTINEL_ENV = "REPRO_FLEET_KILL_SENTINEL"

#: Sentinel for :class:`StopWorkerOnce` (SIGSTOP instead of SIGKILL).
STOP_SENTINEL_ENV = "REPRO_FLEET_STOP_SENTINEL"


def dp_bundle() -> DesignBundle:
    b = CellBuilder("dp", ports=["a", "b", "c", "y", "q", "clk", "clk_b"])
    b.nand(["a", "b"], "n1")
    b.inverter("n1", "and_ab")
    b.nor(["and_ab", "c"], "y")
    b.transparent_latch("y", "q", "clk", "clk_b")
    return DesignBundle(
        name="dp",
        cell=b.build(),
        technology=strongarm_technology(),
        clock=TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9),
        clock_hints=("clk", "clk_b"),
        rtl_intent={"y": lambda a, b, c: not ((a and b) or c)},
        rtl_inputs={"y": ("a", "b", "c")},
    )


class KillWorkerOnce(Check):
    """SIGKILL the hosting worker -- but only the first time, fleet-wide.

    The sentinel file (``O_EXCL``-claimed, so exactly one process dies
    even if two run the check concurrently) makes the retry -- and the
    single-process baseline run afterwards -- sail through cleanly with
    zero findings, keeping the canonical reports comparable.
    """

    name = "kill_worker_once"

    def run(self, ctx):
        sentinel = os.environ.get(SENTINEL_ENV)
        if not sentinel:
            return []
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return []
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)
        return []  # unreachable


class StopWorkerOnce(Check):
    """SIGSTOP the hosting worker -- once, fleet-wide.

    A stopped process is the watchdog's case, not the death monitor's:
    it is still alive (so ``worker_dead`` never fires on its own) and
    its heartbeat thread is frozen with it, so only the heartbeat-age
    watchdog (``FleetConfig.hung_after_s``) can notice.  Same O_EXCL
    sentinel discipline as :class:`KillWorkerOnce`, so the retry and
    the single-process baseline both run it as a clean no-op.
    """

    name = "stop_worker_once"

    def run(self, ctx):
        sentinel = os.environ.get(STOP_SENTINEL_ENV)
        if not sentinel:
            return []
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return []
        os.close(fd)
        os.kill(os.getpid(), signal.SIGSTOP)
        return []  # resumes here only after the watchdog SIGKILLs us


class KillWorkerAlways(Check):
    """SIGKILL *every* worker that runs it -- the poison-shard case.

    No sentinel: the battery shard containing this check kills its
    worker on every attempt, so retries can never get it through and
    the scheduler must quarantine the shard instead of abandoning the
    design.
    """

    name = "kill_worker_always"

    def run(self, ctx):
        os.kill(os.getpid(), signal.SIGKILL)
        return []  # unreachable
