"""Unit tests for the work-stealing lease queue (pure state, fake clock)."""

from repro.fleet.jobs import Job, JobKind
from repro.fleet.queue import WorkQueue


def job(job_id, design="dp", deps=()):
    return Job(job_id=job_id, design=design, kind=JobKind.BATTERY,
               bundle_ref="x:y", deps=tuple(deps))


def two_worker_queue():
    wq = WorkQueue(lease_s=10.0)
    wq.add_worker("w0")
    wq.add_worker("w1")
    return wq


def test_affinity_is_stable_per_design():
    wq = two_worker_queue()
    for i in range(6):
        wq.submit(job(f"dp:{i}"))
    # All six jobs of one design land on the same deque: one worker
    # drains them in FIFO order...
    homes = [w for w in ("w0", "w1") if wq._ready[w]]
    assert len(homes) == 1
    home, thief = homes[0], ("w1" if homes[0] == "w0" else "w0")
    lease = wq.next_job(home, now=0.0)
    assert lease.job.job_id == "dp:0" and not lease.stolen
    # ...and the idle peer steals from the opposite end.
    stolen = wq.next_job(thief, now=0.0)
    assert stolen.stolen and stolen.job.job_id == "dp:5"
    assert wq.steals == 1


def test_next_job_returns_none_when_empty():
    wq = two_worker_queue()
    assert wq.next_job("w0", now=0.0) is None
    assert wq.next_job("unknown", now=0.0) is None


def test_dependencies_gate_release():
    wq = two_worker_queue()
    wq.submit(job("dp:prepare"))
    assert not wq.submit(job("dp:b1", deps=["dp:prepare"]))
    assert not wq.submit(job("dp:fin", deps=["dp:b1"]))
    assert wq.blocked_count() == 2 and wq.depth() == 1

    lease = wq.next_job("w0", now=0.0) or wq.next_job("w1", now=0.0)
    released = wq.complete(lease.job.job_id)
    assert [j.job_id for j in released] == ["dp:b1"]
    assert wq.blocked_count() == 1 and wq.depth() == 1


def test_lease_expiry_requeues_to_front_with_retry_bump():
    wq = two_worker_queue()
    wq.submit(job("dp:a"))
    wq.submit(job("dp:b"))
    worker = next(w for w in ("w0", "w1") if wq._ready[w])
    lease = wq.next_job(worker, now=0.0)
    assert wq.expired(now=5.0) == []
    assert wq.renew(lease.job.job_id, now=5.0)
    assert wq.expired(now=14.0) == []  # renewed at 5, good until 15
    expired = wq.expired(now=16.0)
    assert [l.job.job_id for l in expired] == ["dp:a"]

    requeued = wq.release("dp:a")
    assert requeued.retries == 1
    # Front of the deque: the interrupted job runs next, not last.
    assert wq.next_job(worker, now=16.0).job.job_id == "dp:a"
    assert wq.requeues == 1 and wq.expirations == 1


def test_complete_is_idempotent_and_removes_requeued_duplicates():
    wq = two_worker_queue()
    wq.submit(job("dp:a"))
    worker = next(w for w in ("w0", "w1") if wq._ready[w])
    wq.next_job(worker, now=0.0)
    wq.release("dp:a")           # job back on a deque
    assert wq.depth() == 1
    assert wq.complete("dp:a") == []   # late result from original worker
    assert wq.depth() == 0             # duplicate swept from the deque
    assert wq.complete("dp:a") == []   # second completion is a no-op
    assert wq.is_done("dp:a")
    assert wq.release("dp:a") is None  # done jobs cannot be requeued


def test_remove_worker_returns_orphans_for_resubmission():
    wq = two_worker_queue()
    for i in range(4):
        wq.submit(job(f"dp:{i}"))
    victim = next(w for w in ("w0", "w1") if wq._ready[w])
    orphans = wq.remove_worker(victim)
    assert len(orphans) == 4
    for orphan in orphans:
        wq.submit(orphan)
    survivor = "w1" if victim == "w0" else "w0"
    assert wq.depth() == 4
    assert wq.next_job(survivor, now=0.0).job.job_id == "dp:0"


def test_cancel_design_drops_queued_and_blocked_jobs():
    wq = two_worker_queue()
    wq.submit(job("dp:a"))
    wq.submit(job("dp:fin", deps=["dp:a"]))
    wq.submit(job("other:a", design="other"))
    dropped = wq.cancel_design("dp")
    assert sorted(j.job_id for j in dropped) == ["dp:a", "dp:fin"]
    assert wq.unfinished() == 1
    # Cancelled ids are refused if something tries to resubmit them.
    assert not wq.submit(job("dp:a"))
    assert wq.unfinished() == 1


def test_fail_drops_leased_job():
    wq = two_worker_queue()
    wq.submit(job("dp:a"))
    worker = next(w for w in ("w0", "w1") if wq._ready[w])
    lease = wq.next_job(worker, now=0.0)
    failed = wq.fail(lease.job.job_id)
    assert failed is lease.job
    assert wq.unfinished() == 0
    assert not wq.submit(job("dp:a"))  # stays cancelled
