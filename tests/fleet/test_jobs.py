"""Unit tests for fleet job decomposition and check partitioning."""

import pytest

from repro.checks.registry import ALL_CHECKS
from repro.core.campaign import DesignBundle
from repro.fleet.jobs import (
    FleetConfig,
    JobKind,
    battery_jobs,
    finalize_job,
    partition_checks,
    prepare_job,
    resolve_bundle,
    shard_count_for,
)


def test_partition_covers_registry_contiguously():
    for n in range(0, 40):
        for k in range(1, 8):
            bounds = partition_checks(n, k)
            # Concatenated in order, the slices reproduce range(n) --
            # the invariant the merged battery's byte-identity rests on.
            flat = [i for lo, hi in bounds for i in range(lo, hi)]
            assert flat == list(range(n))
            sizes = [hi - lo for lo, hi in bounds]
            assert max(sizes) - min(sizes) <= 1


def test_partition_never_makes_empty_shards():
    assert partition_checks(3, 10) == [(0, 1), (1, 2), (2, 3)]
    assert partition_checks(0, 4) == [(0, 0)]
    with pytest.raises(ValueError):
        partition_checks(-1, 2)


def test_shard_count_respects_cccs_checks_and_limit():
    assert shard_count_for(0, 17, 4) == 1
    assert shard_count_for(1, 17, 4) == 1
    assert shard_count_for(3, 17, 4) == 3
    assert shard_count_for(100, 17, 4) == 4
    assert shard_count_for(100, 2, 4) == 2


def test_job_graph_shapes():
    config = FleetConfig(battery_shards=4)
    prep = prepare_job("dp", "tests:whatever")
    assert prep.job_id == "dp:prepare"
    assert prep.kind is JobKind.PREPARE and prep.deps == ()

    shards = battery_jobs("dp", "tests:whatever", cccs=10, config=config)
    assert len(shards) == 4
    assert [j.job_id for j in shards] == [
        "dp:battery[1/4]", "dp:battery[2/4]",
        "dp:battery[3/4]", "dp:battery[4/4]"]
    assert all(j.deps == ("dp:prepare",) for j in shards)
    lo_hi = [(j.shard.lo, j.shard.hi) for j in shards]
    assert lo_hi == partition_checks(len(ALL_CHECKS), 4)

    fin = finalize_job("dp", "tests:whatever", shards)
    assert fin.job_id == "dp:finalize"
    assert fin.deps == tuple(j.job_id for j in shards)
    assert fin.shards == tuple(j.shard for j in shards)

    inline = finalize_job("dp", "tests:whatever", [])
    assert inline.shards == () and inline.deps == ()


def test_resolve_bundle_from_string_and_callable():
    bundle = resolve_bundle("repro.fleet.suite:adder8")
    assert isinstance(bundle, DesignBundle) and bundle.name == "adder8"
    from repro.fleet.suite import adder8
    assert resolve_bundle(adder8).name == "adder8"


def test_resolve_bundle_rejects_bad_refs():
    with pytest.raises(ValueError, match="module:factory"):
        resolve_bundle("no-colon-here")
    with pytest.raises(TypeError, match="not a DesignBundle"):
        resolve_bundle(lambda: 42)
