"""Unit tests for repro.rtl.memory."""

import pytest

from repro.rtl.memory import Memory
from repro.rtl.module import Phase, RtlModule
from repro.rtl.signals import X
from repro.rtl.simulator import PhaseSimulator


def make_memory(words=8, width=8):
    m = RtlModule("m")
    mem = Memory(m, "ram", words=words, width=width)
    return m, mem, PhaseSimulator(m)


def test_write_then_read():
    m, mem, sim = make_memory()
    mem.write_enable.set(1)
    mem.write_addr.set(3)
    mem.write_data.set(0xAB)
    sim.cycle()
    assert mem.read(3) == 0xAB
    assert mem.read(0) is X  # untouched words stay unknown


def test_two_phase_write_discipline():
    """Reads during the write cycle see old data; new data appears only
    after PHI2 commits."""
    m, mem, sim = make_memory()
    mem.load({2: 0x11})
    mem.write_enable.set(1)
    mem.write_addr.set(2)
    mem.write_data.set(0x22)
    sim.eval_phase(Phase.PHI1)
    assert mem.read(2) == 0x11   # master sampled, array unchanged
    sim.eval_phase(Phase.PHI2)
    assert mem.read(2) == 0x22


def test_write_enable_gating():
    m, mem, sim = make_memory()
    mem.load({1: 0x55})
    mem.write_enable.set(0)
    mem.write_addr.set(1)
    mem.write_data.set(0xFF)
    sim.cycle(3)
    assert mem.read(1) == 0x55


def test_unknown_enable_poisons_target_word():
    m, mem, sim = make_memory()
    mem.load({4: 0x99})
    mem.write_enable.set(X)
    mem.write_addr.set(4)
    mem.write_data.set(0x00)
    sim.cycle()
    assert mem.read(4) is X  # conservative: might have been written


def test_width_masking_and_bounds():
    m, mem, sim = make_memory(words=4, width=4)
    mem.write_enable.set(1)
    mem.write_addr.set(0)
    mem.write_data.set(0x1F)   # beyond 4 bits
    sim.cycle()
    assert mem.read(0) == 0xF
    with pytest.raises(IndexError):
        mem.read(9)
    with pytest.raises(IndexError):
        mem.load({17: 1})
    with pytest.raises(ValueError):
        Memory(RtlModule("x"), "bad", words=0, width=4)


def test_dump_skips_undefined():
    m, mem, sim = make_memory()
    mem.load({0: 1, 5: 2})
    assert mem.dump() == {0: 1, 5: 2}


def test_read_x_address():
    m, mem, sim = make_memory()
    assert mem.read(X) is X
