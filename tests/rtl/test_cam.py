"""Unit tests for repro.rtl.cam."""

import numpy as np
import pytest

from repro.rtl.cam import Cam


def test_basic_write_and_match():
    cam = Cam(entries=8, width=16)
    cam.write(3, 0xBEEF)
    cam.write(5, 0xCAFE)
    hits = cam.match(0xBEEF)
    assert hits[3] and not hits[5]
    assert cam.first_hit(0xCAFE) == 5
    assert cam.first_hit(0x0000) is None


def test_invalid_entries_do_not_match():
    cam = Cam(entries=4, width=8)
    cam.write(0, 0xAA)
    cam.invalidate(0)
    assert cam.hit_count(0xAA) == 0
    cam.write(0, 0xAA)
    cam.write(1, 0xAA)
    assert cam.hit_count(0xAA) == 2
    cam.invalidate_all()
    assert cam.hit_count(0xAA) == 0


def test_ternary_masking():
    cam = Cam(entries=4, width=8)
    cam.write(0, 0b1010_0000, care_mask=0b1111_0000)  # low nibble wildcard
    assert cam.match(0b1010_0101)[0]
    assert cam.match(0b1010_1111)[0]
    assert not cam.match(0b1011_0000)[0]


def test_match_many_ports():
    """The paper's 2000-port CAM: simultaneous matching on many ports."""
    cam = Cam(entries=64, width=32)
    for i in range(64):
        cam.write(i, i * 7919)
    keys = [i * 7919 for i in range(2000)]
    hits = cam.match_many(keys)
    assert hits.shape == (2000, 64)
    # The first 64 ports hit exactly their own entry.
    for port in range(64):
        assert hits[port].sum() == 1
        assert hits[port, port]
    # Ports beyond the stored range miss entirely.
    assert hits[64:].sum() == 0


def test_match_many_agrees_with_match():
    cam = Cam(entries=16, width=12)
    rng = np.random.default_rng(7)
    for i in range(16):
        cam.write(i, int(rng.integers(0, 1 << 12)))
    keys = [int(rng.integers(0, 1 << 12)) for _ in range(50)]
    many = cam.match_many(keys)
    for port, key in enumerate(keys):
        assert np.array_equal(many[port], cam.match(key))


def test_width_and_index_validation():
    with pytest.raises(ValueError):
        Cam(entries=0, width=8)
    with pytest.raises(ValueError):
        Cam(entries=8, width=65)
    cam = Cam(entries=4, width=8)
    with pytest.raises(IndexError):
        cam.write(4, 0)
    with pytest.raises(IndexError):
        cam.stored(-1)


def test_full_width_64_bit_tags():
    cam = Cam(entries=2, width=64)
    tag = 0xFFFF_FFFF_FFFF_FFFF
    cam.write(0, tag)
    assert cam.match(tag)[0]
    assert cam.stored(0)[0] == tag
