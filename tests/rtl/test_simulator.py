"""Unit tests for repro.rtl.module and repro.rtl.simulator."""

import pytest

from repro.rtl.constructs import (
    ClockActivity,
    conditional_register,
    two_phase_register,
    xadd,
    xeq,
    xmux,
)
from repro.rtl.module import Phase, RtlModule
from repro.rtl.signals import X
from repro.rtl.simulator import PhaseSimulator, SimulationError


def test_combinational_process_fixpoint():
    m = RtlModule("comb")
    a = m.signal("a", 4, reset=3)
    b = m.signal("b", 4, reset=5)
    y = m.signal("y", 4)

    @m.comb
    def _sum():
        y.set(xadd(a.get(), b.get(), 4))

    sim = PhaseSimulator(m)
    sim.cycle()
    assert y.get() == 8


def test_two_phase_register_pipeline():
    """A register only advances once per full cycle."""
    m = RtlModule("pipe")
    counter = two_phase_register(m, "count", 8, lambda: xadd(counter.get(), 1, 8), reset=0)
    sim = PhaseSimulator(m)
    sim.cycle(5)
    assert counter.get() == 5


def test_phase_accuracy_master_vs_slave():
    m = RtlModule("p")
    count = two_phase_register(m, "c", 8, lambda: xadd(count.get(), 1, 8), reset=0)
    master = m.signals["c_m"]
    sim = PhaseSimulator(m)
    sim.eval_phase(Phase.PHI1)
    assert master.get() == 1   # master sampled
    assert count.get() == 0    # slave not yet
    sim.eval_phase(Phase.PHI2)
    assert count.get() == 1


def test_conditional_register_gating_and_activity():
    m = RtlModule("g")
    en = m.signal("en", 1, reset=0)
    activity = ClockActivity()
    reg = conditional_register(
        m, "r", 8,
        next_fn=lambda: xadd(reg.get(), 1, 8),
        enable_fn=en.get,
        activity=activity,
        reset=0,
    )
    sim = PhaseSimulator(m)
    sim.cycle(3)                      # gated: nothing moves
    assert reg.get() == 0
    en.set(1)
    sim.cycle(2)
    assert reg.get() == 2
    assert activity.enabled_updates > 0
    assert activity.gated_updates > 0
    assert 0.0 < activity.activity_factor() < 1.0


def test_x_poisons_arithmetic():
    m = RtlModule("x")
    a = m.signal("a", 8)  # reset X
    y = m.signal("y", 8)

    @m.comb
    def _inc():
        y.set(xadd(a.get(), 1, 8))

    sim = PhaseSimulator(m)
    sim.cycle()
    assert y.get() is X


def test_invariant_check_failure():
    m = RtlModule("inv")
    v = m.signal("v", 4, reset=9)

    @m.check
    def _small():
        value = v.get()
        if value is not X and value > 5:
            return f"v={value} exceeds 5"
        return None

    sim = PhaseSimulator(m)
    with pytest.raises(SimulationError, match="exceeds 5"):
        sim.cycle()


def test_unstable_fixpoint_detected():
    m = RtlModule("osc")
    a = m.signal("a", 1, reset=0)

    @m.comb
    def _invert():
        value = a.get()
        a.set(0 if value is X or value else 1)

    sim = PhaseSimulator(m, max_iterations=20)
    with pytest.raises(SimulationError, match="fixpoint"):
        sim.eval_phase(Phase.PHI1)


def test_hierarchy_flattening_and_duplicate_detection():
    top = RtlModule("top")
    child = RtlModule("child")
    child.signal("s", 1)
    top.submodule(child)
    top.signal("s", 1)  # same local name, different hierarchy: fine
    assert set(top.all_signals()) == {"top.s", "child.s"}

    dup = RtlModule("child")  # same module name clashes
    dup.signal("s", 1)
    top.submodule(dup)
    with pytest.raises(ValueError):
        top.all_signals()


def test_watch_and_trace():
    m = RtlModule("t")
    c = two_phase_register(m, "c", 4, lambda: xadd(c.get(), 1, 4), reset=0)
    sim = PhaseSimulator(m)
    sim.watch(c)
    sim.cycle(3)
    values = [v for _phase, v in sim.trace["t.c"]]
    assert values[-1] == 3
    assert len(values) == 6  # one sample per phase


def test_throughput_measurement():
    m = RtlModule("perf")
    c = two_phase_register(m, "c", 16, lambda: xadd(c.get(), 1, 16), reset=0)
    sim = PhaseSimulator(m)
    sim.cycle(200)
    assert sim.cycles_per_second() > 200  # the paper's per-CPU floor
    assert sim.cpus_needed(2e9) > 0


def test_mux_and_eq_helpers():
    assert xmux(1, 0xA, 0xB) == 0xA
    assert xmux(0, 0xA, 0xB) == 0xB
    assert xmux(X, 0xA, 0xB) is X
    assert xmux(X, 0xA, 0xA) == 0xA
    assert xeq(3, 3) == 1
    assert xeq(3, 4) == 0
    assert xeq(X, 4) is X
