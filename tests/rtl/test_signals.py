"""Unit tests for repro.rtl.signals."""

import pytest

from repro.rtl.signals import Signal, X, xand, xnot, xor_unknown


def test_signal_width_masking():
    s = Signal("s", width=4)
    s.set(0x1F)
    assert s.get() == 0xF


def test_signal_width_validation():
    with pytest.raises(ValueError):
        Signal("s", width=0)
    with pytest.raises(ValueError):
        Signal("s", width=1000)


def test_x_is_singleton_and_unbool():
    s = Signal("s", width=8)
    assert s.get() is X
    assert s.is_x()
    with pytest.raises(TypeError):
        bool(X)


def test_set_returns_change_flag():
    s = Signal("s", width=2, reset=0)
    assert s.set(1) is True
    assert s.set(1) is False
    assert s.set(X) is True
    assert s.set(X) is False
    assert s.set(0) is True


def test_reset_value():
    s = Signal("s", width=8, reset=0xAB)
    assert s.get() == 0xAB
    s.set(0)
    s.reset()
    assert s.get() == 0xAB


def test_bit_access():
    s = Signal("s", width=4, reset=0b1010)
    assert s.bit(0) == 0
    assert s.bit(1) == 1
    assert s.bit(3) == 1
    with pytest.raises(IndexError):
        s.bit(4)
    s.set(X)
    assert s.bit(2) is X


def test_x_aware_operators():
    assert xand(1, 1) == 1
    assert xand(0, X) == 0  # zero dominates
    assert xand(1, X) is X
    assert xor_unknown(1, 0) == 1
    assert xor_unknown(X, 0) is X
    assert xnot(0b0101, width=4) == 0b1010
    assert xnot(X) is X
