"""Unit tests for repro.rtl.stimulus."""

import pytest

from repro.rtl.signals import Signal
from repro.rtl.stimulus import RandomStimulus, StimulusProgram


def test_random_stimulus_reproducible():
    sigs1 = [Signal("a", 8), Signal("b", 4)]
    sigs2 = [Signal("a", 8), Signal("b", 4)]
    seq1 = [dict(v) for v in RandomStimulus(sigs1, seed=42).vectors(20)]
    seq2 = [dict(v) for v in RandomStimulus(sigs2, seed=42).vectors(20)]
    assert seq1 == seq2
    seq3 = [dict(v) for v in RandomStimulus(sigs1, seed=43).vectors(20)]
    assert seq1 != seq3


def test_random_stimulus_applies_values():
    sig = Signal("a", 8)
    stim = RandomStimulus([sig], seed=1)
    vec = stim.next_vector()
    assert sig.get() == vec["a"]
    assert 0 <= vec["a"] <= 0xFF


def test_random_stimulus_bias():
    sig = Signal("wide", 64)
    high = RandomStimulus([sig], seed=9, bias=0.95)
    total_ones = 0
    for vec in high.vectors(50):
        total_ones += bin(vec["wide"]).count("1")
    assert total_ones > 0.8 * 64 * 50  # strongly biased toward 1


def test_bias_validation():
    with pytest.raises(ValueError):
        RandomStimulus([], seed=1, bias=1.5)


def test_seed_is_required():
    # Two legs of one campaign must never silently share a default seed.
    with pytest.raises(ValueError, match="explicit seed"):
        RandomStimulus([Signal("a", 4)])


def test_pure_mode_leaves_signals_untouched():
    sig = Signal("a", 8, reset=0x5A)
    stim = RandomStimulus([sig], seed=7)
    pure = [dict(v) for v in stim.vectors(5, apply=False)]
    assert sig.get() == 0x5A  # no side effect
    # The pure enumeration is the exact sequence an applying stimulus
    # with the same seed produces.
    replay = RandomStimulus([sig], seed=7)
    applied = [dict(v) for v in replay.vectors(5)]
    assert pure == applied
    assert sig.get() == applied[-1]["a"]


def test_apply_flag_on_next_vector():
    sig = Signal("a", 8, reset=0)
    stim = RandomStimulus([sig], seed=3)
    vec = stim.next_vector(apply=False)
    assert sig.get() == 0
    assert 0 <= vec["a"] <= 0xFF


def test_stimulus_program_steps_and_holds():
    a, b = Signal("a", 4, reset=0), Signal("b", 4, reset=0)
    prog = StimulusProgram({"a": a, "b": b})
    prog.step(a=1, b=2).step(a=3).repeat(2, b=7)
    assert len(prog) == 4
    applied = list(prog.play())
    assert applied[0] == {"a": 1, "b": 2}
    assert a.get() == 3  # last write to a
    assert b.get() == 7


def test_stimulus_program_unknown_signal():
    prog = StimulusProgram({"a": Signal("a", 1)})
    with pytest.raises(KeyError):
        prog.step(zz=1)
