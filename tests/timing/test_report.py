"""Unit tests for repro.timing.report."""

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock
from repro.timing.driver import analyze_design
from repro.timing.report import render_path, render_timing_report


def make_run(period=6.25e-9, skew=0.0):
    b = CellBuilder("pipe", ports=["d", "q", "phi", "phi_b"])
    b.inverter("d", "s0")
    b.inverter("s0", "s1")
    b.transparent_latch("s1", "q", "phi", "phi_b")
    return analyze_design(flatten(b.build()), strongarm_technology(),
                          TwoPhaseClock(period_s=period, skew_s=skew),
                          clock_hints=["phi", "phi_b"])


def test_render_path_breakdown():
    run = make_run()
    endpoint = next(p.endpoint for p in run.report.critical_paths
                    if len(p.nets) > 1)
    text = render_path(run.analyzer, run.report, endpoint)
    assert endpoint in text
    assert "ps" in text
    assert "->" in text
    # Per-arc rows accumulate: the running column appears per hop.
    assert text.count("@") >= 1


def test_render_path_unknown_endpoint():
    run = make_run()
    assert "no timing path" in render_path(run.analyzer, run.report, "zz")


def test_render_full_report_sections():
    run = make_run()
    text = render_timing_report(run.analyzer, run.report)
    assert "minimum cycle time" in text
    assert "setup violations   : 0" in text
    assert "race violations    : 0" in text


def test_render_report_includes_races():
    run = make_run(skew=3e-9)
    text = render_timing_report(run.analyzer, run.report)
    assert "RACE at" in text


def test_render_report_notes_loop_breaks():
    run = make_run()
    if run.analyzer.graph.notes:
        text = render_timing_report(run.analyzer, run.report)
        assert "note:" in text
