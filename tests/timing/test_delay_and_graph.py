"""Unit tests for repro.timing.delay and repro.timing.graph."""

import pytest

from repro.extraction.annotate import annotate
from repro.extraction.wireload import WireloadModel
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.recognition.recognizer import recognize
from repro.timing.delay import ArcDelayCalculator
from repro.timing.graph import build_timing_graph
from repro.timing.pessimism import PessimismSettings


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def make_stack(tech, build, ports):
    b = CellBuilder("dut", ports=ports)
    build(b)
    flat = flatten(b.build())
    par = WireloadModel().extract(flat, tech.wires)
    fast = annotate(flat, par, tech, Corner.FAST)
    slow = annotate(flat, par, tech, Corner.SLOW)
    design = recognize(flat)
    return design, ArcDelayCalculator(fast, slow)


def test_calculator_requires_correct_corners(tech):
    b = CellBuilder("x", ports=["a", "y"])
    b.inverter("a", "y")
    flat = flatten(b.build())
    par = WireloadModel().extract(flat, tech.wires)
    typ = annotate(flat, par, tech, Corner.TYPICAL)
    with pytest.raises(ValueError):
        ArcDelayCalculator(typ, typ)


def test_inverter_graph_and_bounds(tech):
    design, calc = make_stack(tech, lambda b: b.inverter("a", "y"), ["a", "y"])
    graph = build_timing_graph(design, calc)
    arcs = [a for a in graph.arcs if a.src == "a" and a.dst == "y"]
    assert len(arcs) == 1
    arc = arcs[0]
    assert 0 < arc.d_min < arc.d_max
    # Gate delays should land in the 10s-of-ps to sub-ns regime.
    assert 1e-12 < arc.d_max < 2e-9


def test_series_stack_slower_than_single_device(tech):
    design1, calc1 = make_stack(tech, lambda b: b.inverter("a", "y", wn=4.0),
                                ["a", "y"])
    g1 = build_timing_graph(design1, calc1)
    single = next(a for a in g1.arcs if a.dst == "y")

    design4, calc4 = make_stack(
        tech, lambda b: b.nand(["a", "b", "c", "d"], "y", wn=4.0),
        ["a", "b", "c", "d", "y"])
    g4 = build_timing_graph(design4, calc4)
    stacked = next(a for a in g4.arcs if a.src == "a" and a.dst == "y")
    assert stacked.d_max > 2.0 * single.d_max  # 4-high stack resistance


def test_domino_graph_arcs(tech):
    def build(b):
        b.domino_gate("clk", ["a", "b"], "y", dyn_net="dyn")

    b = CellBuilder("dut", ports=["clk", "a", "b", "y"])
    build(b)
    flat = flatten(b.build())
    par = WireloadModel().extract(flat, tech.wires)
    fast = annotate(flat, par, tech, Corner.FAST)
    slow = annotate(flat, par, tech, Corner.SLOW)
    design = recognize(flat)
    graph = build_timing_graph(design, ArcDelayCalculator(fast, slow))

    kinds: dict = {}
    for a in graph.arcs:
        kinds.setdefault((a.src, a.dst), set()).add(a.kind)
    assert "precharge" in kinds.get(("clk", "dyn"), set())
    assert "evaluate" in kinds.get(("clk", "dyn"), set())  # foot arc
    assert kinds.get(("a", "dyn")) == {"evaluate"}
    assert kinds.get(("dyn", "y")) == {"gate"}
    # Keeper feedback (y -> dyn) must NOT be an arc.
    assert ("y", "dyn") not in kinds


def test_pass_network_arcs(tech):
    def build(b):
        b.inverter("a", "drv")
        b.nmos_pass("drv", "out", "en")
        b.inverter("out", "y")

    design, calc = make_stack(tech, build, ["a", "en", "y"])
    graph = build_timing_graph(design, calc)
    # The inverter merges with the pass device into one CCC; timing must
    # still see data ("a") and enable ("en") arcs into "out".
    pairs = {(a.src, a.dst) for a in graph.arcs}
    assert ("a", "out") in pairs
    assert ("en", "out") in pairs
    assert ("out", "y") in pairs


def test_storage_loop_broken(tech):
    def build(b):
        b.inverter("x", "y")
        b.inverter("y", "x")

    design, calc = make_stack(tech, build, ["x", "y"])
    graph = build_timing_graph(design, calc)
    assert graph.notes  # a feedback arc was dropped
    # Remaining graph is acyclic: a topological order covers all nets.
    srcs = {a.src for a in graph.arcs}
    dsts = {a.dst for a in graph.arcs}
    assert srcs or dsts  # something remains


def test_pessimism_scale_widens_bounds(tech):
    b = CellBuilder("dut", ports=["a", "y"])
    b.inverter("a", "y")
    flat = flatten(b.build())
    par = WireloadModel().extract(flat, tech.wires)
    fast = annotate(flat, par, tech, Corner.FAST)
    slow = annotate(flat, par, tech, Corner.SLOW)
    design = recognize(flat)

    def width(settings):
        calc = ArcDelayCalculator(fast, slow, settings)
        graph = build_timing_graph(design, calc)
        arc = next(a for a in graph.arcs if a.dst == "y")
        return arc.d_max - arc.d_min

    assert width(PessimismSettings(scale=2.0)) > width(PessimismSettings(scale=1.0)) \
        > width(PessimismSettings(scale=0.0))
