"""Unit tests for repro.timing.sizing: automatic path sizing (paper §2.2).

The acceptance criterion is the real one: after sizing, the path is
faster -- according to both the static verifier and the transient golden
simulator.
"""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.recognition.recognizer import recognize
from repro.spice.circuit import PwlSource
from repro.spice.netlist_bridge import circuit_from_netlist
from repro.spice.transient import transient
from repro.spice.waveforms import crossing_time
from repro.timing.sizing import size_path


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def chain_flat(stages=3, load_f=200e-15):
    b = CellBuilder("chain", ports=["a", "y"])
    prev = "a"
    for i in range(stages):
        nxt = "y" if i == stages - 1 else f"s{i}"
        b.inverter(prev, nxt, wn=1.0, wp=2.5)  # uniformly tiny: bad for 200 fF
        prev = nxt
    b.cap("y", "gnd", load_f)
    return flatten(b.build()), ["a"] + [f"s{i}" for i in range(stages - 1)] + ["y"]


def sta_delay(flat, tech):
    from repro.extraction.annotate import annotate
    from repro.extraction.caps import Parasitics
    from repro.timing.delay import ArcDelayCalculator
    from repro.timing.graph import build_timing_graph

    design = recognize(flat)
    fast = annotate(flat, Parasitics(), tech, Corner.FAST)
    slow = annotate(flat, Parasitics(), tech, Corner.SLOW)
    graph = build_timing_graph(design, ArcDelayCalculator(fast, slow))
    arrival = {"a": 0.0}
    changed = True
    while changed:
        changed = False
        for arc in graph.arcs:
            if arc.src in arrival:
                t = arrival[arc.src] + arc.d_max
                if t > arrival.get(arc.dst, -1.0):
                    arrival[arc.dst] = t
                    changed = True
    return arrival["y"]


def golden_delay(flat, tech):
    vdd = tech.vdd_v
    circuit = circuit_from_netlist(
        flat, tech,
        stimulus={"a": PwlSource.step(0.0, vdd, 0.1e-9, 40e-12)})
    v_init = {}
    stage_nets = sorted(n for n in flat.nets if n.startswith("s")) + ["y"]
    for i, net in enumerate(stage_nets):
        v_init[net] = vdd if i % 2 == 0 else 0.0
    result = transient(circuit, t_stop=20e-9, dt=10e-12, v_init=v_init)
    t_in = crossing_time(result.wave("a"), vdd / 2, rising=True)
    t_out = crossing_time(result.wave("y"), vdd / 2, after=t_in)
    assert t_out is not None
    return t_out - t_in


def test_sizing_speeds_up_sta_and_golden(tech):
    load = 200e-15
    flat_ref, path = chain_flat(load_f=load)
    before_sta = sta_delay(flat_ref, tech)
    before_golden = golden_delay(flat_ref, tech)

    flat, path = chain_flat(load_f=load)
    design = recognize(flat)
    result = size_path(flat, design, tech, path, c_load_f=load)
    after_sta = sta_delay(flat, tech)
    after_golden = golden_delay(flat, tech)

    assert result.stage_effort > 1.0
    assert after_sta < 0.6 * before_sta
    assert after_golden < 0.6 * before_golden


def test_sizing_tapers_geometrically(tech):
    flat, path = chain_flat(stages=4, load_f=400e-15)
    design = recognize(flat)
    result = size_path(flat, design, tech, path, c_load_f=400e-15)
    caps = [s.c_in_after_f for s in result.stages]
    # Each stage presents ~stage_effort times the previous one's input cap.
    for earlier, later in zip(caps, caps[1:]):
        assert later / earlier == pytest.approx(result.stage_effort, rel=0.1)


def test_sizing_first_stage_untouched(tech):
    flat, path = chain_flat()
    first_widths = {t.name: t.w_um for t in flat.transistors
                    if t.gate == "a"}
    design = recognize(flat)
    size_path(flat, design, tech, path, c_load_f=100e-15)
    for t in flat.transistors:
        if t.name in first_widths:
            assert t.w_um == first_widths[t.name]


def test_sizing_respects_min_width_and_scale_cap(tech):
    flat, path = chain_flat(stages=2, load_f=1e-9)  # absurd load
    design = recognize(flat)
    result = size_path(flat, design, tech, path, c_load_f=1e-9,
                       max_scale=8.0)
    assert all(s.scale <= 8.0 for s in result.stages)
    assert all(t.w_um >= 0.4 for t in flat.transistors)


def test_sizing_validation(tech):
    flat, path = chain_flat()
    design = recognize(flat)
    with pytest.raises(ValueError):
        size_path(flat, design, tech, ["a"], c_load_f=1e-13)
    with pytest.raises(ValueError):
        size_path(flat, design, tech, ["a", "nosuch"], c_load_f=1e-13)


def test_sizing_works_on_multi_input_gates(tech):
    """The sized input is the path input; side inputs are untouched
    conceptually (whole-stage scaling is the logical-effort convention)."""
    b = CellBuilder("c", ports=["a", "bb", "y"])
    b.nand(["a", "bb"], "n1", wn=1.0, wp=1.0)
    b.inverter("n1", "y", wn=1.0, wp=2.5)
    b.cap("y", "gnd", 100e-15)
    flat = flatten(b.build())
    design = recognize(flat)
    result = size_path(flat, design, tech, ["a", "n1", "y"], c_load_f=100e-15)
    assert len(result.stages) == 2
    assert result.stages[1].scale > 1.0
