"""Unit tests for repro.timing.analyzer, constraints, clocking, driver."""

import pytest

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.timing.clocking import TwoPhaseClock
from repro.timing.constraints import ConstraintKind, generate_constraints, glitch_risks
from repro.timing.driver import analyze_design
from repro.timing.pessimism import PessimismSettings
from repro.recognition.recognizer import recognize


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


def latch_pipeline_cell(stages=3):
    """inverter chain -> transparent latch, clocked by phi1/phi1_b."""
    b = CellBuilder("pipe", ports=["d", "q", "phi", "phi_b"])
    prev = "d"
    for i in range(stages):
        nxt = f"s{i}"
        b.inverter(prev, nxt)
        prev = nxt
    b.transparent_latch(prev, "q", "phi", "phi_b")
    return b.build()


def test_clock_model_validation():
    with pytest.raises(ValueError):
        TwoPhaseClock(period_s=0.0)
    with pytest.raises(ValueError):
        TwoPhaseClock(period_s=1e-9, non_overlap_s=0.6e-9)
    clk = TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.25e-9)
    assert clk.phase_width_s == pytest.approx(2.875e-9)
    assert clk.frequency_hz() == pytest.approx(160e6)


def test_constraints_generated_for_latch(tech):
    flat = flatten(latch_pipeline_cell())
    design = recognize(flat, clock_hints=["phi", "phi_b"])
    constraints = generate_constraints(design)
    kinds = {c.kind for c in constraints}
    assert ConstraintKind.SETUP in kinds
    assert ConstraintKind.HOLD in kinds
    setups = [c for c in constraints if c.kind is ConstraintKind.SETUP]
    assert any(c.reference in ("phi", "phi_b") for c in setups)


def test_constraints_for_domino(tech):
    b = CellBuilder("dom", ports=["clk", "a", "y"])
    b.inverter("a", "a_inv")
    b.domino_gate("clk", ["a_inv"], "y", dyn_net="dyn")
    design = recognize(flatten(b.build()))
    constraints = generate_constraints(design)
    kinds = [c.kind for c in constraints]
    # The footed template is precharge-race-immune (the footer holds the
    # stack off during precharge); only GLITCH and SETUP apply.
    assert ConstraintKind.PRECHARGE_RACE not in kinds
    assert ConstraintKind.SETUP in kinds
    assert ConstraintKind.GLITCH in kinds
    # a_inv comes from a static inverter on a primary input: glitch risk.
    risky = glitch_risks(constraints)
    assert any(c.net == "a_inv" for c in risky)


def test_footless_domino_gets_precharge_race(tech):
    b = CellBuilder("dom", ports=["clk", "a", "y"])
    b.pmos("clk", "dyn", "vdd", w=4.0)   # footless: eval straight to gnd
    b.nmos("a", "dyn", "gnd", w=4.0)
    b.inverter("dyn", "y")
    design = recognize(flatten(b.build()), clock_hints=["clk"])
    constraints = generate_constraints(design)
    kinds = [c.kind for c in constraints]
    assert ConstraintKind.PRECHARGE_RACE in kinds


def test_domino_fed_domino_not_glitch_risky(tech):
    b = CellBuilder("dom2", ports=["clk", "a", "y2"])
    b.domino_gate("clk", ["a"], "y1", dyn_net="d1")
    b.domino_gate("clk", ["y1"], "y2", dyn_net="d2")
    design = recognize(flatten(b.build()))
    constraints = generate_constraints(design)
    risky_nets = {c.net for c in glitch_risks(constraints)}
    # y1 is a domino output inverter: monotonic, not risky.
    assert "y1" not in risky_nets


def test_full_run_critical_path_and_min_cycle(tech):
    flat = flatten(latch_pipeline_cell(stages=4))
    clk = TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9)
    run = analyze_design(flat, tech, clk, clock_hints=["phi", "phi_b"])
    report = run.report
    assert report.critical_paths
    # The latch storage node is an endpoint fed through the chain.
    endpoints = {p.endpoint for p in report.critical_paths}
    assert any(e.startswith("lat_") or e == "q" for e in endpoints)
    assert report.min_cycle_time_s > 0
    # At a 160 MHz-class period, a 4-inverter chain has positive slack.
    assert report.worst_slack() > 0
    assert not report.setup_violations


def test_setup_violation_at_absurd_frequency(tech):
    flat = flatten(latch_pipeline_cell(stages=4))
    clk = TwoPhaseClock(period_s=20e-12)  # 50 GHz: hopeless
    run = analyze_design(flat, tech, clk, clock_hints=["phi", "phi_b"])
    assert run.report.setup_violations


def test_min_cycle_time_consistency(tech):
    """Running at exactly the reported min cycle time leaves ~zero worst
    slack at the binding endpoint."""
    flat = flatten(latch_pipeline_cell(stages=5))
    clk = TwoPhaseClock(period_s=6.25e-9)
    run = analyze_design(flat, tech, clk, clock_hints=["phi", "phi_b"])
    t_min = run.report.min_cycle_time_s
    rerun = analyze_design(flat, tech, clk.scaled(t_min),
                           clock_hints=["phi", "phi_b"])
    assert rerun.report.worst_slack() == pytest.approx(0.0, abs=1e-12)
    assert not rerun.report.setup_violations


def test_races_are_frequency_independent(tech):
    """The Figure-4 claim: race margins do not move with the period."""
    flat = flatten(latch_pipeline_cell(stages=1))
    clk_fast = TwoPhaseClock(period_s=2e-9, skew_s=120e-12)
    clk_slow = TwoPhaseClock(period_s=50e-9, skew_s=120e-12)
    run_fast = analyze_design(flat, tech, clk_fast, clock_hints=["phi", "phi_b"])
    run_slow = analyze_design(flat, tech, clk_slow, clock_hints=["phi", "phi_b"])
    margins_fast = sorted(r.margin_s for r in run_fast.report.races)
    margins_slow = sorted(r.margin_s for r in run_slow.report.races)
    assert margins_fast == pytest.approx(margins_slow)


def test_race_appears_with_large_skew(tech):
    """A short path that clears zero skew loses to a big skew budget."""
    flat = flatten(latch_pipeline_cell(stages=1))
    clk_clean = TwoPhaseClock(period_s=6.25e-9, skew_s=0.0)
    clk_skewed = TwoPhaseClock(period_s=6.25e-9, skew_s=2e-9)
    clean = analyze_design(flat, tech, clk_clean, clock_hints=["phi", "phi_b"])
    skewed = analyze_design(flat, tech, clk_skewed, clock_hints=["phi", "phi_b"])
    assert len(skewed.report.races) > len(clean.report.races)


def test_false_path_exclusion_reduces_arrival(tech):
    def build(b):
        b.inverter("a", "m1")
        b.inverter("m1", "m2")
        b.inverter("m2", "m3")
        b.inverter("m3", "y")   # long path a -> y
        b.inverter("a", "y2")
        b.nand(["y2", "m3"], "q_in")
        b.transparent_latch("q_in", "q", "phi", "phi_b")

    b = CellBuilder("fp", ports=["a", "q", "y", "phi", "phi_b"])
    build(b)
    flat = flatten(b.build())
    clk = TwoPhaseClock(period_s=6.25e-9)
    full = analyze_design(flat, tech, clk, clock_hints=["phi", "phi_b"])
    pruned = analyze_design(flat, tech, clk, clock_hints=["phi", "phi_b"],
                            false_through=["m2"])
    # The long chain ends at port y; declaring m2 false cuts it off.
    full_y = full.report.arrivals["y"].t_max
    pruned_y = pruned.report.arrivals.get("y")
    assert full_y > 0
    assert pruned_y is None or pruned_y.t_max < full_y


def test_pessimism_monotonic_min_cycle(tech):
    flat = flatten(latch_pipeline_cell(stages=3))
    clk = TwoPhaseClock(period_s=6.25e-9)
    cycles = []
    for scale in (0.0, 1.0, 2.0):
        run = analyze_design(flat, tech, clk, clock_hints=["phi", "phi_b"],
                             pessimism=PessimismSettings(scale=scale))
        cycles.append(run.report.min_cycle_time_s)
    assert cycles[0] < cycles[1] < cycles[2]
