"""Unit tests for the incremental timing engine plumbing.

Covers the pieces the property suite exercises only end-to-end: the
arc-price cache, incremental load refresh, arc re-pricing after a
resize, the sizing loop's two modes, and the battery's setup/race check.
"""

import pytest

from repro.checks.base import CheckContext, Severity
from repro.checks.driver import make_context
from repro.checks.registry import run_battery
from repro.checks.timing_sta import SetupRaceCheck
from repro.designs.adders import domino_carry_adder, ripple_carry_adder
from repro.extraction.annotate import annotate, update_net_loads
from repro.extraction.wireload import WireloadModel
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.timing.arccache import ArcPriceCache
from repro.timing.clocking import TwoPhaseClock
from repro.timing.driver import analyze_design
from repro.timing.graph import reprice_arcs
from repro.timing.sizing import close_timing


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


CLOCK = TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9)


def chain_flat(lanes=4, stages=5, load_f=250e-15):
    ports = [f"a{k}" for k in range(lanes)] + [f"y{k}" for k in range(lanes)]
    b = CellBuilder("dp", ports=ports)
    for k in range(lanes):
        prev = f"a{k}"
        for i in range(stages):
            nxt = f"y{k}" if i == stages - 1 else f"l{k}s{i}"
            b.inverter(prev, nxt, wn=1.0, wp=2.5)
            prev = nxt
        b.cap(f"y{k}", "gnd", load_f)
    path = ["a0"] + [f"l0s{i}" for i in range(stages - 1)] + ["y0"]
    return flatten(b.build()), path


# -- arc-price cache ----------------------------------------------------------


def test_arc_cache_hits_on_repeated_slices(tech):
    flat = flatten(domino_carry_adder(8))
    cache = ArcPriceCache()
    cached = analyze_design(flat, tech, CLOCK, clock_hints=("clk",),
                            arc_cache=cache)
    assert cache.hits > cache.misses  # 8 identical slices: mostly hits

    fresh = analyze_design(flatten(domino_carry_adder(8)), tech, CLOCK,
                           clock_hints=("clk",))
    priced = {(a.src, a.dst, a.kind): (a.d_min, a.d_max)
              for a in cached.analyzer.graph.arcs}
    for arc in fresh.analyzer.graph.arcs:
        assert priced[(arc.src, arc.dst, arc.kind)] == (arc.d_min, arc.d_max)


def test_arc_cache_counters_shape():
    cache = ArcPriceCache()
    assert cache.drive_bounds(("k",), lambda: (1.0, 2.0)) == (1.0, 2.0)
    assert cache.drive_bounds(("k",), lambda: (9.0, 9.0)) == (1.0, 2.0)
    assert cache.counters() == {"arc_cache_hits": 1, "arc_cache_misses": 1,
                                "arc_cache_entries": 1}


# -- incremental load refresh -------------------------------------------------


def test_update_net_loads_matches_full_annotate(tech):
    flat, _ = chain_flat()
    parasitics = WireloadModel().extract(flat, tech.wires)
    live = annotate(flat, parasitics, tech, Corner.SLOW)

    resized = [t for t in flat.transistors if t.gate == "l0s1"]
    for t in resized:
        t.w_um *= 3.0
    flat.rebuild_connectivity()
    touched = {net for t in resized for net in (t.gate, t.drain, t.source)}
    update_net_loads(live, sorted(touched))

    reference = annotate(flat, parasitics, tech, Corner.SLOW)
    for name, expected in reference.loads.items():
        got = live.loads[name]
        assert (got.gate_cap_f, got.junction_cap_f, got.extra_cap_f) == (
            expected.gate_cap_f, expected.junction_cap_f, expected.extra_cap_f
        ), name


def test_reprice_arcs_picks_up_resize(tech):
    flat, _ = chain_flat(lanes=1)
    run = analyze_design(flat, tech, CLOCK)
    target = [t for t in flat.transistors if t.gate == "l0s1"]
    for t in target:
        t.w_um *= 4.0
    flat.rebuild_connectivity()
    touched = {net for t in target for net in (t.gate, t.drain, t.source)}
    update_net_loads(run.fast, sorted(touched))
    update_net_loads(run.slow, sorted(touched))
    changed = reprice_arcs(run.analyzer.graph, run.calculator, sorted(touched))
    assert changed > 0
    assert run.analyzer.verify(incremental=True).min_cycle_time_s \
        != run.report.min_cycle_time_s


# -- the sizing loop ----------------------------------------------------------


def test_close_timing_incremental_identical_to_full(tech):
    loads = [250e-15 * (1.25 ** i) for i in range(4)]

    flat1, path = chain_flat()
    run1 = analyze_design(flat1, tech, CLOCK)
    full = close_timing(run1, tech, path, loads, incremental=False)

    flat2, path = chain_flat()
    run2 = analyze_design(flat2, tech, CLOCK)
    inc = close_timing(run2, tech, path, loads, incremental=True)

    assert sorted((n, w.t_min, w.t_max) for n, w in full.report.arrivals.items()) \
        == sorted((n, w.t_min, w.t_max) for n, w in inc.report.arrivals.items())
    assert full.report.critical_paths == inc.report.critical_paths
    assert full.report.races == inc.report.races
    assert full.report.min_cycle_time_s == inc.report.min_cycle_time_s
    for a, b in zip(full.iterations, inc.iterations):
        assert a.min_cycle_time_s == b.min_cycle_time_s
        assert a.worst_slack_s == b.worst_slack_s
    # The point of incremental mode: far fewer arcs re-priced.
    assert sum(i.arcs_repriced for i in inc.iterations) \
        < sum(i.arcs_repriced for i in full.iterations)


def test_close_timing_improves_timing(tech):
    flat, path = chain_flat(lanes=1, load_f=500e-15)
    run = analyze_design(flat, tech, CLOCK)
    before = run.report.min_cycle_time_s
    closure = close_timing(run, tech, path, [500e-15], incremental=True)
    assert closure.report.min_cycle_time_s < before


# -- the battery's setup/race check ------------------------------------------


def test_setup_race_check_skips_without_slow_or_clock(tech):
    flat = flatten(ripple_carry_adder(2))
    ctx = make_context(flat, tech)  # no clock -> no slow annotation
    assert ctx.slow is None
    assert SetupRaceCheck().run(ctx) == []


def test_setup_race_check_reports_endpoints(tech):
    flat = flatten(ripple_carry_adder(2))
    ctx = make_context(flat, tech, clock=CLOCK)
    assert ctx.slow is not None
    findings = SetupRaceCheck().run(ctx)
    assert findings
    assert all(f.check == "timing_setup_race" for f in findings)
    # A relaxed 160 MHz clock: every endpoint passes with recorded slack.
    assert {f.severity for f in findings} == {Severity.PASS}
    assert all("slack_s" in f.metrics for f in findings)


def test_setup_race_check_flags_impossible_clock(tech):
    flat = flatten(ripple_carry_adder(2))
    ctx = make_context(flat, tech, clock=TwoPhaseClock(period_s=50e-12))
    findings = SetupRaceCheck().run(ctx)
    assert any(f.severity is Severity.VIOLATION for f in findings)


def test_battery_parallel_identical_with_timing_check(tech):
    flat = flatten(domino_carry_adder(2))
    ctx = make_context(flat, tech, clock=CLOCK, clock_hints=("clk",))
    serial = run_battery(ctx)
    parallel = run_battery(ctx, parallel=2)
    assert serial.findings == parallel.findings
    assert "timing_setup_race" in serial.per_check
