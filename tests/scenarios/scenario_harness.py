"""Hostile fuzz target for the scenario-fleet supervision test.

Module-level so fleet workers resolve ``"scenario_harness:..."`` by
reference after fork -- the same trick :mod:`fleet_harness` uses for
the killer check.
"""

import os
import signal

from repro.scenarios import FuzzSpec

#: Environment variable naming the kill sentinel file.
SENTINEL_ENV = "REPRO_SCENARIO_KILL_SENTINEL"

#: A spec resolvable by the "module:attr" string form.
demo_fuzz = FuzzSpec(name="demo",
                     target_ref="repro.scenarios.targets:adder4_shadow",
                     campaign_seed=2026, seeds=4, cycles=4)


def killer_adder_shadow():
    """The clean adder target, except the first resolution fleet-wide
    (no sentinel file yet) SIGKILLs its own worker process mid-shard."""
    sentinel = os.environ.get(SENTINEL_ENV)
    if sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    from repro.scenarios.targets import adder4_shadow
    return adder4_shadow()
