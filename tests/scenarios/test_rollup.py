"""Rollup determinism: the statistics are a pure function of the set.

The acceptance property for the whole scenarios subsystem is that the
rollup's serialized form is byte-identical no matter how the samples
were partitioned into shards, which order the shards merged in, or how
often a shard was replayed -- these tests pin that at the unit level.
"""

import json
import math
import random

import pytest

from repro.scenarios import RollupConflict, ScenarioRollup, metric_stats


def test_metric_stats_on_known_values():
    stats = metric_stats([1.0, 2.0, 3.0, 4.0])
    assert stats["count"] == 4.0
    assert stats["mean"] == 2.5
    assert stats["min"] == 1.0 and stats["max"] == 4.0
    assert stats["std"] == pytest.approx(math.sqrt(5.0 / 3.0))
    # Linear-interpolation quantiles (numpy convention).
    assert stats["p50"] == 2.5
    assert stats["p25"] == 1.75
    assert stats["p05"] == pytest.approx(1.15)
    # The confidence band is symmetric about the mean.
    assert stats["ci95_lo"] + stats["ci95_hi"] == pytest.approx(2 * 2.5)
    assert stats["ci95_lo"] < 2.5 < stats["ci95_hi"]


def test_metric_stats_single_sample_and_empty():
    stats = metric_stats([7.0])
    assert stats["std"] == 0.0
    assert stats["ci95_lo"] == stats["ci95_hi"] == 7.0
    assert stats["p05"] == stats["p95"] == 7.0
    with pytest.raises(ValueError):
        metric_stats([])


def test_idempotent_readds_allowed_conflicts_refused():
    rollup = ScenarioRollup()
    rollup.add_sample(3, {"m": 1.0})
    rollup.add_sample(3, {"m": 1.0})  # a replayed shard: harmless
    assert rollup.count() == 1
    with pytest.raises(RollupConflict):
        rollup.add_sample(3, {"m": 2.0})


def test_rollup_serialization_is_invariant_to_merge_order():
    # 64 synthetic samples with two metrics, partitioned and merged
    # every which way: the canonical JSON must never move.
    rng = random.Random(1997)
    rows = {i: {"power": rng.gauss(0.5, 0.1), "seed": float(i * 17)}
            for i in range(64)}

    def serialized(rollup):
        return json.dumps(rollup.to_dict(), sort_keys=True)

    reference = ScenarioRollup()
    for i in sorted(rows):
        reference.add_sample(i, rows[i])
    baseline = serialized(reference)

    for _trial in range(20):
        indices = list(rows)
        rng.shuffle(indices)
        # Random contiguous-in-shuffled-order partition into 1..8 shards.
        cuts = sorted(rng.sample(range(1, len(indices)),
                                 rng.randrange(0, 7)))
        shards = []
        lo = 0
        for hi in cuts + [len(indices)]:
            shard = ScenarioRollup()
            for i in indices[lo:hi]:
                shard.add_sample(i, rows[i])
            shards.append(shard)
            lo = hi
        rng.shuffle(shards)
        merged = ScenarioRollup()
        for shard in shards:
            merged.merge(shard)
        # A duplicated shard (retry / work-stealing race) changes nothing.
        merged.merge(shards[0])
        assert serialized(merged) == baseline


def test_round_trip_and_missing_metric_aggregation():
    rollup = ScenarioRollup()
    rollup.add_sample(0, {"a": 1.0, "b": 10.0})
    rollup.add_sample(1, {"a": 3.0})
    clone = ScenarioRollup.from_dict(rollup.to_dict())
    assert clone.to_dict() == rollup.to_dict()
    stats = rollup.stats()
    assert stats["a"]["count"] == 2.0
    assert stats["b"]["count"] == 1.0 and stats["b"]["mean"] == 10.0
    assert rollup.metric_names() == ["a", "b"]
