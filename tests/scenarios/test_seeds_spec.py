"""Seed derivation and spec fingerprinting invariants.

The whole scenarios contract hangs on two facts: (a) any process can
re-derive any sample's seed from ``(campaign_seed, stream, index)``
alone, and (b) the store key of a shard changes exactly when something
that determines its contents changes.
"""

import pytest

from repro.scenarios import (
    SEED_BITS,
    FuzzSpec,
    MonteCarloSpec,
    derive_seed,
    resolve_scenario,
    shard_key,
    spec_fingerprint,
)


def fuzz_spec(**kw):
    kw.setdefault("name", "f")
    kw.setdefault("target_ref", "repro.scenarios.targets:adder4_shadow")
    kw.setdefault("campaign_seed", 2026)
    kw.setdefault("seeds", 8)
    return FuzzSpec(**kw)


def test_derived_seeds_are_deterministic_and_distinct():
    seeds = [derive_seed(2026, "fuzz", i) for i in range(256)]
    assert seeds == [derive_seed(2026, "fuzz", i) for i in range(256)]
    assert len(set(seeds)) == 256
    # Different stream or campaign seed -> disjoint sequences.
    assert derive_seed(2026, "montecarlo", 0) != seeds[0]
    assert derive_seed(2027, "fuzz", 0) != seeds[0]


def test_derived_seeds_are_exact_in_float_counters():
    # Trace counters are floats; 48-bit seeds survive the round trip
    # exactly (floats are exact below 2**53).
    for i in range(64):
        seed = derive_seed(1, "fuzz", i)
        assert 0 <= seed < 2 ** SEED_BITS
        assert int(float(seed)) == seed


def test_negative_index_is_rejected():
    with pytest.raises(ValueError):
        derive_seed(2026, "fuzz", -1)


def test_spec_fingerprint_tracks_everything_that_shapes_samples():
    base = spec_fingerprint(fuzz_spec())
    assert spec_fingerprint(fuzz_spec()) == base
    assert spec_fingerprint(fuzz_spec(campaign_seed=1)) != base
    assert spec_fingerprint(fuzz_spec(seeds=9)) != base
    assert spec_fingerprint(fuzz_spec(cycles=7)) != base
    assert spec_fingerprint(fuzz_spec(
        target_ref="repro.scenarios.targets:and_gate_shadow")) != base
    mc = MonteCarloSpec(name="f", campaign_seed=2026, samples=8)
    assert spec_fingerprint(mc) != base


def test_shard_keys_are_distinct_per_coordinate_and_spec():
    spec = fuzz_spec()
    keys = {shard_key(spec, i, 4) for i in range(4)}
    assert len(keys) == 4
    # A different layout of the same campaign files elsewhere.
    assert shard_key(spec, 0, 2) not in keys
    assert shard_key(fuzz_spec(campaign_seed=1), 0, 4) != shard_key(
        spec, 0, 4)


def test_resolve_scenario_accepts_instance_factory_and_string():
    spec = fuzz_spec()
    assert resolve_scenario(spec) is spec
    assert resolve_scenario(lambda: spec) is spec
    named = resolve_scenario("scenario_harness:demo_fuzz")
    assert isinstance(named, FuzzSpec) and named.name == "demo"
    with pytest.raises(ValueError):
        resolve_scenario("not-a-ref")
    with pytest.raises(TypeError):
        resolve_scenario(lambda: object())
