"""Scenario-fleet acceptance: distribution is invisible in the results.

Fuzz and Monte-Carlo campaigns run through the worker fleet must
serialize canonically byte-identically to the serial
:class:`ScenarioCampaign` -- across worker counts and straight through
a SIGKILLed worker.
"""

from scenario_harness import SENTINEL_ENV, killer_adder_shadow  # noqa: F401

from repro.fleet import FleetConfig, run_scenario_fleet
from repro.scenarios import FuzzSpec, MonteCarloSpec, ScenarioCampaign

FUZZ = FuzzSpec(name="adder-fuzz",
                target_ref="repro.scenarios.targets:adder4_shadow",
                campaign_seed=2026, seeds=12, cycles=6)
MC = MonteCarloSpec(name="cascade-mc", campaign_seed=2026, samples=48)
SHARDS = 4


def fast_config(tmp_path, **kw):
    kw.setdefault("store_dir", str(tmp_path / "store"))
    kw.setdefault("heartbeat_s", 0.1)
    kw.setdefault("fleet_timeout_s", 120.0)
    return FleetConfig(**kw)


def serial_baseline(spec):
    return ScenarioCampaign(spec, shards=SHARDS).run().to_json(
        canonical=True)


def test_fleet_reports_are_byte_identical_across_worker_counts(tmp_path):
    baselines = {spec.name: serial_baseline(spec) for spec in (FUZZ, MC)}
    for workers in (1, 2, 4):
        result = run_scenario_fleet(
            {FUZZ.name: FUZZ, MC.name: MC}, workers=workers, shards=SHARDS,
            config=fast_config(tmp_path / f"w{workers}"))
        assert result.failed == {}
        assert result.ok()
        for name, baseline in baselines.items():
            assert result.reports[name].to_json(canonical=True) == baseline

        m = result.metrics
        assert m.designs_done == 2 and m.designs_failed == 0
        assert m.jobs_by_kind["scenario"] == 2 * SHARDS
        assert m.jobs_by_kind["rollup"] == 2
        events = [e.event for e in result.trace.events]
        assert events.count("design_done") == 2
        assert "fleet_start" in events and "fleet_end" in events


def test_fleet_rerun_resumes_from_shard_checkpoints(tmp_path):
    # Same store_dir, same spec, same shard layout: the second fleet
    # run must reload every shard checkpoint instead of recomputing --
    # the fleet analogue of ScenarioCampaign(resume=True).
    config = fast_config(tmp_path)
    first = run_scenario_fleet({FUZZ.name: FUZZ}, workers=2, shards=SHARDS,
                               config=config)
    second = run_scenario_fleet({FUZZ.name: FUZZ}, workers=2, shards=SHARDS,
                                config=fast_config(tmp_path))
    assert second.failed == {}
    assert (second.reports[FUZZ.name].to_json(canonical=True)
            == first.reports[FUZZ.name].to_json(canonical=True))
    events = [e.event for e in second.trace.events]
    assert events.count("checkpoint.hit") == SHARDS
    assert events.count("checkpoint.write") == 0


def test_sigkilled_worker_is_survived_and_report_matches(
        tmp_path, monkeypatch):
    sentinel = tmp_path / "kill.sentinel"
    monkeypatch.setenv(SENTINEL_ENV, str(sentinel))
    spec = FuzzSpec(name="hostile-fuzz",
                    target_ref="scenario_harness:killer_adder_shadow",
                    campaign_seed=2026, seeds=8, cycles=4)
    config = fast_config(tmp_path, lease_s=10.0)
    result = run_scenario_fleet({spec.name: spec}, workers=2, shards=SHARDS,
                                config=config)

    assert sentinel.exists()  # a worker really died mid-shard
    assert result.failed == {}
    assert result.metrics.workers_dead == 1
    assert result.metrics.retries >= 1
    events = [e.event for e in result.trace.events]
    assert "worker_dead" in events and "job_requeue" in events

    # With the sentinel present the target is the clean adder, so the
    # serial baseline is directly comparable.
    assert (result.reports[spec.name].to_json(canonical=True)
            == ScenarioCampaign(spec, shards=SHARDS).run().to_json(
                canonical=True))
