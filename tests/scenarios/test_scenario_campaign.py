"""Serial scenario campaigns: determinism, detection power, resume.

Pins the acceptance properties from the scenarios contract: canonical
byte-identity across shard layouts, mismatch detection on the seeded
bug, seeds surfaced as recorded facts, and kill-and-resume that never
re-runs a checkpointed seed.
"""

import pytest

import repro.scenarios.campaign as campaign_mod
from repro.scenarios import (
    FuzzSpec,
    MonteCarloSpec,
    ScenarioCampaign,
    derive_seed,
    run_shard,
    shard_key,
)
from repro.store.artifact import ArtifactStore

FUZZ = FuzzSpec(name="adder-fuzz",
                target_ref="repro.scenarios.targets:adder4_shadow",
                campaign_seed=2026, seeds=12, cycles=6)
BUGGY = FuzzSpec(name="adder-bug",
                 target_ref="repro.scenarios.targets:adder4_shadow_seeded_bug",
                 campaign_seed=2026, seeds=6, cycles=6)
MC = MonteCarloSpec(name="cascade-mc", campaign_seed=2026, samples=48)


def canonical(spec, shards, **run_kw):
    return ScenarioCampaign(spec, shards=shards).run(**run_kw).to_json(
        canonical=True)


def test_clean_fuzz_campaign_is_ok_and_seeds_are_recorded_facts():
    report = ScenarioCampaign(FUZZ, shards=3).run()
    assert report.complete() and report.ok()
    assert report.rollup.count() == FUZZ.seeds
    stats = report.rollup.stats()
    assert stats["mismatches"]["max"] == 0.0
    assert stats["compared"]["min"] > 0.0
    # Every sample row and every scenario.sample event carries the
    # derived seed, exactly as derive_seed reproduces it.
    for index, row in report.rollup.samples.items():
        assert row["seed"] == float(derive_seed(2026, "fuzz", index))
    sample_events = [e for e in report.trace.events
                     if e.event == "scenario.sample"]
    assert len(sample_events) == FUZZ.seeds
    assert all("seed" in e.counters for e in sample_events)


def test_canonical_json_is_invariant_to_shard_layout():
    baseline = canonical(FUZZ, 1)
    assert canonical(FUZZ, 3) == baseline
    assert canonical(FUZZ, 12) == baseline
    mc_baseline = canonical(MC, 1)
    assert canonical(MC, 5) == mc_baseline


def test_seeded_bug_is_detected():
    report = ScenarioCampaign(BUGGY, shards=2).run()
    assert report.complete() and not report.ok()
    assert report.rollup.stats()["mismatches"]["max"] > 0.0


def test_montecarlo_distribution_brackets_the_table1_anchor():
    report = ScenarioCampaign(MC, shards=4).run()
    assert report.ok()
    stats = report.rollup.stats()
    power = stats["final_power_w"]
    # Table 1 lands at ~0.5 W nominal; the perturbed population must
    # stay in that neighbourhood and its CI must cover the mean.
    assert 0.3 < power["mean"] < 0.7
    assert power["ci95_lo"] < power["mean"] < power["ci95_hi"]
    assert power["p05"] <= power["p50"] <= power["p95"]
    assert stats["reduction_x"]["min"] > 1.0


def test_resume_replays_checkpoints_without_rerunning_seeds(
        tmp_path, monkeypatch):
    store = ArtifactStore(str(tmp_path / "store"))
    storeless = canonical(FUZZ, 4)
    cold = ScenarioCampaign(FUZZ, shards=4).run(store=store)
    cold_events = [e.event for e in cold.trace.events]
    assert cold_events.count("checkpoint.write") == 4

    def forbid(*a, **kw):
        raise AssertionError("a checkpointed seed was re-run")

    monkeypatch.setattr(campaign_mod, "run_shard", forbid)
    resumed = ScenarioCampaign(FUZZ, shards=4).run(store=store, resume=True)
    events = [e.event for e in resumed.trace.events]
    assert events.count("checkpoint.hit") == 4
    assert "checkpoint.write" not in events
    assert resumed.to_json(canonical=True) == cold.to_json(canonical=True)
    # And both match a store-less run: checkpoint events are mechanics,
    # not conclusions.
    assert resumed.to_json(canonical=True) == storeless


def test_killed_campaign_resumes_without_rerunning_seeds(
        tmp_path, monkeypatch):
    store = ArtifactStore(str(tmp_path / "store"))
    baseline = canonical(FUZZ, 4)

    calls = []

    def dies_after_two(spec_ref, lo, hi, worker_id=""):
        if len(calls) == 2:
            raise KeyboardInterrupt  # the "SIGKILL": mid-campaign death
        calls.append((lo, hi))
        return run_shard(spec_ref, lo, hi, worker_id=worker_id)

    monkeypatch.setattr(campaign_mod, "run_shard", dies_after_two)
    with pytest.raises(KeyboardInterrupt):
        ScenarioCampaign(FUZZ, shards=4).run(store=store)
    assert len(calls) == 2  # two shards checkpointed, two never ran

    resumed_calls = []

    def counting(spec_ref, lo, hi, worker_id=""):
        resumed_calls.append((lo, hi))
        return run_shard(spec_ref, lo, hi, worker_id=worker_id)

    monkeypatch.setattr(campaign_mod, "run_shard", counting)
    resumed = ScenarioCampaign(FUZZ, shards=4).run(store=store, resume=True)
    # Only the two missing shards ran; the checkpointed seeds replayed.
    assert sorted(resumed_calls) == sorted(
        b for b in campaign_mod.shard_bounds(FUZZ, 4) if b not in calls)
    events = [e.event for e in resumed.trace.events]
    assert events.count("checkpoint.hit") == 2
    assert events.count("checkpoint.write") == 2
    assert resumed.to_json(canonical=True) == baseline


def test_corrupt_checkpoint_is_quarantined_and_rerun(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    cold = ScenarioCampaign(FUZZ, shards=2).run(store=store)
    key = shard_key(FUZZ, 0, 2)
    store.invalidate(key)
    store.put(key, {"junk": True})  # wrong shape, verifies fine
    resumed = ScenarioCampaign(FUZZ, shards=2).run(store=store, resume=True)
    events = [e.event for e in resumed.trace.events]
    assert "checkpoint.corrupt" in events
    assert events.count("checkpoint.hit") == 1  # the intact shard
    assert events.count("checkpoint.write") == 1  # the re-run one
    assert resumed.to_json(canonical=True) == cold.to_json(canonical=True)


def test_shard_validation():
    with pytest.raises(ValueError):
        ScenarioCampaign(FUZZ, shards=0)
    with pytest.raises(ValueError):
        run_shard(FUZZ, 0, FUZZ.seeds + 1)
