"""Unit tests for repro.layout.placer and repro.layout.router."""

import pytest

from repro.layout.placer import diffusion_ordering, placement_rows
from repro.layout.router import channel_route, parallel_runs
from repro.netlist.builder import CellBuilder
from repro.netlist.devices import Transistor


def test_series_stack_orders_with_no_breaks():
    """A NAND3's series NMOS stack shares diffusion end to end."""
    b = CellBuilder("nand3", ports=["a", "b", "c", "y"])
    b.nand(["a", "b", "c"], "y")
    nmos = [t for t in b.build().transistors if t.polarity == "nmos"]
    row = diffusion_ordering(nmos)
    assert row.breaks == 0
    assert all(s is not None for s in row.shared_nets())


def test_unrelated_devices_break():
    t1 = Transistor("m1", "nmos", "g1", "a", "b", w_um=2.0)
    t2 = Transistor("m2", "nmos", "g2", "c", "d", w_um=2.0)
    row = diffusion_ordering([t1, t2])
    assert row.breaks == 1
    assert row.shared_nets() == [None]


def test_mixed_polarity_rejected():
    t1 = Transistor("m1", "nmos", "g", "a", "b", w_um=2.0)
    t2 = Transistor("m2", "pmos", "g", "a", "b", w_um=2.0)
    with pytest.raises(ValueError):
        diffusion_ordering([t1, t2])
    with pytest.raises(ValueError):
        diffusion_ordering([])


def test_placement_rows_split_by_polarity():
    b = CellBuilder("inv", ports=["a", "y"])
    b.inverter("a", "y")
    p_row, n_row = placement_rows(b.build().transistors)
    assert p_row is not None and p_row.polarity == "pmos"
    assert n_row is not None and n_row.polarity == "nmos"


def test_channel_route_basic():
    pins = {
        "a": [(0.0, 10.0), (20.0, -10.0)],
        "b": [(5.0, 10.0), (15.0, -10.0)],
    }
    segs = channel_route(pins, channel_y0=-5.0, channel_y1=5.0)
    # One trunk + two branches per net.
    assert sum(1 for s in segs if s.kind == "trunk") == 2
    assert sum(1 for s in segs if s.kind == "branch") == 4
    # Overlapping spans must land on different tracks.
    tracks = {s.net: s.track for s in segs if s.kind == "trunk"}
    assert tracks["a"] != tracks["b"]


def test_channel_route_reuses_tracks_for_disjoint_spans():
    pins = {
        "a": [(0.0, 10.0), (5.0, -10.0)],
        "b": [(20.0, 10.0), (30.0, -10.0)],
    }
    segs = channel_route(pins, channel_y0=-5.0, channel_y1=5.0)
    tracks = {s.net: s.track for s in segs if s.kind == "trunk"}
    assert tracks["a"] == tracks["b"]


def test_channel_overflow_raises():
    pins = {f"n{i}": [(0.0, 10.0), (50.0, -10.0)] for i in range(10)}
    with pytest.raises(ValueError, match="tracks"):
        channel_route(pins, channel_y0=-2.0, channel_y1=2.0)


def test_parallel_runs_report_adjacent_tracks_only():
    pins = {
        "a": [(0.0, 10.0), (20.0, -10.0)],
        "b": [(0.0, 10.0), (20.0, -10.0)],
        "c": [(0.0, 10.0), (20.0, -10.0)],
    }
    segs = channel_route(pins, channel_y0=-6.0, channel_y1=6.0)
    runs = parallel_runs(segs, max_gap=5.0)
    pairs = {tuple(sorted((a, b))) for a, b, _run, _gap in runs}
    # Three nets on three stacked tracks: only adjacent pairs couple.
    assert len(pairs) == 2
    for _a, _b, run, gap in runs:
        assert run > 15.0
        assert gap >= 0.0
