"""Unit tests for repro.layout.geometry."""

import pytest

from repro.layout.geometry import Layout, Rect


def test_rect_validation_and_measures():
    r = Rect("metal1", 0, 0, 10, 2, net="a")
    assert r.width == 10 and r.height == 2
    assert r.area() == 20
    assert r.perimeter() == 24
    with pytest.raises(ValueError):
        Rect("metal1", 5, 0, 0, 2)


def test_intersection_and_gaps():
    a = Rect("m1", 0, 0, 4, 4)
    b = Rect("m1", 2, 2, 6, 6)
    c = Rect("m1", 10, 0, 12, 4)
    assert a.intersects(b)
    assert not a.intersects(c)
    assert a.horizontal_gap(c) == 6
    assert a.horizontal_gap(b) == 0
    assert a.vertical_overlap(c) == 4
    assert a.horizontal_overlap(b) == 2


def test_layout_queries():
    lay = Layout("cell")
    lay.add(Rect("metal1", 0, 0, 10, 1, net="a"))
    lay.add(Rect("metal1", 0, 2, 5, 3, net="b"))
    lay.add(Rect("poly", 0, 0, 1, 5, net="a"))
    assert {r.net for r in lay.on_layer("metal1")} == {"a", "b"}
    assert len(lay.of_net("a")) == 2
    assert len(lay.of_net("a", "poly")) == 1
    assert lay.nets() == {"a", "b"}
    assert lay.net_area("a", "metal1") == 10
    assert lay.net_wire_length("a", "metal1") == 10


def test_bounding_box_and_area():
    lay = Layout("c")
    lay.add(Rect("m1", -2, 0, 3, 1))
    lay.add(Rect("m1", 0, -1, 1, 4))
    box = lay.bounding_box()
    assert (box.x0, box.y0, box.x1, box.y1) == (-2, -1, 3, 4)
    assert lay.area() == 25
    with pytest.raises(ValueError):
        Layout("empty").bounding_box()
