"""Unit tests for repro.layout.macrocell and repro.layout.antenna_geom."""

import pytest

from repro.layout.antenna_geom import antenna_geometry
from repro.layout.macrocell import generate_macrocell
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten


def build_cell(build, ports):
    b = CellBuilder("mc", ports=ports)
    build(b)
    return b.build()


def test_inverter_macrocell_structure():
    cell = build_cell(lambda b: b.inverter("a", "y"), ["a", "y"])
    result = generate_macrocell("inv", cell.transistors)
    lay = result.layout
    assert len(lay.on_layer("poly")) == 2
    assert lay.on_layer("ndiff") and lay.on_layer("pdiff")
    assert "y" in lay.nets() and "a" in lay.nets()
    # Both devices placed.
    assert set(lay.placements) == {t.name for t in cell.transistors}


def test_nand_macrocell_routes_output():
    cell = build_cell(lambda b: b.nand(["a", "b"], "y"), ["a", "b", "y"])
    result = generate_macrocell("nand2", cell.transistors)
    assert result.net_length("y") > 0
    assert result.breaks == 0  # NAND shares diffusion perfectly


def test_macrocell_width_grows_with_devices():
    small = build_cell(lambda b: b.nand(["a", "b"], "y"), ["a", "b", "y"])
    big = build_cell(lambda b: b.nand(["a", "b", "c", "d"], "y"),
                     ["a", "b", "c", "d", "y"])
    w_small = generate_macrocell("s", small.transistors).width_um
    w_big = generate_macrocell("b", big.transistors).width_um
    assert w_big > w_small


def test_macrocell_couplings_exist_for_multi_net_cells():
    def build(b):
        b.nand(["a", "b"], "n1")
        b.nand(["n1", "c"], "y")

    cell = build_cell(build, ["a", "b", "c", "y"])
    result = generate_macrocell("two_gates", cell.transistors)
    # At least some adjacent-track parallelism shows up.
    assert isinstance(result.couplings, list)


def test_empty_macrocell_rejected():
    with pytest.raises(ValueError):
        generate_macrocell("empty", [])


def test_antenna_geometry_accounting():
    cell = build_cell(lambda b: (b.inverter("a", "mid"), b.inverter("mid", "y")),
                      ["a", "y"])
    flat = flatten(cell)
    result = generate_macrocell("buf", flat.transistors)
    geoms = {g.net: g for g in antenna_geometry(result.layout, flat)}
    # 'a' and 'mid' drive gates; 'y' does not (no entry).
    assert "a" in geoms and "mid" in geoms and "y" not in geoms
    # mid connects to the first inverter's drains: has a diffusion path.
    assert geoms["mid"].has_diffusion
    assert geoms["mid"].gate_area_um2 > 0
    # 'a' is a pure input: no diffusion contact in this cell.
    assert not geoms["a"].has_diffusion
    # Ratio is metal/gate.
    g = geoms["mid"]
    assert g.ratio() == pytest.approx(g.metal_area_um2 / g.gate_area_um2)
