"""Property tests: memoized recognition is indistinguishable from fresh.

The contract for ``repro.recognition.memo`` (see its module docstring):
classification templates instantiated through the topology signature
must reproduce fresh recognition bit-for-bit -- same families, same
truth tables over the same input order, same dict insertion order, same
derived clock picks.  The strategies here stamp randomized mixes of the
design-zoo generators into one top cell so every run exercises template
reuse across instance-name prefixes (the exact situation the memo
exploits), then compare against ``recognize(memo=False)``.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.designs.adders import domino_carry_adder, ripple_carry_adder
from repro.designs.latch_zoo import (
    dynamic_latch,
    jamb_latch,
    pulsed_latch,
    sr_nand_latch,
)
from repro.designs.muxes import pass_mux_tree
from repro.netlist.cell import Cell
from repro.netlist.flatten import flatten
from repro.recognition.memo import ClassificationMemo
from repro.recognition.recognizer import RecognizedDesign, recognize

GENERATORS = (
    dynamic_latch,
    jamb_latch,
    pulsed_latch,
    sr_nand_latch,
    lambda name: domino_carry_adder(2, name=name),
    lambda name: ripple_carry_adder(2, name=name),
    lambda name: pass_mux_tree(4, name=name),
)


@st.composite
def zoo_design(draw):
    """A top cell instantiating 1..4 random zoo cells side by side."""
    picks = draw(st.lists(st.integers(0, len(GENERATORS) - 1),
                          min_size=1, max_size=4))
    top = Cell(name="zoo_top", ports=["vdd", "gnd"])
    for k, g in enumerate(picks):
        child = GENERATORS[g](name=f"cell{k}_{g}")
        # Bind every port to a per-instance top net: repeated picks are
        # topologically identical but name-disjoint, which is exactly
        # the template-reuse situation the memo exploits.
        pins = {p: f"u{k}_{p}" for p in child.ports
                if p not in ("vdd", "gnd")}
        top.instantiate(f"u{k}", child, **pins)
    return top


def canon(design: RecognizedDesign):
    """Everything observable about a recognition result, order included."""
    return {
        "classifications": [
            (
                c.family,
                tuple(c.notes),
                tuple((out, tuple(g.inputs), g.table, g.complementary)
                      for out, g in c.gates.items()),
                tuple((out, tuple(d.precharge_devices),
                       tuple(d.foot_devices), tuple(sorted(d.eval_inputs)),
                       d.clock, tuple(d.keeper_devices))
                      for out, d in c.dynamic_nodes.items()),
                tuple(c.pass_pairs),
                tuple(sorted(c.cross_coupled_with)),
            )
            for c in design.classifications
        ],
        "gates": [(out, tuple(g.inputs), g.table, g.complementary)
                  for out, g in design.gates.items()],
        "dynamic": [(out, tuple(d.precharge_devices), tuple(d.foot_devices),
                     tuple(sorted(d.eval_inputs)), d.clock,
                     tuple(d.keeper_devices))
                    for out, d in design.dynamic_nodes.items()],
        "clocks": {n: (c.name, c.root, c.inverted, c.depth)
                   for n, c in design.clocks.items()},
        "storage": [(s.net, s.static, s.kind, tuple(s.write_devices),
                     s.partner, tuple(sorted(s.enables)))
                    for s in design.storage],
        "dcvsl": list(design.dcvsl_pairs),
        "kinds": dict(design.net_kinds),
    }


@given(zoo_design())
@settings(max_examples=40, deadline=None)
def test_memoized_equals_fresh(top):
    flat = flatten(top)
    fresh = recognize(flat, memo=False)
    memoized = recognize(flat, memo=ClassificationMemo())
    assert canon(memoized) == canon(fresh)


@given(zoo_design())
@settings(max_examples=25, deadline=None)
def test_warm_shared_memo_equals_fresh(top):
    """A memo warmed on one flatten instantiates correctly on another."""
    memo = ClassificationMemo()
    recognize(flatten(top), memo=memo)  # warm
    flat = flatten(top)                 # distinct netlist objects
    warm = recognize(flat, memo=memo)
    assert memo.classify_hits > 0, "warm run should hit the memo"
    assert canon(warm) == canon(recognize(flat, memo=False))


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=6, deadline=None)
def test_adder_slices_classify_once(width):
    """N topologically identical bit slices cost ~one classification."""
    memo = ClassificationMemo()
    design = recognize(flatten(domino_carry_adder(width)), memo=memo)
    fresh = recognize(design.flat, memo=False)
    assert canon(design) == canon(fresh)
    # Distinct topologies in a domino adder don't grow with width.
    assert memo.classify_misses <= 6
    if width > 1:
        assert memo.classify_hits > 0
