"""Property tests: path sweeps ≡ the per-pair DFS enumerator.

The single-source sweep (:func:`sweep_conduction_paths`) and the
target-rooted sweep (:func:`sweep_paths_to_target`) replace the
per-(net, source) DFS of older releases as the engine behind
``conduction_paths``.  Their contract is *bit-identity*: for every
(source, target) pair the materialized path list must match the legacy
enumerator element-for-element -- same devices, same conditions, same
**order** -- because classification signatures, packed-table layouts,
and the timing graph all hash or index path lists positionally.

Hypothesis drives random transistor soups (cycles, pass-gate meshes,
self-gated channels, floating nets) through every (source, target)
pair of every CCC, comparing both sweep routes against
:func:`_enumerate_pair`, including the exact overflow error when a
tiny ``max_paths`` cap is exceeded.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition import conduction
from repro.recognition.ccc import extract_cccs
from repro.recognition.conduction import (
    _enumerate_pair,
    conduction_paths,
    sweep_paths_to_target,
)

PORTS = ["p0", "p1", "p2"]
INTERNAL = ["x0", "x1", "x2", "x3"]
NETS = PORTS + INTERNAL + ["vdd", "gnd"]
WIDTHS = [1.0, 2.0, 4.0]

transistor = st.tuples(
    st.sampled_from(["nmos", "pmos"]),
    st.sampled_from(NETS),                 # gate (rail gates allowed)
    st.sampled_from(NETS),                 # drain
    st.sampled_from(NETS),                 # source
    st.sampled_from(WIDTHS),
)

network = st.lists(transistor, min_size=2, max_size=9)


def _cccs(devices):
    b = CellBuilder("soup", ports=PORTS)
    for i, (pol, gate, drain, source, w) in enumerate(devices):
        if drain == source:
            continue  # degenerate: no channel
        if pol == "nmos":
            b.nmos(gate, drain, source, w=w, name=f"m{i}")
        else:
            b.pmos(gate, drain, source, w=w, name=f"m{i}")
    cell = b.build()
    if not cell.transistors:
        return []
    return extract_cccs(flatten(cell))


def _endpoints(ccc):
    return sorted(ccc.channel_nets) + ["vdd", "gnd"]


def _legacy(ccc, src, tgt, max_paths):
    """(paths, error-str) from the per-pair DFS authority."""
    try:
        return _enumerate_pair(ccc, src, tgt, max_paths), None
    except RuntimeError as err:
        return None, str(err)


def _check_pair(ccc, src, tgt, max_paths, via):
    expected, expected_err = _legacy(ccc, src, tgt, max_paths)
    try:
        got, got_err = conduction_paths(ccc, src, tgt, max_paths), None
    except RuntimeError as err:
        got, got_err = None, str(err)
    assert got_err == expected_err, (via, src, tgt)
    if expected is not None:
        # Element-for-element: devices, conditions, and ordering.
        assert got == expected, (via, src, tgt)


@given(network)
@settings(max_examples=80, deadline=None)
def test_net_rooted_sweep_matches_per_pair_dfs(devices):
    """``conduction_paths`` (sweep-backed) over every pair == legacy."""
    for ccc in _cccs(devices):
        for src in _endpoints(ccc):
            for tgt in _endpoints(ccc):
                _check_pair(ccc, src, tgt, 10000, via="sweep")


@given(network)
@settings(max_examples=80, deadline=None)
def test_target_rooted_sweep_matches_per_pair_dfs(devices):
    """A pre-installed target-rooted sweep answers every source
    identically to the legacy enumerator (ports and internal nets too,
    not just the rails that install one automatically)."""
    for ccc in _cccs(devices):
        nets = _endpoints(ccc)
        for tgt in nets:
            sweep_paths_to_target(ccc, tgt, 10000)
            for src in nets:
                if src == tgt:
                    continue
                _check_pair(ccc, src, tgt, 10000, via="tsweep")


@given(network)
@settings(max_examples=60, deadline=None)
def test_vectorized_bfs_sweep_matches_per_pair_dfs(devices):
    """The level-synchronous BFS strategy (used above
    ``_BFS_MIN_DEVICES``) is interchangeable with the DFS: force it on
    for these small soups and demand the same per-pair bit-identity."""
    threshold = conduction._BFS_MIN_DEVICES
    try:
        conduction._BFS_MIN_DEVICES = 0
        for ccc in _cccs(devices):
            nets = _endpoints(ccc)
            for tgt in nets:
                sweep_paths_to_target(ccc, tgt, 10000)
                for src in nets:
                    if src == tgt:
                        continue
                    _check_pair(ccc, src, tgt, 10000, via="bfs")
    finally:
        conduction._BFS_MIN_DEVICES = threshold


@given(network, st.sampled_from([1, 2, 3]))
@settings(max_examples=40, deadline=None)
def test_bfs_overflow_parity_at_tiny_caps(devices, max_paths):
    """Overflow accounting (bucket drops, the ``want`` raise, and the
    exact message) is strategy-independent."""
    threshold = conduction._BFS_MIN_DEVICES
    try:
        conduction._BFS_MIN_DEVICES = 0
        for ccc in _cccs(devices):
            for src in _endpoints(ccc):
                for tgt in _endpoints(ccc):
                    if src == tgt:
                        continue
                    _check_pair(ccc, src, tgt, max_paths, via="bfs-ovf")
    finally:
        conduction._BFS_MIN_DEVICES = threshold


@given(network, st.sampled_from([1, 2, 3]))
@settings(max_examples=60, deadline=None)
def test_overflow_parity_at_tiny_caps(devices, max_paths):
    """When a pair exceeds ``max_paths`` both routes raise the same
    error; when it doesn't, both return identical lists -- the cap must
    never silently truncate or reorder."""
    for ccc in _cccs(devices):
        for src in _endpoints(ccc):
            for tgt in _endpoints(ccc):
                if src == tgt:
                    continue
                _check_pair(ccc, src, tgt, max_paths, via="overflow")


def test_source_equals_target_falls_back_to_dfs():
    """Loop paths back to the source can't ride the sweep's visited-set
    discipline; the dispatch must hand them to the per-pair DFS."""
    b = CellBuilder("loop", ports=["a", "en"])
    b.nmos("en", "a", "x0", w=2.0)
    b.nmos("en", "x0", "a", w=2.0)
    ccc = extract_cccs(flatten(b.build()))[0]
    assert conduction_paths(ccc, "a", "a") == _enumerate_pair(
        ccc, "a", "a", 10000)


def test_sweep_disabled_still_correct():
    """With SWEEP_ENABLED off (the benchmark baseline) results are
    unchanged -- the flag selects a strategy, not a semantics."""
    b = CellBuilder("nand2", ports=["a", "b", "y"])
    b.nand(["a", "b"], "y")
    flat = flatten(b.build())
    on = extract_cccs(flat)[0]
    off = extract_cccs(flat)[0]
    sweep = conduction.SWEEP_ENABLED
    try:
        conduction.SWEEP_ENABLED = False
        baseline = conduction_paths(off, "y", "gnd")
    finally:
        conduction.SWEEP_ENABLED = sweep
    assert conduction_paths(on, "y", "gnd") == baseline


def test_cache_hit_counter_moves():
    b = CellBuilder("inv", ports=["a", "y"])
    b.inverter("a", "y")
    ccc = extract_cccs(flatten(b.build()))[0]
    conduction_paths(ccc, "y", "gnd")
    before = conduction.enumeration_counters()["path_cache_hits"]
    conduction_paths(ccc, "y", "gnd")
    after = conduction.enumeration_counters()["path_cache_hits"]
    assert after == before + 1


@pytest.mark.parametrize("max_paths", [1, 10000])
def test_overflow_message_matches_legacy_exactly(max_paths):
    """The sweep path's overflow error is byte-for-byte the legacy
    message (tools match on it)."""
    b = CellBuilder("par", ports=["x", "y", "e0", "e1"])
    b.nmos("e0", "x", "y", w=2.0)
    b.nmos("e1", "x", "y", w=2.0)
    flat = flatten(b.build())
    if max_paths >= 2:  # two parallel paths: no overflow at the default
        ccc = extract_cccs(flat)[0]
        assert len(conduction_paths(ccc, "x", "y", max_paths)) == 2
        return
    legacy_msg = sweep_msg = None
    try:
        _enumerate_pair(extract_cccs(flat)[0], "x", "y", max_paths)
    except RuntimeError as err:
        legacy_msg = str(err)
    try:
        conduction_paths(extract_cccs(flat)[0], "x", "y", max_paths)
    except RuntimeError as err:
        sweep_msg = str(err)
    assert legacy_msg is not None and sweep_msg == legacy_msg
