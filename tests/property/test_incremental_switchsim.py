"""Property tests: incremental settle is observably identical to naive.

The incremental engine only re-solves nets whose fan-in actually
changed; the contract (see ``SwitchSimulator``) is that skipping the
rest leaves the final state AND the history event order bit-identical
to the always-resolve-everything mode.  Random stimulus sequences over
dynamic (domino) and sequential (latch) designs probe exactly the
paths where stale-value bugs would hide.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.designs.adders import domino_carry_adder
from repro.designs.latch_zoo import dynamic_latch
from repro.netlist.flatten import flatten
from repro.switchsim.engine import SwitchSimulator


def _run(flat, stimulus, incremental):
    sim = SwitchSimulator(flat, incremental=incremental)
    for vector in stimulus:
        sim.step(**vector)
    return sim


def _assert_identical(flat, stimulus):
    fast = _run(flat, stimulus, incremental=True)
    naive = _run(flat, stimulus, incremental=False)
    nets = sorted(flat.nets)
    assert fast.values(nets) == naive.values(nets)
    assert fast.history == naive.history
    # The point of incremental mode: never MORE work than naive.
    assert fast.counters["net_solves"] <= naive.counters["net_solves"]


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 3),
                          st.integers(0, 3)),
                min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_domino_adder_incremental_matches_naive(steps):
    width = 2
    flat = flatten(domino_carry_adder(width))
    stimulus = []
    for clk, a, b in steps:
        vec = {"clk": clk, "cin": 0}
        for i in range(width):
            vec[f"a{i}"] = (a >> i) & 1
            vec[f"b{i}"] = (b >> i) & 1
        stimulus.append(vec)
    _assert_identical(flat, stimulus)


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_dynamic_latch_incremental_matches_naive(steps):
    flat = flatten(dynamic_latch())
    ports = {n.name for n in flat.nets.values() if n.is_port}
    stimulus = []
    for clk, d in steps:
        vec = {"clk": clk, "d": d}
        if "clk_b" in ports:
            vec["clk_b"] = 1 - clk
        stimulus.append(vec)
    _assert_identical(flat, stimulus)


def test_redundant_steps_are_cheap():
    """Re-applying an unchanged vector re-solves (almost) nothing."""
    flat = flatten(domino_carry_adder(4))
    sim = SwitchSimulator(flat)
    vec = {"clk": 0, "cin": 0}
    vec.update({f"a{i}": 1 for i in range(4)})
    vec.update({f"b{i}": 0 for i in range(4)})
    sim.step(**vec)
    before = sim.counters["net_solves"]
    sim.step(**vec)
    assert sim.counters["net_solves"] == before
