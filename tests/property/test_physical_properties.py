"""Property-based tests on physical-model invariants: device monotonicity,
bound arithmetic, Elmore monotonicity, sequential-equivalence invariance."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.extraction.caps import Bound
from repro.extraction.rctree import uniform_ladder
from repro.process.corners import Corner
from repro.process.technology import strongarm_technology
from repro.equivalence.sequential import TableFsm, check_sequential

TECH = strongarm_technology()
NMOS = TECH.nmos_model()


# ---- MOSFET model ------------------------------------------------------------


@given(st.floats(min_value=0.0, max_value=1.5),
       st.floats(min_value=0.05, max_value=1.5),
       st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=150, deadline=None)
def test_ids_monotone_in_vgs(vgs, vds, w):
    i_low = NMOS.ids(vgs, vds, w)
    i_high = NMOS.ids(vgs + 0.1, vds, w)
    assert i_high >= i_low >= 0.0


@given(st.floats(min_value=0.35, max_value=1.0),
       st.floats(min_value=0.5, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_leakage_monotone_decreasing_in_length(l_um, w):
    shorter = NMOS.leakage(1.5, w, l_um)
    longer = NMOS.leakage(1.5, w, l_um + 0.05)
    assert longer <= shorter
    assert longer > 0.0


@given(st.floats(min_value=0.2, max_value=100.0),
       st.floats(min_value=0.2, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_gate_cap_additive_in_width(w1, w2):
    c1 = NMOS.gate_capacitance(w1)
    c2 = NMOS.gate_capacitance(w2)
    c12 = NMOS.gate_capacitance(w1 + w2)
    assert abs(c12 - (c1 + c2)) < 1e-18


@given(st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=60, deadline=None)
def test_corner_ordering_on_drive(w):
    """FAST >= TYPICAL >= SLOW drive current, always."""
    fast = TECH.nmos_model(Corner.FAST).saturation_current(1.5, w)
    typ = TECH.nmos_model(Corner.TYPICAL).saturation_current(1.5, w)
    slow = TECH.nmos_model(Corner.SLOW).saturation_current(1.5, w)
    assert fast > typ > slow > 0


# ---- bounds -----------------------------------------------------------------------


@given(st.floats(min_value=0.0, max_value=1e-9),
       st.floats(min_value=0.0, max_value=1e-9),
       st.floats(min_value=0.0, max_value=0.9),
       st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=150, deadline=None)
def test_bound_arithmetic_preserves_ordering(a, b, tol, scale):
    ba = Bound.from_tolerance(a, tol)
    bb = Bound.from_tolerance(b, tol)
    for bound in (ba + bb, ba.scaled(scale)):
        assert bound.lo <= bound.nominal <= bound.hi


# ---- Elmore ------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=20),
       st.floats(min_value=1.0, max_value=1e4),
       st.floats(min_value=1e-16, max_value=1e-12),
       st.integers(min_value=1, max_value=20),
       st.floats(min_value=1e-16, max_value=1e-12))
@settings(max_examples=100, deadline=None)
def test_elmore_monotone_along_chain_and_in_cap(sections, r_total, c_total,
                                                tap_index, extra_cap):
    assume(tap_index <= sections)
    tree = uniform_ladder(sections, r_total, c_total)
    delays = [tree.elmore_delay(f"n{i}") for i in range(1, sections + 1)]
    # Farther along the line is never faster.
    assert delays == sorted(delays)
    # Adding capacitance anywhere never speeds anything up.
    before = tree.elmore_delay(f"n{sections}")
    tree.add_cap(f"n{tap_index}", extra_cap)
    after = tree.elmore_delay(f"n{sections}")
    assert after >= before


# ---- sequential equivalence ------------------------------------------------------------


@given(st.integers(min_value=2, max_value=8),
       st.permutations(list(range(8))))
@settings(max_examples=60, deadline=None)
def test_sequential_equivalence_invariant_under_relabeling(modulus, perm):
    """Renaming a machine's states never changes its behaviour -- the
    core 'different state declarations' property of section 4.1."""
    def counter():
        return TableFsm(
            input_width=1,
            reset=0,
            next_fn=lambda s, i: (s + 1) % modulus if i & 1 else s,
            out_fn=lambda s, i: 1 if (i & 1 and s == modulus - 1) else 0,
        )

    mapping = {s: perm[s] for s in range(modulus)}
    inverse = {v: k for k, v in mapping.items()}
    relabeled = TableFsm(
        input_width=1,
        reset=mapping[0],
        next_fn=lambda s, i: mapping[(inverse[s] + 1) % modulus] if i & 1 else s,
        out_fn=lambda s, i: 1 if (i & 1 and inverse[s] == modulus - 1) else 0,
    )
    result = check_sequential(counter(), relabeled)
    assert result.equivalent
    assert result.explored == modulus
