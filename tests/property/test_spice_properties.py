"""Property-based tests on the transient simulator's physics.

The golden reference must obey textbook circuit laws for arbitrary
(bounded) element values: exponential settling, charge conservation in
dividers, and monotone dependence of delay on R and C.
"""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.spice.circuit import Circuit, PwlSource
from repro.spice.transient import transient
from repro.spice.waveforms import crossing_time

resistance = st.floats(min_value=100.0, max_value=50e3)
capacitance = st.floats(min_value=10e-15, max_value=5e-12)
voltage = st.floats(min_value=0.5, max_value=5.0)


@given(resistance, capacitance, voltage)
@settings(max_examples=40, deadline=None)
def test_rc_step_settles_to_source(r, c, v):
    circuit = Circuit()
    circuit.vsource("in", PwlSource.step(0.0, v, 0.0, 1e-15))
    circuit.resistor("in", "out", r)
    circuit.capacitor("out", "gnd", c)
    tau = r * c
    result = transient(circuit, t_stop=8 * tau, dt=tau / 50)
    assert abs(result.final("out") - v) < 0.01 * v


@given(resistance, capacitance, voltage)
@settings(max_examples=40, deadline=None)
def test_rc_63_percent_at_one_tau(r, c, v):
    circuit = Circuit()
    circuit.vsource("in", PwlSource.step(0.0, v, 0.0, 1e-15))
    circuit.resistor("in", "out", r)
    circuit.capacitor("out", "gnd", c)
    tau = r * c
    result = transient(circuit, t_stop=5 * tau, dt=tau / 100)
    t63 = crossing_time(result.wave("out"), v * (1 - math.exp(-1)),
                        rising=True)
    assert t63 is not None
    assert abs(t63 - tau) < 0.07 * tau  # backward-Euler bias bound


@given(resistance, resistance, voltage)
@settings(max_examples=40, deadline=None)
def test_divider_obeys_ratio(r1, r2, v):
    circuit = Circuit()
    circuit.vsource("top", v)
    circuit.resistor("top", "mid", r1)
    circuit.resistor("mid", "gnd", r2)
    result = transient(circuit, t_stop=1e-9, dt=1e-11)
    expected = v * r2 / (r1 + r2)
    assert abs(result.final("mid") - expected) < 0.01 * v


@given(resistance, capacitance,
       st.floats(min_value=1.5, max_value=4.0))
@settings(max_examples=30, deadline=None)
def test_delay_monotone_in_scaling(r, c, factor):
    """Scaling R (or C) by k scales the 50% crossing by exactly k."""
    def t50(res, cap):
        circuit = Circuit()
        circuit.vsource("in", PwlSource.step(0.0, 1.0, 0.0, 1e-15))
        circuit.resistor("in", "out", res)
        circuit.capacitor("out", "gnd", cap)
        tau = res * cap
        result = transient(circuit, t_stop=4 * tau, dt=tau / 80)
        value = crossing_time(result.wave("out"), 0.5, rising=True)
        assert value is not None
        return value

    base = t50(r, c)
    scaled_r = t50(r * factor, c)
    scaled_c = t50(r, c * factor)
    assert abs(scaled_r / base - factor) < 0.08 * factor
    assert abs(scaled_c / base - factor) < 0.08 * factor
