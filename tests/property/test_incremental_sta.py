"""Property tests: incremental STA is bit-identical to full re-verify.

The incremental engine's contract (see ``TimingAnalyzer``): after any
sequence of arc re-pricings, ``verify(incremental=True)`` returns the
same arrival windows, critical paths, races, and minimum cycle time --
float for float -- as a from-scratch ``verify()`` on the same graph.
Random arc edits over a real mixed design (static + domino + latch arcs)
probe exactly where a pruned cone or a stale window would hide.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.designs.adders import domino_carry_adder, ripple_carry_adder
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.timing.analyzer import TimingAnalyzer
from repro.timing.clocking import TwoPhaseClock
from repro.timing.constraints import generate_constraints
from repro.timing.driver import analyze_design

TECH = strongarm_technology()
CLOCK = TwoPhaseClock(period_s=6.25e-9, non_overlap_s=0.1e-9)


def _fresh_run(builder, width):
    flat = flatten(builder(width))
    hints = ("clk",) if builder is domino_carry_adder else ()
    return analyze_design(flat, TECH, CLOCK, clock_hints=hints)


def _full_reference(run):
    """A brand-new analyzer over the same (edited) graph: the oracle."""
    analyzer = TimingAnalyzer(run.design, run.analyzer.graph, CLOCK,
                              generate_constraints(run.design))
    return analyzer.verify()


def _report_key(report):
    return (
        sorted((n, w.t_min, w.t_max) for n, w in report.arrivals.items()),
        [(p.endpoint, p.arrival_s, p.slack_s, p.nets)
         for p in report.critical_paths],
        [(r.constraint.net, r.margin_s) for r in report.races],
        report.min_cycle_time_s,
    )


def _apply_edits(run, edits):
    """Scale a pseudo-random subset of arc delays in place."""
    arcs = run.analyzer.graph.arcs
    for index, scale_pct in edits:
        arc = arcs[index % len(arcs)]
        factor = scale_pct / 100.0
        run.analyzer.graph.reprice(arc, arc.d_min * factor,
                                   arc.d_max * factor)


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(10, 400)),
                min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_domino_adder_incremental_matches_full(edits):
    run = _fresh_run(domino_carry_adder, 3)
    _apply_edits(run, edits)
    incremental = run.analyzer.verify(incremental=True)
    assert _report_key(incremental) == _report_key(_full_reference(run))


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(10, 400)),
                min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_static_adder_incremental_matches_full(edits):
    run = _fresh_run(ripple_carry_adder, 3)
    _apply_edits(run, edits)
    incremental = run.analyzer.verify(incremental=True)
    assert _report_key(incremental) == _report_key(_full_reference(run))


@given(st.lists(st.lists(st.tuples(st.integers(0, 10_000),
                                   st.integers(10, 400)),
                         min_size=1, max_size=4),
                min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_repeated_edit_verify_cycles_stay_identical(rounds):
    """Many edit -> incremental-verify rounds never drift from full."""
    run = _fresh_run(domino_carry_adder, 2)
    for edits in rounds:
        _apply_edits(run, edits)
        incremental = run.analyzer.verify(incremental=True)
        assert _report_key(incremental) == _report_key(_full_reference(run))


def test_incremental_does_less_work_than_full():
    run = _fresh_run(domino_carry_adder, 8)
    nets_full = run.analyzer.counters()["sta_nets_propagated"]
    arc = run.analyzer.graph.arcs[0]
    run.analyzer.graph.reprice(arc, arc.d_min * 1.01, arc.d_max * 1.01)
    run.analyzer.verify(incremental=True)
    counters = run.analyzer.counters()
    assert counters["sta_incremental_propagations"] == 1
    assert counters["sta_nets_repropagated"] < nets_full


def test_noop_reprice_propagates_nothing():
    """Re-pricing an arc to its current bounds marks nothing dirty."""
    run = _fresh_run(ripple_carry_adder, 4)
    arc = run.analyzer.graph.arcs[0]
    assert not run.analyzer.graph.reprice(arc, arc.d_min, arc.d_max)
    run.analyzer.verify(incremental=True)
    assert run.analyzer.counters()["sta_nets_repropagated"] == 0
