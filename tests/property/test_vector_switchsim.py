"""Property tests: vector engine ≡ reference engine on random networks.

The seed-design sweep (tests/switchsim/test_vector_equivalence.py)
covers curated circuit styles; this file attacks the vector engine with
hypothesis-generated transistor soups -- random channel graphs that
freely include cyclic charge-sharing paths, pass-gate chains gated by
their own channel nets, floating (rail-less) nets, and ratio fights --
and asserts state-for-state identity across 50 timesteps of random
drive/release stimulus.  Networks that legitimately oscillate must
raise :class:`OscillationError` in *both* engines with identical
pre-raise history.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.switchsim.engine import OscillationError, SwitchSimulator
from repro.switchsim.values import Logic

PORTS = ["p0", "p1", "p2"]
INTERNAL = ["x0", "x1", "x2", "x3"]
NETS = PORTS + INTERNAL + ["vdd", "gnd"]
WIDTHS = [1.0, 2.0, 4.0, 10.0]

transistor = st.tuples(
    st.sampled_from(["nmos", "pmos"]),
    st.sampled_from(NETS),                 # gate (rail gates allowed)
    st.sampled_from(NETS),                 # drain
    st.sampled_from(NETS),                 # source
    st.sampled_from(WIDTHS),
)

network = st.lists(transistor, min_size=2, max_size=9)

stimulus = st.lists(
    st.tuples(st.sampled_from(PORTS),
              st.sampled_from(["0", "1", "x", "release"])),
    min_size=50, max_size=50,
)


def _build(devices):
    b = CellBuilder("soup", ports=PORTS)
    for i, (pol, gate, drain, source, w) in enumerate(devices):
        if drain == source:
            continue  # degenerate: no channel
        if pol == "nmos":
            b.nmos(gate, drain, source, w=w, name=f"m{i}")
        else:
            b.pmos(gate, drain, source, w=w, name=f"m{i}")
    cell = b.build()
    if not cell.transistors:
        return None
    return flatten(cell)


def _apply(sim, net, action):
    if action == "release":
        sim.release(net)
    elif action == "x":
        sim.drive(net, Logic.X)
    else:
        sim.drive(net, int(action))


@given(network, stimulus)
@settings(max_examples=60, deadline=None)
def test_vector_identical_on_random_networks(devices, steps):
    flat = _build(devices)
    if flat is None:
        return
    ref = SwitchSimulator(flat)
    vec = SwitchSimulator(flat, engine="vector")
    nets = sorted(flat.nets)
    for step, (net, action) in enumerate(steps):
        _apply(ref, net, action)
        _apply(vec, net, action)
        ref_osc = vec_osc = False
        try:
            ref_events = ref.settle(max_events=500)
        except OscillationError:
            ref_osc = True
        try:
            vec_events = vec.settle(max_events=500)
        except OscillationError:
            vec_osc = True
        assert ref_osc == vec_osc, step
        if ref_osc:
            # Both diverged at the same budget; the pre-raise trace
            # must still agree, then the network is unusable.
            assert ref.history == vec.history
            return
        assert ref_events == vec_events, step
        for name in nets:
            rs, vs = ref.state[name], vec.state[name]
            assert rs.value is vs.value, (step, name)
            assert rs.driven == vs.driven, (step, name)
    assert ref.history == vec.history
    for key in ("ccc_evaluations", "net_solves", "naive_net_solves",
                "solve_count", "skip_count"):
        assert ref.counters[key] == vec.counters[key], key


@given(network, stimulus)
@settings(max_examples=20, deadline=None)
def test_vector_identical_exhaustive_mode(devices, steps):
    """The incremental=False cross-check mode, same identity contract."""
    flat = _build(devices)
    if flat is None:
        return
    ref = SwitchSimulator(flat, incremental=False)
    vec = SwitchSimulator(flat, incremental=False, engine="vector")
    nets = sorted(flat.nets)
    for net, action in steps[:15]:
        _apply(ref, net, action)
        _apply(vec, net, action)
        try:
            ref_events = ref.settle(max_events=500)
        except OscillationError:
            with_osc = False
            try:
                vec.settle(max_events=500)
            except OscillationError:
                with_osc = True
            assert with_osc
            return
        assert ref_events == vec.settle(max_events=500)
        for name in nets:
            assert ref.state[name].value is vec.state[name].value, name
    assert ref.history == vec.history
