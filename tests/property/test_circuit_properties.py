"""Property-based tests on circuit-level invariants: recognition vs
switch simulation, conduction semantics, flattening conservation."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.netlist.builder import CellBuilder
from repro.netlist.cell import Cell
from repro.netlist.flatten import flatten
from repro.recognition.ccc import extract_cccs
from repro.recognition.gates import recognize_static_gate
from repro.switchsim.engine import SwitchSimulator
from repro.switchsim.values import Logic

INPUTS = ["a", "bb", "c"]

# Random 2-level static networks: a gate type and a subset of inputs.
gate_kind = st.sampled_from(["nand", "nor", "inv"])
input_subset = st.lists(st.sampled_from(INPUTS), min_size=1, max_size=3,
                        unique=True)


@st.composite
def static_network(draw):
    """(cell builder actions, evaluator) for a random 2-gate network."""
    k1 = draw(gate_kind)
    in1 = draw(input_subset) if k1 != "inv" else [draw(st.sampled_from(INPUTS))]
    k2 = draw(gate_kind)
    in2_pool = INPUTS + ["n1"]
    in2 = (draw(st.lists(st.sampled_from(in2_pool), min_size=1, max_size=3,
                         unique=True))
           if k2 != "inv" else [draw(st.sampled_from(in2_pool))])

    def build(b: CellBuilder) -> None:
        apply_gate(b, k1, in1, "n1")
        apply_gate(b, k2, in2, "y")

    def evaluate(values: dict) -> bool:
        n1 = gate_fn(k1, [values[i] for i in in1])
        pool = dict(values, n1=n1)
        return gate_fn(k2, [pool[i] for i in in2])

    return build, evaluate


def apply_gate(b: CellBuilder, kind: str, inputs, out: str) -> None:
    if kind == "nand":
        b.nand(inputs, out)
    elif kind == "nor":
        b.nor(inputs, out)
    else:
        b.inverter(inputs[0], out)


def gate_fn(kind: str, values) -> bool:
    if kind == "nand":
        return not all(values)
    if kind == "nor":
        return not any(values)
    return not values[0]


@given(static_network(),
       st.tuples(st.booleans(), st.booleans(), st.booleans()))
@settings(max_examples=120, deadline=None)
def test_switchsim_matches_boolean_semantics(network, values):
    """Any random static network simulates to its boolean function."""
    build, evaluate = network
    b = CellBuilder("dut", ports=INPUTS + ["y"])
    build(b)
    sim = SwitchSimulator(flatten(b.build()))
    assignment = dict(zip(INPUTS, values))
    sim.step(**{k: int(v) for k, v in assignment.items()})
    expected = evaluate(assignment)
    assert sim.value("y") is Logic.from_bool(expected)


@given(static_network())
@settings(max_examples=100, deadline=None)
def test_recognition_matches_boolean_semantics(network):
    """Recognition extracts the same function the network computes."""
    build, evaluate = network
    b = CellBuilder("dut", ports=INPUTS + ["y"])
    build(b)
    flat = flatten(b.build())
    cccs = extract_cccs(flat)
    ccc = next(c for c in cccs if "y" in c.channel_nets)
    gate = recognize_static_gate(ccc, "y")
    assert gate is not None and gate.complementary
    # Exhaust the gate's own inputs; complete with the upstream value.
    for i in range(1 << 3):
        assignment = {name: bool((i >> k) & 1) for k, name in enumerate(INPUTS)}
        n1_ccc = next(c for c in cccs if "n1" in c.channel_nets)
        n1_gate = recognize_static_gate(n1_ccc, "n1")
        pool = dict(assignment)
        if n1_gate is not None:
            pool["n1"] = n1_gate.evaluate(
                {k: assignment[k] for k in n1_gate.inputs})
        relevant = {k: pool[k] for k in gate.inputs}
        assert gate.evaluate(relevant) == evaluate(assignment)


@given(st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_flatten_conserves_devices(depth, fanout):
    """Hierarchical composition never loses or duplicates devices."""
    leaf_b = CellBuilder("leaf", ports=["a", "y"])
    leaf_b.inverter("a", "y")
    leaf = leaf_b.build()

    current = leaf
    expected = 2
    for level in range(depth):
        parent = Cell(name=f"lvl{level}", ports=["a", "y", "vdd", "gnd"])
        for k in range(fanout):
            parent.instantiate(f"u{k}", current, a="a", y=f"mid{k}")
        expected *= fanout
        current = parent

    flat = flatten(current)
    assert flat.device_count() == expected
    # Every transistor terminal resolves to a known net.
    for t in flat.transistors:
        for term in t.terminals():
            assert term in flat.nets
    # Pin counts are consistent: 3 pins per transistor.
    total_pins = sum(len(n.pins) for n in flat.nets.values())
    assert total_pins == 3 * expected


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=3),
       st.integers(min_value=0, max_value=7))
@settings(max_examples=60, deadline=None)
def test_switchsim_deterministic(bits, extra):
    """Same stimulus, same result -- independent of history length."""
    def make():
        b = CellBuilder("dut", ports=INPUTS + ["y"])
        b.nand(INPUTS, "n1")
        b.inverter("n1", "y")
        return SwitchSimulator(flatten(b.build()))

    fresh = make()
    fresh.step(**dict(zip(INPUTS, bits)))
    warm = make()
    for i in range(extra):
        warm.step(**dict(zip(INPUTS, [(i >> k) & 1 for k in range(3)])))
    warm.step(**dict(zip(INPUTS, bits)))
    assert fresh.value("y") is warm.value("y")
