"""Property-based round-trip test for the SPICE reader/writer.

The writer is the toolkit's interchange surface: whatever a campaign
checkpoints or a designer hands to a colleague goes through
``write_spice``.  The property that makes that safe is a *fixpoint*:
parsing the writer's output and writing it again reproduces the text
bit-for-bit, for arbitrary hierarchical cells.  (The first write is the
canonicalization step -- ``%.6g`` formatting, default body rails --
so the equality is asserted between the first and second serializations,
which is exactly the "no drift on re-save" guarantee a netlist store
needs.)
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.netlist.cell import Cell
from repro.netlist.devices import Capacitor, Resistor, Transistor
from repro.netlist.flatten import flatten
from repro.netlist.spice_io import parse_spice, write_spice

# Geometry / value grids with <= 6 significant digits so the writer's
# %.6g rendering is exact for the generated values.
width = st.floats(min_value=0.1, max_value=99.0).map(lambda x: round(x, 3))
length = st.one_of(
    st.just(0.0),  # "use the technology minimum"
    st.floats(min_value=0.18, max_value=4.0).map(lambda x: round(x, 3)),
)
cap_f = st.floats(min_value=0.1, max_value=500.0).map(
    lambda x: round(x, 3) * 1e-15)
res_ohm = st.floats(min_value=1.0, max_value=9999.0).map(
    lambda x: round(x, 2))
polarity = st.sampled_from(["nmos", "pmos"])


@st.composite
def leaf_cell(draw, name: str) -> Cell:
    ports = [f"p{i}" for i in range(draw(st.integers(1, 4)))]
    cell = Cell(name=name, ports=list(ports))
    nets = ports + [f"x{i}" for i in range(draw(st.integers(0, 3)))]
    net = st.sampled_from(nets)
    for i in range(draw(st.integers(1, 5))):
        cell.add(Transistor(
            name=f"m{i}", polarity=draw(polarity),
            gate=draw(net), drain=draw(net), source=draw(net),
            w_um=draw(width), l_um=draw(length),
        ))
    for i in range(draw(st.integers(0, 2))):
        cell.add(Capacitor(f"c{i}", draw(net), draw(net), draw(cap_f)))
    for i in range(draw(st.integers(0, 2))):
        cell.add(Resistor(f"r{i}", draw(net), draw(net), draw(res_ohm)))
    return cell


@st.composite
def hierarchical_cell(draw) -> Cell:
    """A two-level hierarchy: leaves, then a top that mixes instances of
    (possibly shared) leaves with its own devices."""
    leaves = [draw(leaf_cell(f"leaf{i}"))
              for i in range(draw(st.integers(1, 3)))]
    top_ports = [f"t{i}" for i in range(draw(st.integers(1, 4)))]
    top = Cell(name="top", ports=list(top_ports))
    nets = top_ports + [f"w{i}" for i in range(draw(st.integers(0, 4)))]
    net = st.sampled_from(nets)
    for i in range(draw(st.integers(1, 4))):
        child = draw(st.sampled_from(leaves))
        top.instantiate(f"u{i}", child,
                        **{p: draw(net) for p in child.ports})
    for i in range(draw(st.integers(0, 3))):
        top.add(Transistor(
            name=f"m{i}", polarity=draw(polarity),
            gate=draw(net), drain=draw(net), source=draw(net),
            w_um=draw(width), l_um=draw(length),
        ))
    return top


@given(hierarchical_cell())
@settings(max_examples=60, deadline=None)
def test_write_parse_write_is_bit_identical(cell):
    text = write_spice(cell)
    reparsed = parse_spice(text, top=cell.name)
    assert write_spice(reparsed) == text


@given(hierarchical_cell())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_structure(cell):
    reparsed = parse_spice(write_spice(cell), top=cell.name)
    assert reparsed.name == cell.name
    assert reparsed.ports == cell.ports
    assert sorted(reparsed.all_cells()) == sorted(cell.all_cells())
    assert reparsed.transistor_count() == cell.transistor_count()

    f1, f2 = flatten(cell), flatten(reparsed)
    assert {t.name for t in f1.transistors} == {t.name for t in f2.transistors}
    for t1 in f1.transistors:
        t2 = f2.transistor(t1.name)
        assert (t1.polarity, t1.gate, t1.drain, t1.source) == \
            (t2.polarity, t2.gate, t2.drain, t2.source)
        assert abs(t1.w_um - t2.w_um) <= 1e-9 * max(1.0, t1.w_um)
        assert abs(t1.l_um - t2.l_um) <= 1e-9 * max(1.0, t1.l_um)
