"""Property-based tests on layout and recognition invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.layout.router import channel_route
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.layout.macrocell import generate_macrocell
from repro.recognition.recognizer import NetKind, recognize


# ---- channel router invariants ------------------------------------------------

pin_x = st.floats(min_value=0.0, max_value=100.0)


@st.composite
def pin_sets(draw):
    n_nets = draw(st.integers(min_value=1, max_value=8))
    pins = {}
    for i in range(n_nets):
        count = draw(st.integers(min_value=2, max_value=4))
        xs = [draw(pin_x) for _ in range(count)]
        pins[f"n{i}"] = [(x, 10.0 if k % 2 == 0 else -10.0)
                         for k, x in enumerate(xs)]
    return pins


@given(pin_sets())
@settings(max_examples=80, deadline=None)
def test_router_never_overlaps_trunks_on_one_track(pins):
    segments = channel_route(pins, channel_y0=-8.0, channel_y1=8.0,
                             track_pitch=1.0)
    trunks = [s for s in segments if s.kind == "trunk"]
    by_track = {}
    for trunk in trunks:
        by_track.setdefault(trunk.track, []).append(trunk)
    for same_track in by_track.values():
        for i, a in enumerate(same_track):
            for b in same_track[i + 1:]:
                # Distinct nets sharing a track must not overlap in x.
                assert a.rect.horizontal_overlap(b.rect) == 0.0, (a.net, b.net)


@given(pin_sets())
@settings(max_examples=60, deadline=None)
def test_router_covers_every_pin(pins):
    segments = channel_route(pins, channel_y0=-8.0, channel_y1=8.0,
                             track_pitch=1.0)
    for net, locations in pins.items():
        branches = [s for s in segments if s.net == net and s.kind == "branch"]
        # One branch per pin, each reaching the pin's x position.
        assert len(branches) == len(locations)
        branch_xs = sorted(round((s.rect.x0 + s.rect.x1) / 2, 3)
                           for s in branches)
        want_xs = sorted(round(x, 3) for x, _y in locations)
        assert branch_xs == want_xs


# ---- macrocell invariants --------------------------------------------------------

gate_counts = st.integers(min_value=1, max_value=4)


@given(gate_counts, st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_macrocell_places_every_device(n_nands, n_invs):
    b = CellBuilder("mc", ports=[f"i{k}" for k in range(n_nands + n_invs)]
                    + [f"o{k}" for k in range(n_nands + n_invs)])
    for k in range(n_nands):
        b.nand([f"i{k}", f"i{(k + 1) % (n_nands + n_invs)}"], f"o{k}")
    for k in range(n_invs):
        b.inverter(f"i{n_nands + k}", f"o{n_nands + k}")
    cell = b.build()
    result = generate_macrocell("mc", cell.transistors)
    assert set(result.layout.placements) == {t.name for t in cell.transistors}
    assert result.width_um > 0
    # Every multi-pin net got routed metal.
    for net in result.layout.nets():
        pass  # presence is enough; detailed checks in unit tests


# ---- recognition invariants ----------------------------------------------------------


@given(st.integers(min_value=1, max_value=4),
       st.booleans(), st.booleans())
@settings(max_examples=40, deadline=None)
def test_every_net_gets_a_kind(width, with_domino, with_latch):
    b = CellBuilder("dut", ports=["clk", "clk_b"]
                    + [f"a{k}" for k in range(width)] + ["y", "q"])
    prev = "a0"
    for k in range(1, width):
        b.nand([prev, f"a{k}"], f"m{k}")
        prev = f"m{k}"
    if with_domino:
        b.domino_gate("clk", [prev], "y")
    else:
        b.inverter(prev, "y")
    if with_latch:
        b.transparent_latch("y", "q", "clk", "clk_b")
    flat = flatten(b.build())
    design = recognize(flat, clock_hints=["clk", "clk_b"])
    for net in flat.nets:
        assert design.kind(net) is not None
        assert isinstance(design.kind(net), NetKind)
    # Rails always classified as rails; ports never as UNKNOWN drivers.
    assert design.kind("vdd") is NetKind.RAIL
    assert design.kind("gnd") is NetKind.RAIL
    # CCC families partition the devices: every transistor in exactly
    # one classification.
    counted = sum(c.ccc.size() for c in design.classifications)
    assert counted == flat.device_count()
