"""Property-based tests for the BDD package.

The canonical-form guarantee is the foundation of equivalence checking:
whatever order operations are applied in, equal functions must be equal
node ids, and evaluation must agree with direct boolean semantics.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.equivalence.bdd import BddManager

N_VARS = 4
VAR_NAMES = [f"v{i}" for i in range(N_VARS)]


# A random boolean expression tree over N_VARS variables.
def expr_strategy(depth=4):
    leaves = st.sampled_from(VAR_NAMES + ["0", "1"])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
        ),
        max_leaves=12,
    )


def build_bdd(manager: BddManager, expr) -> int:
    if expr == "0":
        return manager.false
    if expr == "1":
        return manager.true
    if isinstance(expr, str):
        return manager.var(expr)
    op = expr[0]
    if op == "not":
        return manager.not_(build_bdd(manager, expr[1]))
    a = build_bdd(manager, expr[1])
    b = build_bdd(manager, expr[2])
    return {"and": manager.and_, "or": manager.or_, "xor": manager.xor_}[op](a, b)


def eval_expr(expr, assignment) -> bool:
    if expr == "0":
        return False
    if expr == "1":
        return True
    if isinstance(expr, str):
        return assignment[expr]
    op = expr[0]
    if op == "not":
        return not eval_expr(expr[1], assignment)
    a = eval_expr(expr[1], assignment)
    b = eval_expr(expr[2], assignment)
    return {"and": a and b, "or": a or b, "xor": a != b}[op]


@given(expr_strategy())
@settings(max_examples=200, deadline=None)
def test_bdd_matches_direct_evaluation(expr):
    manager = BddManager()
    for name in VAR_NAMES:
        manager.var(name)
    node = build_bdd(manager, expr)
    for i in range(1 << N_VARS):
        assignment = {name: bool((i >> k) & 1) for k, name in enumerate(VAR_NAMES)}
        assert manager.evaluate(node, assignment) == eval_expr(expr, assignment)


@given(expr_strategy(), expr_strategy())
@settings(max_examples=150, deadline=None)
def test_bdd_canonicity(e1, e2):
    """Two expressions are the same node iff they are the same function."""
    manager = BddManager()
    for name in VAR_NAMES:
        manager.var(name)
    n1 = build_bdd(manager, e1)
    n2 = build_bdd(manager, e2)
    same_function = all(
        eval_expr(e1, {name: bool((i >> k) & 1) for k, name in enumerate(VAR_NAMES)})
        == eval_expr(e2, {name: bool((i >> k) & 1) for k, name in enumerate(VAR_NAMES)})
        for i in range(1 << N_VARS)
    )
    assert (n1 == n2) == same_function


@given(expr_strategy())
@settings(max_examples=100, deadline=None)
def test_bdd_double_negation_and_excluded_middle(expr):
    manager = BddManager()
    for name in VAR_NAMES:
        manager.var(name)
    node = build_bdd(manager, expr)
    assert manager.not_(manager.not_(node)) == node
    assert manager.or_(node, manager.not_(node)) == manager.true
    assert manager.and_(node, manager.not_(node)) == manager.false


@given(expr_strategy())
@settings(max_examples=100, deadline=None)
def test_bdd_count_sat_consistent(expr):
    manager = BddManager()
    for name in VAR_NAMES:
        manager.var(name)
    node = build_bdd(manager, expr)
    expected = sum(
        1 for i in range(1 << N_VARS)
        if eval_expr(expr, {name: bool((i >> k) & 1)
                            for k, name in enumerate(VAR_NAMES)})
    )
    assert manager.count_sat(node) == expected
    witness = manager.any_sat(node)
    assert (witness is None) == (expected == 0)
    if witness is not None:
        full = {name: witness.get(name, False) for name in VAR_NAMES}
        assert eval_expr(expr, full)
