"""Property tests: the O(N) Elmore kernels agree with the references.

``elmore_all`` computes every node's delay in two linear passes; its
contract is exact agreement with the per-node ``elmore_delay`` (both
accumulate R * downstream-C root-to-leaf) and numerical agreement with
``elmore_delay_reference`` (the original per-query kernel, which sums
the same products in a different association order).  Random tree
shapes, section counts, and R/C values probe both.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.extraction.rctree import RCTree, uniform_ladder


@st.composite
def random_tree(draw):
    """An RC tree with random topology and element values."""
    n = draw(st.integers(1, 24))
    tree = RCTree("root")
    names = ["root"]
    for i in range(n):
        parent = names[draw(st.integers(0, len(names) - 1))]
        name = f"n{i}"
        tree.add_node(
            name, parent,
            resistance=draw(st.floats(1.0, 5e3)),
            cap=draw(st.floats(1e-16, 5e-13)),
        )
        names.append(name)
    extra_caps = draw(st.integers(0, 4))
    for _ in range(extra_caps):
        tree.add_cap(names[draw(st.integers(0, len(names) - 1))],
                     draw(st.floats(1e-16, 1e-13)))
    return tree


@given(random_tree(), st.floats(0.0, 1e4))
@settings(max_examples=60, deadline=None)
def test_elmore_all_equals_per_node_queries(tree, r_drive):
    delays = tree.elmore_all(driver_resistance=r_drive)
    assert set(delays) == set(tree.nodes())
    for node in tree.nodes():
        assert delays[node] == tree.elmore_delay(node, driver_resistance=r_drive)


@given(random_tree(), st.floats(0.0, 1e4))
@settings(max_examples=60, deadline=None)
def test_elmore_all_matches_naive_reference(tree, r_drive):
    delays = tree.elmore_all(driver_resistance=r_drive)
    for node in tree.nodes():
        reference = tree.elmore_delay_reference(node, driver_resistance=r_drive)
        assert delays[node] == pytest.approx(reference, rel=1e-9, abs=1e-30)


@given(random_tree())
@settings(max_examples=40, deadline=None)
def test_mutation_invalidates_caches(tree):
    """Add a node after querying: every kernel sees the new topology."""
    before = tree.elmore_all()
    tree.add_node("late", "root", resistance=123.0, cap=1e-14)
    after = tree.elmore_all()
    assert set(after) == set(before) | {"late"}
    for node in after:
        assert after[node] == tree.elmore_delay(node)


@given(st.integers(1, 64))
@settings(max_examples=20, deadline=None)
def test_ladder_worst_is_last_tap(sections):
    tree = uniform_ladder(sections, total_resistance=10.0 * sections,
                          total_cap=1e-14 * sections)
    node, delay = tree.worst_elmore()
    delays = tree.elmore_all()
    assert delay == max(delays.values())
    assert delays[node] == delay
