"""Integration-grade tests for the mini-core slice: functional behaviour
against its behavioral reference, recognition inventory, and the full
CBV campaign."""

import pytest

from repro.core.campaign import CbvCampaign, DesignBundle
from repro.core.stages import FlowStage, StageStatus
from repro.designs.minicore import MiniCoreReference, mini_core
from repro.netlist.flatten import flatten
from repro.process.technology import strongarm_technology
from repro.recognition.recognizer import recognize
from repro.switchsim.engine import SwitchSimulator
from repro.switchsim.values import Logic
from repro.timing.clocking import TwoPhaseClock

WIDTH, ENTRIES = 2, 2


@pytest.fixture(scope="module")
def core():
    return mini_core(width=WIDTH, entries=ENTRIES)


@pytest.fixture(scope="module")
def tech():
    return strongarm_technology()


class CoreDriver:
    """Testbench around the switch simulator with the domino discipline."""

    def __init__(self, core):
        self.core = core
        self.sim = SwitchSimulator(flatten(core.cell))
        self.reference = MiniCoreReference(core.width, core.entries)
        # Park every control low.
        init = {"cin": 0, "clk": 0, "clk_b": 1}
        for r in range(core.entries):
            init.update({f"we{r}": 0, f"we_b{r}": 1, f"ra{r}": 0, f"rb{r}": 0})
        for bit in range(core.width):
            init[f"d{bit}"] = 0
        self.sim.step(**init)

    def write(self, entry: int, value: int) -> None:
        drives = {f"d{bit}": (value >> bit) & 1 for bit in range(self.core.width)}
        drives[f"we{entry}"] = 1
        drives[f"we_b{entry}"] = 0
        self.sim.step(**drives)
        self.sim.step(**{f"we{entry}": 0, f"we_b{entry}": 1})
        self.reference.write(entry, value)

    def compute(self, ra: int, rb: int, cin: int):
        # Precharge with reads disabled.
        clears = {f"ra{r}": 0 for r in range(self.core.entries)}
        clears.update({f"rb{r}": 0 for r in range(self.core.entries)})
        self.sim.step(clk=0, clk_b=1, cin=0, **clears)
        # Select operands, then evaluate.
        self.sim.step(**{f"ra{ra}": 1, f"rb{rb}": 1, "cin": cin})
        self.sim.step(clk=1, clk_b=0)
        result = 0
        for bit in range(self.core.width):
            value = self.sim.value(f"r{bit}")
            assert value is not Logic.X, f"r{bit} is X"
            result |= (1 if value is Logic.ONE else 0) << bit
        cout = 1 if self.sim.value("cout") is Logic.ONE else 0
        return result, cout


def test_minicore_computes_sums(core):
    driver = CoreDriver(core)
    driver.write(0, 0b01)
    driver.write(1, 0b11)
    for ra, rb, cin in [(0, 1, 0), (1, 0, 1), (0, 0, 0), (1, 1, 1)]:
        got = driver.compute(ra, rb, cin)
        want = driver.reference.result(ra, rb, cin)
        assert got == want, (ra, rb, cin)


def test_minicore_result_held_through_precharge(core):
    driver = CoreDriver(core)
    driver.write(0, 0b10)
    driver.write(1, 0b01)
    result, _ = driver.compute(0, 1, 0)
    # Back to precharge: the output latch holds.
    driver.sim.step(clk=0, clk_b=1)
    held = 0
    for bit in range(core.width):
        value = driver.sim.value(f"r{bit}")
        held |= (1 if value is Logic.ONE else 0) << bit
    assert held == result


def test_minicore_recognition_inventory(core):
    design = recognize(flatten(core.cell))
    assert "clk" in design.clocks
    assert len(design.dynamic_nodes) == WIDTH          # one carry node/bit
    # Storage: regfile latches + output latches, two nodes per loop at
    # minimum; just require a healthy count.
    assert len(design.storage) >= WIDTH * ENTRIES
    hist = design.family_histogram()
    from repro.recognition.families import CircuitFamily
    assert hist.get(CircuitFamily.STATIC, 0) >= WIDTH * 4


def test_minicore_full_cbv_campaign(core, tech):
    # The pass-gate-heavy read path is rated conservatively by the
    # switched-RC model; operate the slice at a period the verifier
    # endorses rather than arguing with its pessimism.
    period = 25e-9
    # Write enables are clock-derived strobes in a real slice: hint them.
    hints = ["clk", "clk_b"]
    for r in range(ENTRIES):
        hints += [f"we{r}", f"we_b{r}"]
    # A quiet wireload: this campaign judges the *circuits*, so use the
    # layout-free mode without the synthetic-coupling stress.
    from repro.extraction.wireload import WireloadModel
    quiet = WireloadModel(coupling_fraction=0.05).extract(
        flatten(core.cell), tech.wires)
    bundle = DesignBundle(
        name="minicore",
        cell=core.cell,
        technology=tech,
        clock=TwoPhaseClock(period_s=period, non_overlap_s=0.1e-9),
        clock_hints=tuple(hints),
        use_layout=False,
        parasitics=quiet,
    )
    report = CbvCampaign(bundle).run()
    assert report.stage(FlowStage.SCHEMATIC).metrics["erc_violations"] == 0
    assert report.stage(FlowStage.TIMING_VERIFICATION).metrics["min_cycle_s"] < period
    assert not report.timing.setup_violations
    # The slice should be violation-free (filtered items allowed).
    assert not report.queue.open_violations(), [
        (i.source, i.subject, i.message) for i in report.queue.open_violations()
    ]


def test_minicore_scales(tech):
    big = mini_core(width=4, entries=4)
    small = mini_core(width=2, entries=2)
    assert big.cell.transistor_count() > 2.5 * small.cell.transistor_count()
