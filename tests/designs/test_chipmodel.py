"""Unit tests for repro.designs.chipmodel."""

import pytest

from repro.designs.chipmodel import PipelineChip
from repro.rtl.simulator import PhaseSimulator


def test_pipeline_matches_reference_model():
    chip = PipelineChip(width=16, cam_entries=32)
    sim = PhaseSimulator(chip)
    sim.cycle(50)
    assert chip.acc.get() == chip.reference_accumulator(50)


def test_pipeline_reference_at_various_lengths():
    chip = PipelineChip(width=12, cam_entries=16)
    sim = PhaseSimulator(chip)
    for checkpoint in (1, 7, 23):
        sim.reset()
        sim.cycle(checkpoint)
        assert chip.acc.get() == chip.reference_accumulator(checkpoint), checkpoint


def test_pipeline_gating_freezes_accumulator():
    chip = PipelineChip(width=16, cam_entries=8)
    sim = PhaseSimulator(chip)
    sim.cycle(10)
    frozen = chip.acc.get()
    chip.run.set(0)
    sim.cycle(20)
    assert chip.acc.get() == frozen
    assert chip.pc.get() == 30  # the fetch stage kept running
    assert chip.activity.gated_updates >= 20


def test_pipeline_invariant_check_runs_clean():
    chip = PipelineChip(width=16, cam_entries=32)
    sim = PhaseSimulator(chip)
    sim.cycle(30)  # the hit-consistency check would raise on violation


def test_pipeline_cam_interaction():
    chip = PipelineChip(width=16, cam_entries=4)
    sim = PhaseSimulator(chip)
    # Tag 0 is stored at index 0, so the first sample sees a hit.
    assert chip.cam.first_hit(0) == 0
    sim.cycle(1)
    assert chip.acc.get() == 1  # bump = hit index 0 + 1
