"""Unit tests for the rest of repro.designs: manchester, dcvsl, sram,
cam, regfile, muxes, clocktree, latch zoo, chip model."""

import pytest

from repro.designs.cam import cam_array, cam_row
from repro.designs.clocktree import clock_tree
from repro.designs.dcvsl import dcvsl_and_or, dcvsl_xor
from repro.designs.latch_zoo import dynamic_latch, jamb_latch, pulsed_latch, sr_nand_latch
from repro.designs.manchester import manchester_carry_chain, manchester_reference
from repro.designs.muxes import mux_reference, pass_mux_tree
from repro.designs.regfile import register_file
from repro.designs.sram import array_nmos_width_um, sram_array
from repro.netlist.flatten import flatten
from repro.recognition.families import CircuitFamily
from repro.recognition.recognizer import NetKind, recognize
from repro.switchsim.engine import SwitchSimulator
from repro.switchsim.values import Logic


# ---- Manchester chain ---------------------------------------------------------


def test_manchester_propagate_and_kill():
    cell = manchester_carry_chain(width=3)
    sim = SwitchSimulator(flatten(cell))
    # Bit0 generates (g active-low), bits 1-2 propagate.
    sim.step(cin=0, g0=0, k0=0, p0=0, g1=1, k1=0, p1=1, g2=1, k2=0, p2=1)
    assert sim.value("c2") is Logic.ONE
    # Now bit1 kills.
    sim.step(g0=1, p0=1, k1=1, p1=0)
    assert sim.value("c1") is Logic.ZERO
    assert sim.value("c2") is Logic.ZERO


def test_manchester_recognized_as_mixed_pass_structure():
    design = recognize(flatten(manchester_carry_chain(width=4)))
    # The carry nodes are channel-connected through the propagate
    # devices; the recognizer must not call this a static gate.
    for c in design.classifications:
        if "c0" in c.ccc.channel_nets:
            assert c.family is not CircuitFamily.STATIC


def test_manchester_reference_semantics():
    assert manchester_reference([0, 1, 1], [0, 0, 0], [0, 1, 1], 0) == [1, 1, 1]
    assert manchester_reference([1, 1], [0, 1], [1, 0], 1) == [1, 0]


# ---- DCVSL ------------------------------------------------------------------------


@pytest.mark.parametrize("a,b_", [(0, 0), (0, 1), (1, 0), (1, 1)])
def test_dcvsl_xor_truth_table(a, b_):
    sim = SwitchSimulator(flatten(dcvsl_xor()))
    sim.step(a=a, a_b=1 - a, bb=b_, bb_b=1 - b_)
    want = a ^ b_
    assert sim.value("y") is Logic.from_int(want)
    assert sim.value("y_b") is Logic.from_int(1 - want)


@pytest.mark.parametrize("a,b_", [(0, 0), (0, 1), (1, 0), (1, 1)])
def test_dcvsl_andor_truth_table(a, b_):
    sim = SwitchSimulator(flatten(dcvsl_and_or()))
    sim.step(a=a, a_b=1 - a, bb=b_, bb_b=1 - b_)
    want = a & b_
    assert sim.value("y") is Logic.from_int(want)
    assert sim.value("y_b") is Logic.from_int(1 - want)


def test_dcvsl_recognized_as_pair_not_storage():
    cell = dcvsl_xor()
    design = recognize(flatten(cell))
    assert design.dcvsl_pairs
    assert all(s.net not in ("y", "y_b") for s in design.storage)


# ---- SRAM ---------------------------------------------------------------------------


def test_sram_array_write_read():
    cell = sram_array(rows=2, cols=2)
    sim = SwitchSimulator(flatten(cell))
    # Write 1 into row0/col0, 0 into row0/col1.
    sim.step(wl0=1, wl1=0, bl0=1, bl_b0=0, bl1=0, bl_b1=1)
    sim.step(wl0=0)
    # Read row0 with released bitlines (precharge first).
    sim.step(bl0=1, bl_b0=1, bl1=1, bl_b1=1)
    for net in ("bl0", "bl_b0", "bl1", "bl_b1"):
        sim.release(net)
    sim.step(wl0=1)
    assert sim.value("bl_b0") is Logic.ZERO  # stored 1: complement side pulls
    assert sim.value("bl1") is Logic.ZERO    # stored 0: true side pulls


def test_sram_array_lengthening_recorded():
    cell = sram_array(rows=2, cols=2, l_add_um=0.045)
    assert all(t.l_add_um == 0.045 for t in cell.transistors)
    assert array_nmos_width_um(2, 2) == pytest.approx(4 * (2 * 2.0 + 2 * 1.2))


def test_sram_storage_recognized():
    design = recognize(flatten(sram_array(rows=2, cols=2)))
    cross = [s for s in design.storage if s.kind == "cross_coupled"]
    assert len(cross) == 8  # 4 cells x 2 nodes


# ---- CAM ------------------------------------------------------------------------------


def test_cam_row_match_and_mismatch():
    cell = cam_row(width=2)
    sim = SwitchSimulator(flatten(cell))
    # Write tag 0b10: bit0 = 0, bit1 = 1.
    sim.step(clk=0, wl0=1, bl0=0, bl_b0=1, bl1=1, bl_b1=0,
             sl0=0, sl_b0=0, sl1=0, sl_b1=0)
    sim.step(wl0=0)
    # Precharge the match line (clk low), then search for 0b10.
    sim.step(clk=0)
    assert sim.value("ml0") is Logic.ONE
    sim.step(clk=1, sl0=0, sl_b0=1, sl1=1, sl_b1=0)
    assert sim.value("ml0") is Logic.ONE  # match: line stays up
    # Search for 0b11: bit0 mismatches, line discharges.
    sim.step(clk=0, sl0=0, sl_b0=0, sl1=0, sl_b1=0)
    sim.step(clk=1, sl0=1, sl_b0=0, sl1=1, sl_b1=0)
    assert sim.value("ml0") is Logic.ZERO


def test_cam_array_scales_and_recognizes():
    """Matchline precharge is footless, so the clock must be hinted
    (documented recognition limitation, clocks.py)."""
    cell = cam_array(entries=3, width=2)
    design = recognize(flatten(cell), clock_hints=["clk"])
    # Three precharged match lines -> three dynamic nodes at least.
    dynamic = [n for n in design.dynamic_nodes if n.startswith("ml")]
    assert len(dynamic) == 3
    assert "clk" in design.clocks


# ---- register file --------------------------------------------------------------------


def test_register_file_write_and_read():
    cell = register_file(entries=2, width=1)
    sim = SwitchSimulator(flatten(cell))
    # Write 1 into entry 0 (latch is inverting: store holds d, q0 reads it).
    sim.step(d0=1, we0=1, we_b0=0, we1=0, we_b1=1, re0=0, re1=0)
    sim.step(we0=0, we_b0=1)
    # Write 0 into entry 1.
    sim.step(d0=0, we1=1, we_b1=0)
    sim.step(we1=0, we_b1=1)
    # Read entry 0.
    sim.step(re0=1, re1=0)
    assert sim.value("q0") is Logic.ONE
    # Read entry 1.
    sim.step(re0=0, re1=1)
    assert sim.value("q0") is Logic.ZERO


# ---- muxes ---------------------------------------------------------------------------


@pytest.mark.parametrize("sel", [0, 1, 2, 3])
def test_mux_tree_selects(sel):
    cell = pass_mux_tree(depth=2)
    sim = SwitchSimulator(flatten(cell))
    inputs = [1, 0, 0, 1]
    drives = {f"in{i}": v for i, v in enumerate(inputs)}
    drives.update({
        "s0": sel & 1, "s_b0": 1 - (sel & 1),
        "s1": (sel >> 1) & 1, "s_b1": 1 - ((sel >> 1) & 1),
    })
    sim.step(**drives)
    want = mux_reference(inputs, [sel & 1, (sel >> 1) & 1])
    assert sim.value("y") is Logic.from_int(want)


def test_mux_tree_pass_networks_recognized():
    design = recognize(flatten(pass_mux_tree(depth=2)))
    kinds = design.family_histogram()
    assert kinds.get(CircuitFamily.PASS_NETWORK, 0) \
        + kinds.get(CircuitFamily.TRANSMISSION_GATE, 0) >= 1


# ---- clock tree ----------------------------------------------------------------------


def test_clock_tree_structure_and_recognition():
    cell, leaves = clock_tree(levels=2, branching=2)
    assert len(leaves) == 4
    design = recognize(flatten(cell), clock_hints=["clk_in"])
    for leaf in leaves:
        assert leaf in design.clocks
        assert design.clocks[leaf].root == "clk_in"
        assert design.clocks[leaf].depth == 2
        assert design.clocks[leaf].inverted is False  # even depth


def test_clock_tree_leaf_load():
    cell, leaves = clock_tree(levels=1, branching=3, leaf_load_f=50e-15)
    assert len(cell.capacitors) == 3
    assert all(c.cap_f == 50e-15 for c in cell.capacitors)


# ---- latch zoo --------------------------------------------------------------------------


def test_zoo_dynamic_latch_recognized_dynamic():
    design = recognize(flatten(dynamic_latch()), clock_hints=["clk", "clk_b"])
    node = design.storage_node("store")
    assert node is not None and not node.static


def test_zoo_jamb_latch_behaviour_and_recognition():
    cell = jamb_latch()
    sim = SwitchSimulator(flatten(cell))
    sim.step(d_b=1, wr=1)   # force q low
    assert sim.value("q") is Logic.ZERO
    assert sim.value("q_b") is Logic.ONE
    sim.step(wr=0, d_b=0)   # release: holds
    assert sim.value("q") is Logic.ZERO
    design = recognize(flatten(cell))
    assert {s.net for s in design.storage} >= {"q", "q_b"}


def test_zoo_sr_latch_behaviour_and_recognition():
    cell = sr_nand_latch()
    sim = SwitchSimulator(flatten(cell))
    sim.step(s_b=0, r_b=1)  # set
    assert sim.value("q") is Logic.ONE
    sim.step(s_b=1)         # hold
    assert sim.value("q") is Logic.ONE
    sim.step(r_b=0)         # reset
    assert sim.value("q") is Logic.ZERO
    design = recognize(flatten(cell))
    assert {s.net for s in design.storage} == {"q", "q_b"}


def test_zoo_pulsed_latch_storage_found():
    design = recognize(flatten(pulsed_latch()), clock_hints=["en"])
    assert design.storage_node("store") is not None
