"""Tests for the chip-scale composite design generator."""

import pytest

from repro.designs import ChipScale, chip_scale
from repro.netlist.flatten import flatten
from repro.switchsim import SwitchSimulator


def test_rejects_tiny_targets():
    with pytest.raises(ValueError, match="at least 200"):
        chip_scale(100)


@pytest.mark.parametrize("target", [1000, 5000])
def test_hits_transistor_target(target):
    cs = chip_scale(target)
    assert isinstance(cs, ChipScale)
    flat = flatten(cs.cell)
    n = len(flat.transistors)
    # Tiling can only land within one tile (plus clock retrofit) of the
    # target; 10% is far looser than the plan ever misses by.
    assert abs(n - target) <= 0.1 * target, n
    assert sum(cs.tile_counts.values()) >= 3
    assert all(cs.tile_counts[k] >= 1 for k in ("minicore", "regfile",
                                                "sram"))


def test_deterministic_for_a_target():
    a = flatten(chip_scale(1000).cell)
    b = flatten(chip_scale(1000).cell)
    assert [t.name for t in a.transistors] == [t.name for t in b.transistors]
    assert sorted(a.nets) == sorted(b.nets)


def test_testbench_inventory_is_drivable_and_observable():
    cs = chip_scale(1000)
    flat = flatten(cs.cell)
    assert cs.clock_port == "clk_in"
    assert cs.clock_port in cs.stimulus_ports
    for p in cs.stimulus_ports + cs.output_ports + cs.word_lines:
        assert p in flat.ports, p
    # Every tile exports at least one observable output.
    tags = {p.split("_")[0] for p in cs.output_ports if p.startswith("t")}
    assert len(tags) >= sum(cs.tile_counts.values()) - cs.tile_counts["sram"]


def test_clock_edge_reaches_minicore_tiles():
    """Toggling the root clock must propagate through the tree."""
    cs = chip_scale(300)
    flat = flatten(cs.cell)
    sim = SwitchSimulator(flat, engine="vector")
    for p in cs.stimulus_ports:
        sim.drive(p, 0)
    sim.settle()
    before = [sim.value(n) for n in flat.nets if n.endswith("_clk_b")]
    sim.drive("clk_in", 1)
    sim.settle()
    after = [sim.value(n) for n in flat.nets if n.endswith("_clk_b")]
    assert before and before != after
