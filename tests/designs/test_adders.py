"""Unit tests for repro.designs.adders: both implementations compute the
RTL intent, exercised through the switch-level simulator."""

import pytest

from repro.designs.adders import adder_reference, domino_carry_adder, ripple_carry_adder
from repro.netlist.flatten import flatten
from repro.switchsim.engine import SwitchSimulator
from repro.switchsim.values import Logic


def drive_operands(sim, a, b, cin, width):
    drives = {"cin": cin}
    for i in range(width):
        drives[f"a{i}"] = (a >> i) & 1
        drives[f"b{i}"] = (b >> i) & 1
    sim.step(**drives)


def read_result(sim, width):
    s = 0
    for i in range(width):
        bit = sim.value(f"s{i}")
        assert bit is not Logic.X, f"s{i} is X"
        s |= (1 if bit is Logic.ONE else 0) << i
    cout = sim.value("cout")
    return s, 1 if cout is Logic.ONE else 0


@pytest.mark.parametrize("a,b,cin", [
    (0, 0, 0), (1, 1, 0), (7, 9, 1), (15, 15, 1), (10, 5, 0), (12, 3, 1),
])
def test_ripple_carry_adder_matches_reference(a, b, cin):
    width = 4
    sim = SwitchSimulator(flatten(ripple_carry_adder(width)))
    drive_operands(sim, a, b, cin, width)
    s, cout = read_result(sim, width)
    exp_s, exp_c = adder_reference(a, b, cin, width)
    assert (s, cout) == (exp_s, exp_c)


def test_ripple_adder_exhaustive_2bit():
    width = 2
    sim = SwitchSimulator(flatten(ripple_carry_adder(width)))
    for a in range(4):
        for b in range(4):
            for cin in (0, 1):
                drive_operands(sim, a, b, cin, width)
                assert read_result(sim, width) == adder_reference(a, b, cin, width)


@pytest.mark.parametrize("a,b,cin", [
    (0, 0, 0), (3, 1, 0), (2, 2, 1), (3, 3, 1), (1, 2, 0),
])
def test_domino_adder_matches_reference(a, b, cin):
    """Domino discipline: precharge with clk low (inputs low), then set
    inputs and evaluate."""
    width = 2
    sim = SwitchSimulator(flatten(domino_carry_adder(width)))
    # Precharge phase: all inputs low, clock low.
    zeros = {f"a{i}": 0 for i in range(width)}
    zeros.update({f"b{i}": 0 for i in range(width)})
    sim.step(clk=0, cin=0, **zeros)
    # Evaluate: raise clock, then apply (monotonic) inputs.
    sim.step(clk=1)
    drive_operands(sim, a, b, cin, width)
    s, cout = read_result(sim, width)
    assert (s, cout) == adder_reference(a, b, cin, width)


def test_domino_adder_has_dynamic_nodes():
    from repro.recognition.recognizer import recognize

    design = recognize(flatten(domino_carry_adder(4)))
    assert len(design.dynamic_nodes) == 4  # one carry node per bit
    assert "clk" in design.clocks


def test_adder_width_validation():
    with pytest.raises(ValueError):
        ripple_carry_adder(0)
    with pytest.raises(ValueError):
        domino_carry_adder(0)


def test_adder_sizes_scale():
    small = ripple_carry_adder(2).transistor_count()
    big = ripple_carry_adder(8).transistor_count()
    assert big == 4 * small
