"""Unit tests for repro.equivalence.rtl_bridge: product-machine checking
over live RTL modules (the full section-4.1 workflow)."""

import pytest

from repro.equivalence.rtl_bridge import fsm_from_rtl
from repro.equivalence.sequential import check_sequential
from repro.rtl.constructs import two_phase_register, xadd
from repro.rtl.module import RtlModule
from repro.rtl.signals import X


def rtl_mod_counter(modulus: int):
    """Behavioral mod-N counter with an enable input and a wrap pulse."""
    m = RtlModule(f"ctr{modulus}")
    en = m.signal("en", 1, reset=0)
    pulse = m.signal("pulse", 1, reset=0)

    def next_count():
        value = count.get()
        e = en.get()
        if value is X or e is X:
            return X
        return (value + 1) % modulus if e else value

    count = two_phase_register(m, "count", 8, next_count, reset=0)

    @m.comb
    def _pulse():
        value = count.get()
        e = en.get()
        if value is X or e is X:
            pulse.set(X)
        else:
            pulse.set(1 if (e and value == modulus - 1) else 0)

    return m, en, pulse


def rtl_ring_shifter(length: int):
    """Behavioral one-hot ring shifter with the same pulse contract."""
    m = RtlModule(f"ring{length}")
    en = m.signal("en", 1, reset=0)
    pulse = m.signal("pulse", 1, reset=0)
    mask = (1 << length) - 1
    top = 1 << (length - 1)

    def next_ring():
        value = ring.get()
        e = en.get()
        if value is X or e is X:
            return X
        if not e:
            return value
        return ((value << 1) | (value >> (length - 1))) & mask

    ring = two_phase_register(m, "ring", length, next_ring, reset=1)

    @m.comb
    def _pulse():
        value = ring.get()
        e = en.get()
        if value is X or e is X:
            pulse.set(X)
        else:
            pulse.set(1 if (e and value == top) else 0)

    return m, en, pulse


def test_rtl_counter_vs_rtl_ring_equivalent():
    """The paper's example, with BOTH sides as behavioral RTL."""
    ctr, ctr_en, ctr_pulse = rtl_mod_counter(5)
    ring, ring_en, ring_pulse = rtl_ring_shifter(5)
    a = fsm_from_rtl(ctr, [ctr_en], [ctr_pulse])
    b = fsm_from_rtl(ring, [ring_en], [ring_pulse])
    result = check_sequential(a, b, max_states=1000)
    assert result.equivalent


def test_rtl_counter_vs_wrong_modulus_diverges():
    ctr, ctr_en, ctr_pulse = rtl_mod_counter(5)
    ring, ring_en, ring_pulse = rtl_ring_shifter(6)
    a = fsm_from_rtl(ctr, [ctr_en], [ctr_pulse])
    b = fsm_from_rtl(ring, [ring_en], [ring_pulse])
    result = check_sequential(a, b, max_states=1000)
    assert not result.equivalent
    # The counter pulses on *reaching* 4 (4 enabled steps); the 6-ring
    # first pulses a step later -- divergence after >= 4 enabled steps.
    assert sum(1 for step in result.trace if step & 1) >= 4


def test_rtl_fsm_determinism():
    """next_state from the same snapshot is reproducible regardless of
    interleaving -- the snapshot/restore contract."""
    ctr, en, pulse = rtl_mod_counter(3)
    fsm = fsm_from_rtl(ctr, [en], [pulse])
    s0 = fsm.reset_state()
    s1 = fsm.next_state(s0, 1)
    # Interleave an unrelated excursion.
    fsm.next_state(s1, 1)
    fsm.next_state(s1, 0)
    assert fsm.next_state(s0, 1) == s1
    assert fsm.output(s0, 1) == fsm.output(s0, 1)


def test_rtl_fsm_against_table_fsm():
    """An RTL machine can be checked against a hand-written table
    machine -- mixed-abstraction equivalence."""
    from repro.equivalence.sequential import TableFsm

    ctr, en, pulse = rtl_mod_counter(4)
    rtl = fsm_from_rtl(ctr, [en], [pulse])
    # The RTL pulses when the *new* count reaches 3; express the same
    # post-state Mealy contract in the table machine.
    table = TableFsm(
        input_width=1,
        reset=0,
        next_fn=lambda s, i: (s + 1) % 4 if i & 1 else s,
        out_fn=lambda s, i: (1,) if (i & 1 and (s + 1) % 4 == 3) else (0,),
    )
    result = check_sequential(rtl, table, max_states=1000)
    assert result.equivalent
