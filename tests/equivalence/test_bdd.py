"""Unit tests for repro.equivalence.bdd."""

import pytest

from repro.equivalence.bdd import BddManager


@pytest.fixture
def m():
    return BddManager()


def test_terminals(m):
    assert m.false == 0 and m.true == 1
    assert m.not_(m.true) == m.false


def test_var_canonical(m):
    a1 = m.var("a")
    a2 = m.var("a")
    assert a1 == a2


def test_basic_identities(m):
    a, b = m.declare("a", "b")
    assert m.and_(a, m.true) == a
    assert m.and_(a, m.false) == m.false
    assert m.or_(a, m.false) == a
    assert m.and_(a, a) == a
    assert m.and_(a, m.not_(a)) == m.false
    assert m.or_(a, m.not_(a)) == m.true
    assert m.xor_(a, a) == m.false
    assert m.xor_(a, b) == m.xor_(b, a)


def test_de_morgan(m):
    a, b = m.declare("a", "b")
    lhs = m.not_(m.and_(a, b))
    rhs = m.or_(m.not_(a), m.not_(b))
    assert lhs == rhs


def test_canonicity_of_equivalent_expressions(m):
    a, b, c = m.declare("a", "b", "c")
    f = m.or_(m.and_(a, b), m.and_(a, c))
    g = m.and_(a, m.or_(b, c))  # distribution
    assert f == g


def test_evaluate(m):
    a, b = m.declare("a", "b")
    f = m.xor_(a, b)
    assert m.evaluate(f, {"a": True, "b": False}) is True
    assert m.evaluate(f, {"a": True, "b": True}) is False
    with pytest.raises(KeyError):
        m.evaluate(f, {"a": True})


def test_support(m):
    a, b, c = m.declare("a", "b", "c")
    f = m.and_(a, m.or_(b, m.not_(b)))  # b cancels out
    assert m.support(f) == {"a"}
    g = m.and_(a, c)
    assert m.support(g) == {"a", "c"}


def test_any_sat(m):
    a, b = m.declare("a", "b")
    f = m.and_(a, m.not_(b))
    witness = m.any_sat(f)
    assert witness == {"a": True, "b": False}
    assert m.any_sat(m.false) is None


def test_count_sat(m):
    a, b, c = m.declare("a", "b", "c")
    assert m.count_sat(m.true) == 8
    assert m.count_sat(m.false) == 0
    assert m.count_sat(a) == 4
    assert m.count_sat(m.and_(a, b)) == 2
    assert m.count_sat(m.xor_(a, m.xor_(b, c))) == 4


def test_implies_and_xnor(m):
    a, b = m.declare("a", "b")
    assert m.implies(m.false, a) == m.true
    assert m.xnor_(a, a) == m.true
    assert m.xnor_(a, b) == m.not_(m.xor_(a, b))


def test_size_grows_with_structure(m):
    names = [f"x{i}" for i in range(8)]
    variables = m.declare(*names)
    parity = m.false
    for v in variables:
        parity = m.xor_(parity, v)
    # Parity BDD is linear in variable count: 2 nodes per level - 1.
    assert m.size(parity) == 2 * 8 - 1


def test_many_variable_and_chain(m):
    variables = m.declare(*[f"v{i}" for i in range(12)])
    conj = m.and_many(variables)
    assert m.count_sat(conj) == 1
    assert m.size(conj) == 12
