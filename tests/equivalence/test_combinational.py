"""Unit tests for repro.equivalence.combinational."""

import pytest

from repro.equivalence.bdd import BddManager
from repro.equivalence.combinational import (
    bdd_from_function,
    bdd_from_gates,
    bdd_from_truth_table,
    check_combinational,
    check_gate_vs_function,
)
from repro.netlist.builder import CellBuilder
from repro.netlist.flatten import flatten
from repro.recognition.recognizer import recognize


def recognized(build, ports):
    b = CellBuilder("dut", ports=ports)
    build(b)
    return recognize(flatten(b.build()))


def test_truth_table_construction():
    m = BddManager()
    # XOR over (a, b): minterms 1 and 2 -> mask 0b0110.
    f = bdd_from_truth_table(m, ["a", "b"], 0b0110)
    g = m.xor_(m.var("a"), m.var("b"))
    assert f == g


def test_function_vs_schematic_nand():
    design = recognized(lambda b: b.nand(["a", "b"], "y"), ["a", "b", "y"])
    result = check_gate_vs_function(
        design, "y", lambda a, b: not (a and b), ["a", "b"]
    )
    assert result.equivalent


def test_function_vs_schematic_mismatch_counterexample():
    design = recognized(lambda b: b.nand(["a", "b"], "y"), ["a", "b", "y"])
    result = check_gate_vs_function(
        design, "y", lambda a, b: not (a or b), ["a", "b"]  # NOR intent
    )
    assert not result.equivalent
    ce = result.counterexample
    assert ce is not None
    # NAND and NOR differ exactly when a != b.
    assert ce["a"] != ce["b"]


def test_multi_level_network():
    def build(b):
        b.nand(["a", "b"], "n1")
        b.nand(["c", "d"], "n2")
        b.nand(["n1", "n2"], "y")  # y = ab + cd

    design = recognized(build, ["a", "b", "c", "d", "y"])
    result = check_gate_vs_function(
        design, "y", lambda a, b, c, d: (a and b) or (c and d), ["a", "b", "c", "d"]
    )
    assert result.equivalent


def test_different_implementations_same_function():
    """Paper section 2.2: implementations may deviate between views as
    long as logical intent holds.  An AOI21 vs its NAND/NOR rebuild."""
    aoi = recognized(lambda b: b.aoi21("a", "b", "c", "y"), ["a", "b", "c", "y"])

    def build_rebuilt(b):
        b.nand(["a", "b"], "n1")    # n1 = !(ab)
        b.inverter("c", "c_b")      # c_b = !c
        b.nand(["n1", "c_b"], "n2")  # n2 = ab + c
        b.inverter("n2", "y")       # y = !(ab + c)

    rebuilt = recognized(build_rebuilt, ["a", "b", "c", "y"])

    m = BddManager()
    for name in ("a", "b", "c"):
        m.var(name)
    f = bdd_from_gates(m, aoi, "y", inputs=["a", "b", "c"])
    g = bdd_from_gates(m, rebuilt, "y", inputs=["a", "b", "c"])
    assert check_combinational(m, f, g).equivalent


def test_undeclared_input_rejected():
    design = recognized(lambda b: b.nand(["a", "b"], "y"), ["a", "b", "y"])
    m = BddManager()
    with pytest.raises(ValueError, match="neither"):
        bdd_from_gates(m, design, "y", inputs=["a"])  # b not declared


def test_cyclic_network_rejected():
    """A latch loop is not combinational; the checker must say so."""
    def build(b):
        b.inverter("x", "y")
        b.inverter("y", "x")

    design = recognized(build, ["x", "y"])
    m = BddManager()
    with pytest.raises(ValueError, match="loop|sequential"):
        bdd_from_gates(m, design, "y")


def test_function_enumeration_cap():
    m = BddManager()
    with pytest.raises(ValueError):
        bdd_from_function(m, lambda **kw: True, [f"i{k}" for k in range(17)])


def test_free_inputs_default():
    """inputs=None lets every non-gate net become a variable."""
    design = recognized(lambda b: b.inverter("a", "y"), ["a", "y"])
    m = BddManager()
    f = bdd_from_gates(m, design, "y")
    assert m.support(f) == {"a"}
