"""Unit tests for repro.equivalence.sequential.

The centerpiece is the paper's own example: "a counter coded in the
Behavioral/RTL model with an output every five events may be implemented
in the circuit as a shift register with a cyclic value of five."
"""

import pytest

from repro.equivalence.sequential import TableFsm, check_sequential, replay


def mod5_counter() -> TableFsm:
    """Binary mod-5 counter; pulses its output when wrapping.

    Input bit 0 is the count-enable.
    """
    return TableFsm(
        input_width=1,
        reset=0,
        next_fn=lambda s, i: (s + 1) % 5 if i & 1 else s,
        out_fn=lambda s, i: 1 if (i & 1 and s == 4) else 0,
    )


def ring_shift5() -> TableFsm:
    """One-hot 5-bit ring shifter; pulses when the hot bit wraps."""
    return TableFsm(
        input_width=1,
        reset=0b00001,
        next_fn=lambda s, i: (((s << 1) | (s >> 4)) & 0b11111) if i & 1 else s,
        out_fn=lambda s, i: 1 if (i & 1 and s == 0b10000) else 0,
    )


def test_paper_example_counter_vs_shift_register():
    result = check_sequential(mod5_counter(), ring_shift5())
    assert result.equivalent
    # Product space: 5 aligned state pairs.
    assert result.explored == 5


def test_mod5_vs_mod6_diverges_with_trace():
    mod6 = TableFsm(
        input_width=1,
        reset=0,
        next_fn=lambda s, i: (s + 1) % 6 if i & 1 else s,
        out_fn=lambda s, i: 1 if (i & 1 and s == 5) else 0,
    )
    result = check_sequential(mod5_counter(), mod6)
    assert not result.equivalent
    # The divergence appears after exactly 5 enabled counts.
    assert sum(1 for step in result.trace if step & 1) == 5
    # Replaying the trace on both machines shows the disagreement at the end.
    out_a = replay(mod5_counter(), result.trace)
    out_b = replay(mod6, result.trace)
    assert out_a[:-1] == out_b[:-1]
    assert out_a[-1] != out_b[-1]


def test_enable_gating_respected():
    """With enable low, neither machine moves; check explores both."""
    result = check_sequential(mod5_counter(), ring_shift5())
    assert result.equivalent


def test_same_machine_trivially_equivalent():
    result = check_sequential(mod5_counter(), mod5_counter())
    assert result.equivalent


def test_input_width_mismatch():
    wide = TableFsm(input_width=2, reset=0,
                    next_fn=lambda s, i: s, out_fn=lambda s, i: 0)
    with pytest.raises(ValueError):
        check_sequential(mod5_counter(), wide)


def test_state_explosion_guard():
    big = TableFsm(
        input_width=1,
        reset=0,
        next_fn=lambda s, i: s + 1,  # unbounded
        out_fn=lambda s, i: 0,
    )
    with pytest.raises(RuntimeError, match="exceeded"):
        check_sequential(big, big, max_states=100)


def test_output_depends_on_input_moore_vs_mealy_difference():
    """A Mealy machine pulsing on (state, input) vs a Moore machine
    pulsing one step later are NOT equivalent -- the checker must see
    the timing difference, not just the pulse count."""
    moore_delayed = TableFsm(
        input_width=1,
        reset=(0, 0),  # (count, pulse_pending)
        next_fn=lambda s, i: (((s[0] + 1) % 5, 1 if s[0] == 4 else 0)
                              if i & 1 else (s[0], 0)),
        out_fn=lambda s, i: s[1],
    )
    result = check_sequential(mod5_counter(), moore_delayed)
    assert not result.equivalent
